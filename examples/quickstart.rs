//! Quickstart: the transaction logic in five minutes.
//!
//! ```text
//! cargo run -p txlog-examples --bin quickstart
//! ```
//!
//! Walks the core loop: declare a schema, write a transaction in the
//! paper's notation, execute it (`w ; e`), query it (`w : e`), and
//! model-check an integrity constraint over the resulting evolution
//! graph.

use txlog::prelude::*;

fn main() -> TxResult<()> {
    // 1. a schema: one relation with named attributes
    let schema = Schema::new().relation("EMP", &["e-name", "salary"])?;
    let ctx = ParseCtx::with_relations(&["EMP"]);
    println!("schema:\n{schema}");

    // 2. transactions are f-terms of state sort — programs over the
    //    implicit current state
    let hire_ann = parse_fterm("insert(tuple('ann', 500), EMP)", &ctx, &[])?;
    let hire_bob = parse_fterm("insert(tuple('bob', 450), EMP)", &ctx, &[])?;
    let raise_all = parse_fterm(
        "foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 25) end",
        &ctx,
        &[],
    )?;
    println!("transaction: {raise_all}");

    // 3. execute: w ; e
    let engine = Engine::builder(&schema).build().unwrap();
    let env = Env::new();
    let s0 = schema.initial_state();
    let s1 = engine.execute(&s0, &hire_ann, &env)?;
    let s2 = engine.execute(&s1, &hire_bob, &env)?;
    let s3 = engine.execute(&s2, &raise_all, &env)?;
    println!("after three transactions:\n{s3}");

    // 4. query: w : e  and  w :: p
    let total = parse_fterm("sum({ salary(e) | e: 2tup . e in EMP })", &ctx, &[])?;
    let v = engine.eval_obj(&s3, &total, &env)?;
    println!("total salaries (w:e): {v}");
    let anyone_rich = parse_fformula("exists e: 2tup . e in EMP & salary(e) > 500", &ctx, &[])?;
    println!(
        "anyone over 500 (w::p)? {}",
        engine.eval_truth(&s3, &anyone_rich, &env)?
    );

    // 5. the logic sees *all* states: build the evolution graph and check
    //    a transaction constraint quantifying over states and transactions
    let mut builder = ModelBuilder::new(schema);
    let n0 = builder.add_state(s0);
    let n1 = builder.apply(n0, "hire-ann", &hire_ann, &env)?;
    let n2 = builder.apply(n1, "hire-bob", &hire_bob, &env)?;
    let _n3 = builder.apply(n2, "raise-all", &raise_all, &env)?;
    let model = builder.finish();

    let monotone = parse_sformula(
        "forall s: state, t: tx, e: 2tup .
           (s:e in s:EMP & (s;t):e in (s;t):EMP)
             -> salary(s:e) <= salary((s;t):e)",
        &ctx,
    )?;
    println!("constraint: {monotone}");
    println!("  class: {:?}", classify(&monotone));
    println!(
        "  holds in this evolution graph: {}",
        model.check(&monotone)?
    );

    Ok(())
}
