//! Placeholder library target; the example binaries live at the package
//! root (see `Cargo.toml`'s `[[bin]]` entries).
