//! EXPLAIN a constraint: what the planner chose, and what the
//! interpreter actually did.
//!
//! Compiles the b8 join constraint — "every employee is allocated to
//! some project" — prints its plan tree, then evaluates it over a
//! 400-employee population with a recording `Metrics` handle and prints
//! the tree again with the runtime counters attached. The inner
//! existential shows up as an index probe on `ALLOC[a-emp]`, and the
//! counters prove the probes did the work (`probe_rows` ≫ `scan_rows`).
//!
//! Run with: `cargo run --bin explain`

use txlog::prelude::*;

fn main() -> TxResult<()> {
    let ctx = txlog::empdb::parse_ctx();
    let every_emp_allocated = parse_fformula(
        "forall e: 5tup . e in EMP ->
           (exists a: 3tup . a in ALLOC & a-emp(a) = e-name(e))",
        &ctx,
        &[],
    )?;

    let (schema, db) = txlog::empdb::populate(txlog::empdb::Sizes::scaled(400), 4)?;
    let metrics = Metrics::enabled();
    let engine = Engine::builder(&schema).metrics(metrics.clone()).build()?;

    println!("=== plan (syntactic, no database touched) ===");
    let plan = engine.explain_formula(&every_emp_allocated);
    print!("{}", plan.render());
    assert!(
        plan.steps()
            .iter()
            .any(|s| s.kind == SourceKind::IndexProbe),
        "the join key must compile to an index probe"
    );

    let holds = engine.eval_truth(&db, &every_emp_allocated, &Env::new())?;
    println!("\n=== after evaluating over 400 employees (holds = {holds}) ===");
    let report = plan.with_runtime(metrics.snapshot());
    print!("{}", report.render());

    println!("\n=== as JSON ===");
    println!("{}", report.to_json());
    Ok(())
}
