//! A guided tour of the paper, section by section.
//!
//! ```text
//! cargo run -p txlog-examples --bin paper_tour
//! ```
//!
//! Prints the paper's own artifacts — the expression levels of Section 2,
//! the axioms, the schema of Section 3, and each Section 4 example — with
//! this implementation evaluating every claim as it goes.

use txlog::base::Atom;
use txlog::constraints::{checkability, classify, History, Window, WindowedChecker};
use txlog::empdb::constraints as ic;
use txlog::empdb::transactions as tx;
use txlog::empdb::{employee_schema, populate, Sizes};
use txlog::engine::{Engine, Env};
use txlog::logic::{axioms, parse_fterm, parse_sformula};
use txlog::prelude::TxResult;

fn heading(s: &str) {
    println!("\n════ {s} ════");
}

fn main() -> TxResult<()> {
    let schema = employee_schema();
    let ctx = txlog::empdb::parse_ctx();
    let env = Env::new();

    heading("§2  The transaction logic: two expression levels");
    let fluent = parse_fterm("salary(e)", &ctx, &[txlog::logic::Var::tup_f("e", 5)])?;
    println!("f-expression (state-implicit): {fluent}");
    let sform = parse_sformula(
        "forall s: state, e': 5tup . e' in s:EMP -> salary(e') <= 100000",
        &ctx,
    )?;
    println!("s-formula (state-explicit):    {sform}");
    println!("\nfluent combinators compose transactions:");
    let demo = parse_fterm(
        "insert(tuple('ann', 'dept-0', 500, 30, 'S'), EMP) ;;
         if exists e: 5tup . e in EMP & salary(e) > 400
         then insert(tuple('ann', 9), SKILL)
         else skip",
        &ctx,
        &[],
    )?;
    println!("  {demo}");

    heading("§2  Action and frame axioms (machine-checked in the test suite)");
    for ax in [
        axioms::identity_fluent(),
        axioms::modify_action("EMP", 5, 3),
        axioms::modify_frame("EMP", 5, 3, 3),
    ] {
        println!("  {ax}");
    }

    heading("§3  A database is a model of the theory");
    let (_, db) = populate(Sizes::small(), 7)?;
    println!(
        "generated database: {} tuples across {} relations",
        db.total_tuples(),
        db.relation_count()
    );
    let engine = Engine::builder(&schema).build().unwrap();
    let db1 = engine.execute(
        &db,
        &tx::hire("tour", "dept-0", 510, 31, "S", "proj-0", 60),
        &env,
    )?;
    println!(
        "after hire: {} tuples (the old state is untouched: {})",
        db1.total_tuples(),
        db.total_tuples()
    );

    heading("§4 Ex.1  Static constraints");
    for (name, f) in ic::example1_all() {
        println!(
            "  {name}: class {:?}, window {:?}",
            classify(&f),
            checkability(&f, Default::default())
        );
    }

    heading("§4 Ex.2–3  Transaction constraints enforced with windows");
    let mut history = History::new(schema.clone(), db1);
    let checker = WindowedChecker::new(ic::ic3_skill_retention(), Window::States(2))?;
    history.step("learn", &tx::obtain_skill("tour", 3), &env)?;
    println!(
        "  obtain-skill … skill retention holds: {}",
        checker.check_now(&history)?
    );
    history.step("forget", &tx::drop_skill("tour", 3), &env)?;
    println!(
        "  drop-skill  … skill retention holds: {} (caught with 2 states)",
        checker.check_now(&history)?
    );

    heading("§4 Ex.4  The FIRE encoding");
    println!(
        "  never-rehire unencoded: {:?}",
        checkability(&ic::ic4_never_rehire(), Default::default())
    );
    println!(
        "  FIRE-encoded:           {:?} (static, window 1)",
        checkability(&ic::ic4_fire_static(), Default::default())
    );

    heading("§4 Ex.5  cancel-project");
    let (cancel, p, v) = tx::cancel_project();
    println!("{cancel}");
    let (_, db) = populate(Sizes::small(), 8)?;
    let proj = schema.rel_id("PROJ")?;
    let first = db
        .relation(proj)
        .and_then(|r| r.iter_vals().next())
        .expect("a project exists");
    let env2 = Env::new().bind_tuple(p, first).bind_atom(v, Atom::nat(25));
    let out = engine.execute(&db, &cancel, &env2)?;
    println!(
        "  projects {} → {}",
        db.relation(proj).map(|r| r.len()).unwrap_or(0),
        out.relation(proj).map(|r| r.len()).unwrap_or(0)
    );

    heading("§4 Ex.6  Synthesis from the declarative spec");
    let (spec, _, _) = txlog::empdb::spec::cancel_project_spec();
    let statics: Vec<_> = ic::example1_all().into_iter().map(|(_, f)| f).collect();
    let synth = txlog::synthesis::synthesize(&schema, &spec, &statics, "E")?;
    println!("  derivation steps: {}", synth.derivation.len());
    println!(
        "  repairs derived from ICs: {}",
        synth
            .derivation
            .iter()
            .filter(|d| d.contains("repair"))
            .count()
    );

    heading("§3  Temporal logic embeds via δ");
    let f = txlog::temporal::parse_tformula("<>[exists e: 5tup . e in EMP]", &ctx, &[])?;
    let s = txlog::logic::Var::state("s");
    println!("  δ(s, {f}) =");
    println!(
        "    {}",
        txlog::temporal::delta(&txlog::logic::STerm::var(s), &f)
    );

    println!("\n(tour complete — run `experiments` for the full E1–E8 report)");
    Ok(())
}
