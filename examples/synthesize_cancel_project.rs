//! Example 6, live: synthesize `cancel-project` from its declarative
//! specification and watch the repairs appear.
//!
//! ```text
//! cargo run -p txlog-examples --bin synthesize_cancel_project
//! ```

use txlog::base::Atom;
use txlog::empdb::constraints::example1_all;
use txlog::empdb::spec::cancel_project_spec;
use txlog::empdb::{employee_schema, populate, Sizes};
use txlog::engine::{Engine, Env};
use txlog::prelude::TxResult;
use txlog::synthesis::{synthesize, verify_synthesis};

fn main() -> TxResult<()> {
    let schema = employee_schema();
    let (spec, p, v) = cancel_project_spec();
    println!("specification (Example 6):\n  {spec}\n");

    let statics = example1_all();
    println!("static integrity constraints in force:");
    for (name, _) in &statics {
        println!("  - {name}");
    }

    let out = synthesize(
        &schema,
        &spec,
        &statics.iter().map(|(_, f)| f.clone()).collect::<Vec<_>>(),
        "E",
    )?;

    println!("\nderivation:");
    for step in &out.derivation {
        println!("  {step}");
    }
    println!("\nsynthesized transaction:\n  {}\n", out.program);

    // run it on a concrete database
    let (_, db) = populate(Sizes::default(), 99)?;
    let proj = schema.rel_id("PROJ")?;
    let target = db
        .relation(proj)
        .and_then(|r| r.iter_vals().next())
        .expect("a generated project exists");
    println!("cancelling project {target} with v = 30 …");
    let env = Env::new()
        .bind_tuple(p, target.clone())
        .bind_atom(v, Atom::nat(30));

    let engine = Engine::builder(&schema).build().unwrap();
    let before_emps = db
        .relation(schema.rel_id("EMP")?)
        .map(|r| r.len())
        .unwrap_or(0);
    let post = engine.execute(&db, &out.program, &env)?;
    let after_emps = post
        .relation(schema.rel_id("EMP")?)
        .map(|r| r.len())
        .unwrap_or(0);
    println!("employees: {before_emps} → {after_emps} (project-less employees were fired)");
    println!(
        "project still present? {}",
        post.relation(proj)
            .map(|r| r.contains_fields(&target.fields))
            .unwrap_or(false)
    );

    let named: Vec<(&str, _)> = statics.iter().map(|(n, f)| (*n, f.clone())).collect();
    let violations = verify_synthesis(&schema, &spec, &named, &out.program, &env, db)?;
    if violations.is_empty() {
        println!("verified: the synthesized program satisfies the spec and Example 1's ICs");
    } else {
        println!("VERIFICATION FAILED: {violations:?}");
    }
    Ok(())
}
