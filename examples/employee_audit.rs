//! Employee-database audit: enforce the paper's constraints over a
//! stream of transactions with bounded history.
//!
//! ```text
//! cargo run -p txlog-examples --bin employee_audit
//! ```
//!
//! Plays a day of HR activity against the Section 4 employee database,
//! with every constraint from Examples 1–3 enforced at its proper window
//! (1, 2, or 3 states). Violating transactions are reported and rolled
//! back, exactly the enforcement regime the paper's checkability
//! analysis licenses.

use txlog::constraints::{History, Window, WindowedChecker};
use txlog::empdb::constraints::{
    example1_all, ic2_marital_transaction, ic3_dept_reference_connection,
    ic3_salary_needs_dept_switch, ic3_skill_retention,
};
use txlog::empdb::transactions as tx;
use txlog::empdb::{populate, Sizes};
use txlog::engine::Env;
use txlog::logic::FTerm;
use txlog::prelude::TxResult;

struct Auditor {
    checkers: Vec<(&'static str, WindowedChecker)>,
    history: History,
}

impl Auditor {
    fn new(history: History) -> TxResult<Auditor> {
        let mut checkers = Vec::new();
        for (name, f) in example1_all() {
            checkers.push((name, WindowedChecker::new(f, Window::States(1))?));
        }
        checkers.push((
            "marital-status (Ex.2)",
            WindowedChecker::new(ic2_marital_transaction(), Window::States(2))?,
        ));
        checkers.push((
            "skill-retention (Ex.3)",
            WindowedChecker::new(ic3_skill_retention(), Window::States(2))?,
        ));
        checkers.push((
            "salary-needs-dept-switch (Ex.3)",
            WindowedChecker::new(ic3_salary_needs_dept_switch(), Window::States(3))?,
        ));
        checkers.push((
            "dept-reference-connection (Ex.3)",
            WindowedChecker::new(ic3_dept_reference_connection(), Window::States(2))?,
        ));
        Ok(Auditor { checkers, history })
    }

    /// Apply a transaction; roll back and report if any windowed check
    /// fails.
    fn submit(&mut self, label: &str, t: &FTerm) -> TxResult<bool> {
        let saved = self.history.clone();
        self.history.step(label, t, &Env::new())?;
        let mut violations = Vec::new();
        for (name, checker) in &self.checkers {
            if !checker.check_now(&self.history)? {
                violations.push(*name);
            }
        }
        if violations.is_empty() {
            println!("  ACCEPT {label}");
            Ok(true)
        } else {
            println!("  REJECT {label}  — violates {violations:?}");
            self.history = saved;
            Ok(false)
        }
    }
}

fn main() -> TxResult<()> {
    let (schema, db) = populate(Sizes::default(), 2024)?;
    println!(
        "starting database: {} employees, {} projects, {} departments",
        db.relation(schema.rel_id("EMP")?)
            .map(|r| r.len())
            .unwrap_or(0),
        db.relation(schema.rel_id("PROJ")?)
            .map(|r| r.len())
            .unwrap_or(0),
        db.relation(schema.rel_id("DEPT")?)
            .map(|r| r.len())
            .unwrap_or(0),
    );
    let mut auditor = Auditor::new(History::new(schema, db))?;

    println!("\n-- a normal day --");
    auditor.submit(
        "hire-helen",
        &tx::hire("helen", "dept-0", 520, 29, "S", "proj-0", 60),
    )?;
    auditor.submit("helen-learns-sql", &tx::obtain_skill("helen", 12))?;
    auditor.submit("raise-helen", &tx::raise_salary("helen", 40))?;
    auditor.submit(
        "helen-marries",
        &tx::marry("helen").seq(tx::birthday("helen")),
    )?;
    auditor.submit("demote-emp-1", &tx::demote("emp-1", 50, "dept-fresh"))?;

    println!("\n-- attempted violations --");
    // salary cut without a department switch (Example 3)
    auditor.submit("illegal-pay-cut", &tx::cut_salary("helen", 100))?;
    // dropping a skill while employed (Example 3)
    auditor.submit("forget-sql", &tx::drop_skill("helen", 12))?;
    // marital regression with the age clock advancing (Example 2)
    auditor.submit(
        "annul-helen",
        &tx::annul("helen").seq(tx::birthday("helen")),
    )?;
    // deleting a department that still has employees (Example 3)
    auditor.submit("dissolve-dept-0", &tx::delete_dept("dept-0"))?;
    // firing helen is legal (skills go with her) — accepted
    auditor.submit("fire-helen", &tx::fire("helen"))?;

    println!(
        "\nfinal history length: {} states, all retained constraints hold",
        auditor.history.len()
    );
    Ok(())
}
