//! Section 3, live: temporal formulas, their δ images, and agreement of
//! the two semantics on an evolution graph.
//!
//! ```text
//! cargo run -p txlog-examples --bin temporal_embedding
//! ```

use txlog::base::Atom;
use txlog::engine::{Binding, Env, ModelBuilder, StateVal, Value};
use txlog::logic::{FFormula, FTerm, STerm, Var};
use txlog::prelude::TxResult;
use txlog::relational::{Schema, TxLabel};
use txlog::temporal::{delta, holds, TFormula};

fn main() -> TxResult<()> {
    // a little evolution graph: a ticketing system whose OPEN relation
    // shrinks as tickets close
    let schema = Schema::new().relation("OPEN", &["ticket"])?;
    let rid = schema.rel_id("OPEN")?;
    let mut b = ModelBuilder::new(schema);
    let mut db = b.schema().initial_state();
    for t in 1..=3u64 {
        db = db.insert_fields(rid, &[Atom::nat(t)])?.0;
    }
    let mut prev = b.add_state(db.clone());
    let root = prev;
    for t in 1..=3u64 {
        let open = db
            .relation(rid)
            .expect("OPEN exists")
            .iter_vals()
            .find(|x| x.fields[0] == Atom::nat(t))
            .expect("ticket open");
        db = db.delete(rid, &open)?;
        let cur = b.add_state(db.clone());
        b.graph_mut()
            .add_arc(prev, TxLabel::new(&format!("close-{t}")), cur)?;
        prev = cur;
    }
    b.graph_mut().reflexive_close();
    b.graph_mut().transitive_close();
    let model = b.finish();
    println!(
        "evolution graph: {} states, {} arcs (reflexive + transitive)",
        model.graph.state_count(),
        model.graph.arc_count()
    );

    let open = |t: u64| {
        TFormula::Atom(FFormula::member(
            FTerm::TupleCons(vec![FTerm::Nat(t)]),
            FTerm::rel("OPEN"),
        ))
    };

    let formulas: Vec<(&str, TFormula)> = vec![
        (
            "◇ all-closed",
            open(1)
                .not()
                .and(open(2).not())
                .and(open(3).not())
                .eventually(),
        ),
        ("□ ticket-3-open (fails: it closes)", open(3).always()),
        (
            "ticket-1-open U ticket-1-closed",
            open(1).until(open(1).not()),
        ),
        (
            "closed-3 precedes closed-1 (order of closing)",
            open(3).not().precedes(open(1).not()),
        ),
        (
            "○ ticket-1-closed (≡ ◇ on evolution graphs)",
            open(1).not().next(),
        ),
    ];

    let s = Var::state("s");
    println!(
        "\n{:<45} {:>8} {:>8}",
        "temporal formula", "direct", "via δ"
    );
    for (name, f) in formulas {
        let direct = holds(&model, root, &f)?;
        let image = delta(&STerm::var(s), &f);
        let env = Env::new().bind(
            s,
            Binding::Val(Value::State(StateVal::node(
                root,
                model.graph.state(root).clone(),
            ))),
        );
        let via = model.eval_sformula(&image, &env)?;
        println!("{name:<45} {direct:>8} {via:>8}");
    }

    // show one full translation, the paper's δ at work
    let f = open(1).until(open(1).not());
    println!(
        "\nδ(s, ticket-1-open U ¬ticket-1-open) =\n  {}",
        delta(&STerm::var(s), &f)
    );
    Ok(())
}
