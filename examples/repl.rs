//! An interactive shell for the transaction logic.
//!
//! ```text
//! cargo run -p txlog-examples --bin repl
//! ```
//!
//! Commands:
//!
//! ```text
//! rel NAME(attr, attr, …)      declare a relation
//! run  <transaction>           execute an f-term at the current state
//! eval <f-term>                evaluate a query at the current state
//! ask  <f-formula>             evaluate a truth-valued fluent (w :: p)
//! check <s-formula>            model-check over the recorded history
//! show                         print the current state
//! history                      print the evolution so far
//! undo                         drop the last transaction
//! :save <path>                 write schema + state as a checksummed snapshot
//! :open <path>                 load a snapshot (replaces schema, resets history)
//! :connect <addr>              attach to a txlog-serve instance; run/eval/ask/
//!                              show go over the wire, as do transaction blocks
//!                              (:begin [read-committed|snapshot|serializable],
//!                              :commit, :abort)
//! :disconnect                  return to local mode
//! :subscribe <name> <pattern>  (connected) register an event subscription
//! :unsubscribe <name>          (connected) drop one
//! :notifications [ms]          (connected) drain server-pushed matches
//! help | quit
//! ```

use std::io::{BufRead, Write as _};
use txlog::prelude::*;

struct Repl {
    schema: Schema,
    states: Vec<DbState>,
    labels: Vec<String>,
    /// When set, state-changing and query commands are forwarded to a
    /// server instead of the local engine.
    remote: Option<Client>,
}

impl Repl {
    fn new() -> Repl {
        let schema = Schema::new();
        let states = vec![schema.initial_state()];
        Repl {
            schema,
            states,
            labels: Vec::new(),
            remote: None,
        }
    }

    fn ctx(&self) -> ParseCtx {
        ParseCtx::new(self.schema.decls().iter().map(|d| d.name))
    }

    fn current(&self) -> &DbState {
        self.states.last().expect("at least the initial state")
    }

    fn model(&self) -> TxResult<Model> {
        let mut b = ModelBuilder::new(self.schema.clone());
        let mut prev = b.add_state(self.states[0].clone());
        for (i, s) in self.states.iter().enumerate().skip(1) {
            let cur = b.add_state(s.clone());
            if prev != cur {
                b.graph_mut()
                    .add_arc(prev, TxLabel::new(&self.labels[i - 1]), cur)?;
            }
            prev = cur;
        }
        b.graph_mut().transitive_close();
        Ok(b.finish())
    }

    /// Forward a command to the connected server. Returns `None` for
    /// commands that stay local even while connected.
    fn dispatch_remote(&mut self, cmd: &str, rest: &str) -> Option<TxResult<String>> {
        let wire = |e: ClientError| TxError::eval(format!("{e}"));
        let client = self.remote.as_mut()?;
        let out = match cmd {
            "run" => client.execute("repl", rest).map_err(wire).map(|c| {
                // inside a transaction block the server stages instead
                // of committing, and the client reports version 0
                if c.version == 0 {
                    "staged in the open transaction block".to_string()
                } else {
                    format!(
                        "ok — committed as version {} ({} retries{})",
                        c.version,
                        c.retries,
                        if c.forwarded { ", forwarded" } else { "" }
                    )
                }
            }),
            "eval" => client.query(rest).map_err(wire),
            "ask" => client.ask(rest).map_err(wire).map(|v| format!("{v}")),
            "show" => client.show_state().map_err(wire),
            "explain" => client.explain(rest, false).map_err(wire),
            "begin" | ":begin" => {
                let level = match rest {
                    "" => Ok(None),
                    name => IsolationLevel::parse(name).map(Some).ok_or_else(|| {
                        TxError::eval(format!(
                            "unknown isolation level {name:?} — try read-committed, \
                             snapshot, or serializable"
                        ))
                    }),
                };
                match level {
                    Ok(level) => client.begin_at(level).map_err(wire).map(|()| match level {
                        Some(l) => format!("begun ({l})"),
                        None => "begun".to_string(),
                    }),
                    Err(e) => Err(e),
                }
            }
            "commit" | ":commit" => client
                .commit(rest)
                .map_err(wire)
                .map(|c| format!("committed as version {} ({} retries)", c.version, c.retries)),
            "abort" | ":abort" => client
                .abort()
                .map_err(wire)
                .map(|n| format!("aborted; {n} staged statements discarded")),
            ":metrics" => client.metrics_json().map_err(wire),
            ":subscribe" => match rest.split_once(char::is_whitespace) {
                Some((name, pattern)) => client
                    .subscribe(name, pattern.trim())
                    .map_err(wire)
                    .map(|()| format!("subscribed {name}; drain with :notifications")),
                None => Err(TxError::eval("usage: :subscribe <name> <pattern>")),
            },
            ":unsubscribe" => {
                if rest.is_empty() {
                    Err(TxError::eval("usage: :unsubscribe <name>"))
                } else {
                    client
                        .unsubscribe(rest)
                        .map_err(wire)
                        .map(|()| format!("unsubscribed {rest}"))
                }
            }
            ":notifications" => {
                let wait = match rest {
                    "" => Ok(std::time::Duration::from_millis(200)),
                    ms => ms
                        .parse::<u64>()
                        .map(std::time::Duration::from_millis)
                        .map_err(|_| TxError::eval("usage: :notifications [wait-ms]")),
                };
                wait.and_then(|wait| {
                    let mut out = String::new();
                    loop {
                        match client.next_notification(wait).map_err(wire)? {
                            Some(NotificationEvent::Match(n)) => {
                                let binding = n
                                    .binding
                                    .iter()
                                    .map(|(v, a)| format!("{v} = {a}"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                out.push_str(&format!(
                                    "{} @ v{}: {{{binding}}}\n",
                                    n.name, n.version
                                ));
                            }
                            Some(NotificationEvent::Overflow { name, capacity }) => {
                                out.push_str(&format!(
                                    "{name}: OVERFLOW — dropped at queue capacity \
                                     {capacity}; re-subscribe to resume\n"
                                ));
                            }
                            None => break,
                        }
                    }
                    if out.is_empty() {
                        out.push_str("no notifications pending");
                    }
                    Ok(out.trim_end().to_string())
                })
            }
            ":quit-server" => {
                let r = client
                    .shutdown_server()
                    .map_err(wire)
                    .map(|()| "server is draining".to_string());
                self.remote = None;
                r
            }
            ":disconnect" => {
                self.remote = None;
                Ok("back to local mode".to_string())
            }
            // history/undo/check/rel/:save/:open manipulate the local
            // evolution history, which a remote server does not expose.
            "history" | "undo" | "check" | "rel" | "save" | ":save" | "open" | ":open" => {
                Ok(format!("{cmd} is local-only; :disconnect first"))
            }
            _ => return None,
        };
        Some(out)
    }

    fn dispatch(&mut self, line: &str) -> TxResult<String> {
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        if cmd == ":connect" {
            if rest.is_empty() {
                return Err(TxError::eval("usage: :connect <addr>"));
            }
            let client = Client::connect(rest, "repl")
                .map_err(|e| TxError::eval(format!("cannot connect to {rest}: {e}")))?;
            let info = client.server_info().clone();
            self.remote = Some(client);
            return Ok(format!(
                "connected to {} ({rest}): head version {}, relations [{}]",
                info.server,
                info.head_version,
                info.relations.join(", ")
            ));
        }
        if let Some(out) = self.dispatch_remote(cmd, rest) {
            return out;
        }
        match cmd {
            ":disconnect" => Ok("not connected".to_string()),
            "rel" => {
                let (name, attrs) = rest
                    .split_once('(')
                    .ok_or_else(|| TxError::parse(1, 1, "expected NAME(attr, …)"))?;
                let attrs: Vec<&str> = attrs
                    .trim_end_matches(')')
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .collect();
                self.schema.add_relation(name.trim(), &attrs)?;
                // rebuild every state with the new relation present
                let decl = self.schema.expect(name.trim())?;
                for s in &mut self.states {
                    *s = s.clone().with_relation(decl.id, decl.arity())?;
                }
                Ok(format!("declared {}", decl))
            }
            "run" => {
                let tx = parse_fterm(rest, &self.ctx(), &[])?;
                let engine = Engine::builder(&self.schema).build().unwrap();
                let next = engine.execute(self.current(), &tx, &Env::new())?;
                self.states.push(next);
                self.labels.push(rest.to_string());
                Ok(format!("ok — state {} reached", self.states.len() - 1))
            }
            "eval" => {
                let q = parse_fterm(rest, &self.ctx(), &[])?;
                let engine = Engine::builder(&self.schema).build().unwrap();
                let v = engine.eval_obj(self.current(), &q, &Env::new())?;
                Ok(format!("{v}"))
            }
            "ask" => {
                let p = parse_fformula(rest, &self.ctx(), &[])?;
                let engine = Engine::builder(&self.schema).build().unwrap();
                let v = engine.eval_truth(self.current(), &p, &Env::new())?;
                Ok(format!("{v}"))
            }
            "check" => {
                let f = parse_sformula(rest, &self.ctx())?;
                let model = self.model()?;
                match model.check_with_witness(&f)? {
                    Ok(()) => Ok("valid in the recorded history".to_string()),
                    Err(w) => Ok(format!("FALSIFIED — witness: {w}")),
                }
            }
            "show" => Ok(format!("{}", self.current())),
            "history" => {
                let mut out = String::new();
                out.push_str(&format!("{} states\n", self.states.len()));
                for (i, l) in self.labels.iter().enumerate() {
                    out.push_str(&format!("  s{i} --[{l}]--> s{}\n", i + 1));
                }
                Ok(out)
            }
            "undo" => {
                if self.states.len() > 1 {
                    self.states.pop();
                    self.labels.pop();
                    Ok("rolled back one transaction".to_string())
                } else {
                    Ok("nothing to undo".to_string())
                }
            }
            "save" | ":save" => {
                if rest.is_empty() {
                    return Err(TxError::eval("usage: :save <path>"));
                }
                let bytes = txlog::relational::codec::encode_snapshot(&self.schema, self.current());
                std::fs::write(rest, &bytes)
                    .map_err(|e| TxError::eval(format!("cannot write {rest}: {e}")))?;
                Ok(format!(
                    "saved state {} ({} bytes) to {rest}",
                    self.states.len() - 1,
                    bytes.len()
                ))
            }
            "open" | ":open" => {
                if rest.is_empty() {
                    return Err(TxError::eval("usage: :open <path>"));
                }
                let bytes = std::fs::read(rest)
                    .map_err(|e| TxError::eval(format!("cannot read {rest}: {e}")))?;
                let (schema, state) = txlog::relational::codec::decode_snapshot(&bytes)
                    .map_err(|e| TxError::eval(format!("not a txlog snapshot: {e}")))?;
                self.schema = schema;
                self.states = vec![state];
                self.labels.clear();
                Ok(format!(
                    "opened {rest}: {} relations, {} tuples (history reset)",
                    self.schema.decls().len(),
                    self.current().total_tuples()
                ))
            }
            "help" => Ok(HELP.to_string()),
            "" => Ok(String::new()),
            other => Ok(format!("unknown command {other:?} — try 'help'")),
        }
    }
}

const HELP: &str = "\
commands:
  rel NAME(attr, …)    declare a relation
  run  <transaction>   execute, e.g. run insert(tuple('ann', 500), EMP)
  eval <query>         e.g. eval sum({ salary(e) | e: 2tup . e in EMP })
  ask  <formula>       e.g. ask exists e: 2tup . e in EMP & salary(e) > 400
  check <s-formula>    e.g. check forall s: state, e': 2tup . e' in s:EMP -> salary(e') <= 1000
  :save <path>         write schema + current state as a checksummed snapshot
  :open <path>         load a snapshot (replaces the schema, resets history)
  :connect <addr>      attach to a txlog-serve instance (run/eval/ask/show go
                       over the wire; begin/commit/abort stage transactions)
  :begin [level]       (connected) open a transaction block, optionally at an
                       isolation level: read-committed | snapshot | serializable
  :disconnect          return to local mode
  :metrics             (connected) the server's metrics snapshot as JSON
  :subscribe <name> <pattern>
                       (connected) push event matches, e.g.
                       :subscribe fires delete(EMP, N, _, _, _, _)
  :unsubscribe <name>  (connected) drop a subscription
  :notifications [ms]  (connected) drain pushed matches, waiting up to ms
  :quit-server         (connected) ask the server to drain and shut down
  show | history | undo | quit";

fn main() {
    println!("txlog repl — a transaction logic for database specification");
    println!("type 'help' for commands, 'quit' to exit\n");
    let mut repl = Repl::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("txlog> ");
        stdout.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match repl.dispatch(line) {
            Ok(msg) if msg.is_empty() => {}
            Ok(msg) => println!("{msg}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
