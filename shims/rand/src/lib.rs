//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal, deterministic implementation of exactly the API surface the
//! repo uses: `StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool}`. The generator is SplitMix64, which is
//! plenty for synthetic test populations and benchmarks; it is *not* a
//! cryptographic RNG and must never be treated as one.

use std::ops::{Range, RangeInclusive};

/// Sources of randomness: a stream of `u64`s plus derived helpers.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value in `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (0.0 ..= 1.0).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high-quality mantissa bits → uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                // avoid the all-zero fixpoint-ish start; SplitMix64 handles
                // any state, but mix the seed once for good measure
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the small generator is the same SplitMix64 here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
