//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: an exact size or a
/// (half-open / inclusive) range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// inclusive upper bound
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of values from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::seeded(9);
        let exact = vec(0u8..10, 3usize);
        assert_eq!(exact.new_value(&mut rng).len(), 3);
        let ranged = vec(0u8..10, 1..5);
        for _ in 0..100 {
            let v = ranged.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
