//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! small property-testing harness implementing the subset of proptest the
//! repo uses: the [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, integer-range and tuple strategies, [`collection::vec`],
//! [`strategy::Just`] and [`strategy::Union`] (behind `prop_oneof!`), and
//! the `proptest!` / `prop_assert*` macros with a configurable case count.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its seed and case index so
//!   it can be replayed deterministically, but is not minimized;
//! * **deterministic seeding** — cases derive from a hash of the test's
//!   module path and name, so runs are reproducible by construction. Set
//!   `PROPTEST_CASES` to change the per-property case count.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `use proptest::prelude::*;` surface.
pub mod prelude {
    /// Alias of the crate root, so `prop::collection::vec` etc. resolve.
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The body of a `proptest!`-generated test: one run of all cases.
///
/// This is an implementation detail of the `proptest!` macro; it lives in
/// the crate root so the macro can reference it by `$crate` path.
#[doc(hidden)]
pub fn __run_cases(
    config: &test_runner::ProptestConfig,
    test_name: &str,
    mut one_case: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    let seed = test_runner::fnv1a(test_name);
    for case in 0..config.cases {
        let mut rng = test_runner::TestRng::seeded(
            seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        if let Err(e) = one_case(&mut rng) {
            panic!(
                "proptest property {test_name:?} failed at case {case}/{}: {}",
                config.cases, e.0
            );
        }
    }
}

/// Generate property tests. Mirrors proptest's macro of the same name for
/// the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     /// docs and attributes are carried through
///     #[test]
///     fn prop_name(x in 0u64..10, v in prop::collection::vec(0u8..5, 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident
        ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::__run_cases(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        $(let $pat =
                            $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case when the assumption fails. Without shrinking
/// machinery a discarded case simply counts as passing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Choose uniformly between several strategies producing the same value
/// type. Weighted arms (`w => strat`) are accepted and their weights
/// honored by repetition-free integer weighting.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
