//! Case configuration, the deterministic RNG, and failure plumbing.

/// Per-property configuration. Only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A property-case failure: carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic generator strategies draw from (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn seeded(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// FNV-1a over a string — the per-property base seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
