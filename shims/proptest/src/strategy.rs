//! The [`Strategy`] trait and the combinators this workspace uses.
//!
//! A strategy here is just a cloneable value generator over the
//! deterministic [`TestRng`]; there is no shrinking tree.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values for property tests.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f`, retrying a bounded number of
    /// times (the last draw is returned unfiltered if retries run out —
    /// callers should use generous predicates).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Generate recursive structures: at each of `depth` levels, either a
    /// leaf from `self` or one level of `recurse` applied to the strategy
    /// built so far. `desired_size` and `expected_branch_size` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Bias toward leaves (2:1) so expected sizes stay small.
            current = Union::weighted(vec![(2, self.clone().boxed()), (1, deeper)]).boxed();
        }
        current
    }

    /// Type-erase into a reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| inner.new_value(rng)),
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_filter` adapter (bounded rejection sampling).
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        self.inner.new_value(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform (or weighted) choice among boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice; weights must not all be zero.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        let total_weight: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<char> {
    type Value = char;
    fn new_value(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty char range strategy");
        loop {
            let c = lo + (rng.next_u64() % (hi - lo) as u64) as u32;
            if let Some(c) = char::from_u32(c) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::seeded(1);
        let s = (0u64..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_honors_weights() {
        let mut rng = TestRng::seeded(2);
        let s = Union::weighted(vec![(1, Just(0u8).boxed()), (0, Just(1u8).boxed())]);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng), 0);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn size(t: &T) -> usize {
            match t {
                T::Leaf(n) => usize::from(*n % 2) + 1,
                T::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let s = (0u8..5)
            .prop_map(T::Leaf)
            .boxed()
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::seeded(3);
        for _ in 0..200 {
            // depth 3 with binary branching bounds the size
            assert!(size(&s.new_value(&mut rng)) <= 31);
        }
    }
}
