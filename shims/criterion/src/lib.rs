//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! small wall-clock benchmark harness with criterion's API shape:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], `criterion_group!` / `criterion_main!`, and
//! [`black_box`]. Statistics are deliberately simple — warm up, run a
//! fixed measurement budget, report mean ns/iter (and throughput when
//! declared) on stdout. Good enough to compare implementations by orders
//! of magnitude; not a replacement for criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(30),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line parsing is a no-op.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Set the number of samples (scales the measurement budget).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().label;
        run_one(
            &label,
            self.warm_up_time,
            self.measurement_time,
            None,
            &mut f,
        );
        self
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Set the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Declare the amount of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(
            &label,
            self._criterion.warm_up_time,
            self.measurement_time
                .unwrap_or(self._criterion.measurement_time),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Run a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reports are already printed per benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    mode: BencherMode,
    /// total duration and iteration count accumulated by `iter`
    result: Option<(Duration, u64)>,
}

enum BencherMode {
    /// run the closure a fixed number of times, timing the whole batch
    Measure(u64),
}

impl Bencher {
    /// Time the routine. May be called once per closure invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BencherMode::Measure(iters) => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.result = Some((start.elapsed(), iters));
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    budget: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up and calibration: run single iterations until the warm-up
    // budget is spent, to estimate the per-iteration cost.
    let warm_start = Instant::now();
    let mut timed = Duration::ZERO;
    let mut calibration_iters: u64 = 0;
    while warm_start.elapsed() < warm_up || calibration_iters == 0 {
        let mut b = Bencher {
            mode: BencherMode::Measure(1),
            result: None,
        };
        f(&mut b);
        if let Some((d, n)) = b.result {
            timed += d;
            calibration_iters += n;
        } else {
            // closure never called iter(); nothing to measure
            println!("{label}: no measurement (Bencher::iter not called)");
            return;
        }
    }
    let per_iter = (timed.as_nanos() as f64 / calibration_iters as f64).max(1.0);
    // Size the measured batch to fit the budget.
    let iters = ((budget.as_nanos() as f64 / per_iter).ceil() as u64).clamp(1, 10_000_000);
    let mut b = Bencher {
        mode: BencherMode::Measure(iters),
        result: None,
    };
    f(&mut b);
    let (elapsed, n) = b.result.expect("iter was called during calibration");
    let ns = elapsed.as_nanos() as f64 / n as f64;
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Elements(e) => {
            format!("  [{:.3e} elem/s]", e as f64 * 1e9 / ns)
        }
        Throughput::Bytes(bts) => {
            format!("  [{:.3e} B/s]", bts as f64 * 1e9 / ns)
        }
    });
    println!("{label}: {} /iter ({n} iters){rate}", fmt_ns(ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A function/parameter benchmark identifier displayed as `func/param`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identify a benchmark by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] (strings and ids both accepted).
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("noop", 1), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(2) * 2));
    }
}
