//! Direct tests of the finite-model checker: quantifier domains,
//! non-denoting terms, detached states, set formers at the s-level.

use txlog_base::{Atom, TxError};
use txlog_engine::{Binding, Env, ModelBuilder, StateVal, Value};
use txlog_logic::{parse_fterm, parse_sformula, FTerm, ParseCtx, SFormula, STerm, Var};
use txlog_relational::Schema;

fn schema() -> Schema {
    Schema::new()
        .relation("EMP", &["e-name", "salary"])
        .expect("schema builds")
}

fn ctx() -> ParseCtx {
    ParseCtx::with_relations(&["EMP"])
}

fn two_state_model() -> txlog_engine::Model {
    let schema = schema();
    let db = schema.initial_state();
    let emp = schema.rel_id("EMP").expect("EMP exists");
    let (db, _) = db
        .insert_fields(emp, &[Atom::str("ann"), Atom::nat(500)])
        .expect("insert applies");
    let mut b = ModelBuilder::new(schema);
    let s0 = b.add_state(db);
    let raise = parse_fterm(
        "foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 100) end",
        &ctx(),
        &[],
    )
    .expect("parses");
    b.apply(s0, "raise", &raise, &Env::new()).expect("executes");
    b.finish()
}

#[test]
fn state_quantifier_ranges_over_nodes() {
    let model = two_state_model();
    // exactly two states: one where ann earns 500, one where she earns 600
    let f = parse_sformula(
        "exists s: state . exists e': 2tup . e' in s:EMP & salary(e') = 500",
        &ctx(),
    )
    .expect("parses");
    assert!(model.check(&f).expect("evaluates"));
    let f = parse_sformula(
        "exists s: state . exists e': 2tup . e' in s:EMP & salary(e') = 600",
        &ctx(),
    )
    .expect("parses");
    assert!(model.check(&f).expect("evaluates"));
    let f = parse_sformula(
        "exists s: state . exists e': 2tup . e' in s:EMP & salary(e') = 700",
        &ctx(),
    )
    .expect("parses");
    assert!(!model.check(&f).expect("evaluates"));
}

#[test]
fn transaction_quantifier_ranges_over_labels() {
    let model = two_state_model();
    // there is a transaction raising ann's salary
    let f = parse_sformula(
        "exists s: state . exists t: tx . exists e: 2tup .
           s:e in s:EMP & salary(s:e) < salary((s;t):e)",
        &ctx(),
    )
    .expect("parses");
    assert!(model.check(&f).expect("evaluates"));
    // but none lowering it
    let f = parse_sformula(
        "exists s: state . exists t: tx . exists e: 2tup .
           s:e in s:EMP & salary((s;t):e) < salary(s:e)",
        &ctx(),
    )
    .expect("parses");
    assert!(!model.check(&f).expect("evaluates"));
}

#[test]
fn missing_arc_is_non_denoting_not_an_error() {
    let model = two_state_model();
    // ∀s ∀t: the target either has the raise applied or the atom is
    // vacuously false; formula must evaluate without error
    let f = parse_sformula(
        "forall s: state, t: tx . (s;t)::(exists e: 2tup . e in EMP)",
        &ctx(),
    )
    .expect("parses");
    // s1 has no outgoing raise-arc → Holds over non-denoting state is
    // false → ∀ fails, but evaluation succeeds
    assert!(!model.check(&f).expect("evaluates"));
}

#[test]
fn concrete_transactions_evaluate_to_detached_states() {
    let model = two_state_model();
    // executing a *concrete* insert leads to a state not in the graph;
    // formulas over it still evaluate (detached state)
    let f = parse_sformula(
        "forall s: state .
           (s;insert(tuple('zoe', 10), EMP))::(exists e: 2tup .
              e in EMP & e-name(e) = 'zoe')",
        &ctx(),
    )
    .expect("parses");
    assert!(model.check(&f).expect("evaluates"));
}

#[test]
fn sformula_setformer_and_sum() {
    let model = two_state_model();
    let f = parse_sformula(
        "exists s: state .
           sum({ salary(e') | e': 2tup . e' in s:EMP }) = 600",
        &ctx(),
    )
    .expect("parses");
    assert!(model.check(&f).expect("evaluates"));
}

#[test]
fn witness_reporting() {
    let model = two_state_model();
    let f = parse_sformula(
        "forall s: state . exists e': 2tup . e' in s:EMP & salary(e') = 500",
        &ctx(),
    )
    .expect("parses");
    // fails at the raised state; the witness names the binding
    match model.check_with_witness(&f).expect("evaluates") {
        Err(w) => assert!(w.contains("s ↦"), "unexpected witness {w}"),
        Ok(()) => panic!("expected a counterexample"),
    }
}

#[test]
fn env_bindings_thread_through() {
    let model = two_state_model();
    let s = Var::state("s");
    let node = model.graph.state_ids().next().expect("nodes exist");
    let env = Env::new().bind(
        s,
        Binding::Val(Value::State(StateVal::node(
            node,
            model.graph.state(node).clone(),
        ))),
    );
    let f = SFormula::member(
        STerm::var(s).eval_obj(FTerm::TupleCons(vec![FTerm::str("ann"), FTerm::nat(500)])),
        STerm::var(s).eval_obj(FTerm::rel("EMP")),
    );
    assert!(model.eval_sformula(&f, &env).expect("evaluates"));
}

#[test]
fn unbound_variable_is_an_error_not_false() {
    let model = two_state_model();
    let s = Var::state("phantom");
    let f = SFormula::member(
        STerm::var(s).eval_obj(FTerm::rel("EMP")),
        STerm::var(s).eval_obj(FTerm::rel("EMP")),
    );
    let err = model.check(&f).unwrap_err();
    assert!(matches!(err, TxError::Eval(_)), "{err}");
}

#[test]
fn set_sorted_quantifier_is_rejected() {
    let model = two_state_model();
    let v = Var {
        name: txlog_base::Symbol::new("X"),
        sort: txlog_logic::Sort::set(2),
        class: txlog_logic::VarClass::Situational,
    };
    let f = SFormula::forall(v, SFormula::True);
    // ∀ over True short-circuits nothing: domain is still consulted…
    // the checker must refuse rather than silently enumerate nothing
    let out = model.check(&f);
    assert!(out.is_err(), "{out:?}");
}
