//! Execution-semantics tests: the `foreach` enumeration discipline
//! (iteration-linkage), quantifier domains, and error taxonomy.

use txlog_base::{Atom, TxError};
use txlog_engine::{Engine, Env, EvalOptions};
use txlog_logic::{parse_fformula, parse_fterm, ParseCtx};
use txlog_relational::Schema;

fn schema() -> Schema {
    Schema::new()
        .relation("Q", &["v"])
        .expect("schema builds")
        .relation("OUT", &["w"])
        .expect("schema builds")
}

fn ctx() -> ParseCtx {
    ParseCtx::with_relations(&["Q", "OUT"])
}

fn with_q(ns: &[u64]) -> (Schema, txlog_relational::DbState) {
    let schema = schema();
    let qid = schema.rel_id("Q").expect("Q exists");
    let mut db = schema.initial_state();
    for &n in ns {
        db = db.insert_fields(qid, &[Atom::nat(n)]).expect("insert").0;
    }
    (schema, db)
}

/// iteration-linkage: the satisfying set is fixed **at the initial
/// state**. A body that inserts new satisfying tuples must not iterate
/// over them (no runaway).
#[test]
fn foreach_enumeration_is_fixed_at_entry() {
    let (schema, db) = with_q(&[1, 2]);
    let engine = Engine::builder(&schema).build().unwrap();
    // each iteration inserts a new Q-tuple that would itself satisfy the
    // condition if enumeration were re-evaluated
    let tx = parse_fterm(
        "foreach x: 1tup | x in Q do insert(tuple(select(x, 1) + 10), Q) end",
        &ctx(),
        &[],
    )
    .expect("parses");
    let out = engine.execute(&db, &tx, &Env::new()).expect("terminates");
    let qid = schema.rel_id("Q").expect("Q exists");
    // exactly two new tuples: 11 and 12 — not 21, 22, …
    assert_eq!(out.relation(qid).expect("Q in state").len(), 4);
    assert!(out.relation(qid).unwrap().contains_fields(&[Atom::nat(11)]));
    assert!(out.relation(qid).unwrap().contains_fields(&[Atom::nat(12)]));
    assert!(!out.relation(qid).unwrap().contains_fields(&[Atom::nat(21)]));
}

/// …but each iteration *does* see its predecessors' effects (the
/// composition `s[x₁/x] ;; s[x₂/x]` is sequential).
#[test]
fn foreach_bodies_compose_sequentially() {
    let (schema, db) = with_q(&[1, 2, 3]);
    let engine = Engine::builder(&schema).build().unwrap();
    // each iteration records the current size of OUT, which its
    // predecessors have been growing
    let tx = parse_fterm(
        "foreach x: 1tup | x in Q do insert(tuple(size(OUT)), OUT) end",
        &ctx(),
        &[],
    )
    .expect("parses");
    let out = engine.execute(&db, &tx, &Env::new()).expect("executes");
    let oid = schema.rel_id("OUT").expect("OUT exists");
    let rel = out.relation(oid).expect("OUT in state");
    // sizes seen: 0, then 1, then 2
    for n in 0..3u64 {
        assert!(rel.contains_fields(&[Atom::nat(n)]), "missing {n} in {rel}");
    }
}

/// The deletion that removes its own domain is still well-defined: the
/// enumeration snapshot makes it a plain clear-out.
#[test]
fn foreach_can_consume_its_domain() {
    let (schema, db) = with_q(&[5, 6, 7]);
    let opts = EvalOptions {
        check_order_independence: true,
        ..Default::default()
    };
    let engine = Engine::builder(&schema).options(opts).build().unwrap();
    let tx =
        parse_fterm("foreach x: 1tup | x in Q do delete(x, Q) end", &ctx(), &[]).expect("parses");
    let out = engine.execute(&db, &tx, &Env::new()).expect("executes");
    assert!(out
        .relation(schema.rel_id("Q").unwrap())
        .unwrap()
        .is_empty());
}

/// Atom-sorted quantification ranges over the active domain plus formula
/// constants.
#[test]
fn atom_quantifier_domain() {
    let (schema, db) = with_q(&[4, 9]);
    let engine = Engine::builder(&schema).build().unwrap();
    let env = Env::new();
    // ∃v. tuple(v) ∈ Q ∧ v > 5 — needs the active atoms as the domain
    let p = parse_fformula("exists v: atom . tuple(v) in Q & v > 5", &ctx(), &[]).expect("parses");
    assert!(engine.eval_truth(&db, &p, &env).expect("evaluates"));
    // a constant below every stored atom comes from the formula itself
    let p = parse_fformula("exists v: atom . v = 2", &ctx(), &[]).expect("parses");
    assert!(engine.eval_truth(&db, &p, &env).expect("evaluates"));
}

/// Executing an object-sorted term is the executability error, not a
/// panic or a silent no-op.
#[test]
fn query_in_transaction_position_is_rejected() {
    let (schema, db) = with_q(&[1]);
    let engine = Engine::builder(&schema).build().unwrap();
    let q = parse_fterm("size(Q)", &ctx(), &[]).expect("parses");
    let err = engine.execute(&db, &q, &Env::new()).unwrap_err();
    assert!(matches!(err, TxError::NotExecutable(_)), "{err}");
}

/// Inserting a tuple of the wrong arity is a sort error at runtime.
#[test]
fn arity_mismatch_at_runtime() {
    let (schema, db) = with_q(&[1]);
    let engine = Engine::builder(&schema).build().unwrap();
    let tx = parse_fterm("insert(tuple(1, 2), Q)", &ctx(), &[]).expect("parses");
    let err = engine.execute(&db, &tx, &Env::new()).unwrap_err();
    assert!(matches!(err, TxError::Sort(_)), "{err}");
}

/// Unknown relations fail with a schema error.
#[test]
fn unknown_relation_at_runtime() {
    let (schema, db) = with_q(&[1]);
    let engine = Engine::builder(&schema).build().unwrap();
    let ctx2 = ParseCtx::with_relations(&["Q", "OUT", "GHOST"]);
    let tx = parse_fterm("insert(tuple(1), GHOST)", &ctx2, &[]).expect("parses");
    let err = engine.execute(&db, &tx, &Env::new()).unwrap_err();
    assert!(matches!(err, TxError::Schema(_)), "{err}");
}

/// Nested set formers with two bound variables.
#[test]
fn setformer_with_two_binders() {
    let (schema, db) = with_q(&[1, 2]);
    let engine = Engine::builder(&schema).build().unwrap();
    let q = parse_fterm(
        "{ tuple(select(x, 1), select(y, 1)) | x: 1tup, y: 1tup . x in Q & y in Q }",
        &ctx(),
        &[],
    )
    .expect("parses");
    let out = engine
        .eval_obj(&db, &q, &Env::new())
        .expect("evaluates")
        .into_set()
        .expect("a set");
    assert_eq!(out.arity, 2);
    assert_eq!(out.len(), 4); // {1,2} × {1,2}
}

/// The same attribute name in two relations is rejected at engine
/// construction: the paper's `l(t)` sugar needs `l` to pick a unique
/// column, so first-wins resolution would silently misread one relation.
#[test]
fn duplicate_attribute_across_relations_is_rejected() {
    let schema = Schema::new()
        .relation("A", &["name", "x"])
        .expect("schema builds")
        .relation("B", &["name", "y"])
        .expect("schema builds");
    let Err(err) = Engine::builder(&schema).build() else {
        panic!("duplicate attribute accepted");
    };
    assert!(matches!(err, TxError::Schema(_)), "{err}");
    assert!(err.to_string().contains("name"), "{err}");
}

/// The `max_iterations` budget bounds quantifier/set-former enumeration,
/// not just `foreach`, and names the enumeration in its error.
#[test]
fn quantifier_enumeration_respects_budget() {
    let (schema, db) = with_q(&[1, 2, 3, 4, 5]);
    let engine = Engine::builder(&schema)
        .options(EvalOptions {
            max_iterations: 3,
            ..Default::default()
        })
        .build()
        .unwrap();
    let p = parse_fformula("forall x: 1tup . x in Q -> select(x, 1) >= 1", &ctx(), &[])
        .expect("parses");
    let err = engine.eval_truth(&db, &p, &Env::new()).unwrap_err();
    assert!(matches!(err, TxError::InfiniteDomain(_)), "{err}");
    assert!(err.to_string().contains("candidate bindings"), "{err}");
}

/// An empty set-former's arity comes from sort-checking its head, not
/// from a guess: `{ tuple(1, 2) | … }` over an empty domain is a 2-set.
#[test]
fn empty_setformer_arity_from_head_sort() {
    let (schema, db) = with_q(&[]);
    let engine = Engine::builder(&schema).build().unwrap();
    let q = parse_fterm(
        "{ tuple(select(x, 1), select(x, 1)) | x: 1tup . x in Q }",
        &ctx(),
        &[],
    )
    .expect("parses");
    let out = engine
        .eval_obj(&db, &q, &Env::new())
        .expect("evaluates")
        .into_set()
        .expect("a set");
    assert_eq!(out.len(), 0);
    assert_eq!(out.arity, 2);
}
