//! Algebraic laws of traced execution: the delta of a program mirrors the
//! transaction algebra of Section 2 — `Λ` contributes nothing, `;;`
//! composes associatively, `foreach` over an empty satisfying set is a
//! no-op, and inverse steps cancel.

use txlog_base::Atom;
use txlog_engine::{Engine, Env};
use txlog_logic::{parse_fterm, FTerm, ParseCtx};
use txlog_relational::{DbState, Delta, Schema};

fn schema() -> Schema {
    Schema::new()
        .relation("EMP", &["e-name", "salary"])
        .unwrap()
        .relation("LOG", &["l-name"])
        .unwrap()
}

fn ctx() -> ParseCtx {
    ParseCtx::with_relations(&["EMP", "LOG"])
}

fn populated(schema: &Schema) -> DbState {
    let db = schema.initial_state();
    let emp = schema.rel_id("EMP").unwrap();
    let (db, _) = db
        .insert_fields(emp, &[Atom::str("ann"), Atom::nat(500)])
        .unwrap();
    let (db, _) = db
        .insert_fields(emp, &[Atom::str("bob"), Atom::nat(400)])
        .unwrap();
    db
}

fn tx(src: &str) -> FTerm {
    parse_fterm(src, &ctx(), &[]).unwrap()
}

/// Traced execution returns the same state as plain execution, and its
/// delta is exactly the diff of the endpoints.
fn run_traced(schema: &Schema, db: &DbState, t: &FTerm) -> (DbState, Delta) {
    let engine = Engine::builder(schema).build().unwrap();
    let exec = engine.execute_traced(db, t, &Env::new()).unwrap();
    let (end, delta) = (exec.state, exec.delta);
    let plain = engine.execute(db, t, &Env::new()).unwrap();
    assert!(end.content_eq(&plain), "traced and plain execution agree");
    assert_eq!(delta, db.diff(&end), "accumulated delta equals the diff");
    (end, delta)
}

#[test]
fn identity_yields_the_empty_delta() {
    let schema = schema();
    let db = populated(&schema);
    let (end, delta) = run_traced(&schema, &db, &FTerm::Identity);
    assert!(delta.is_empty());
    assert!(end.content_eq(&db));
}

#[test]
fn empty_delta_is_a_two_sided_identity() {
    let schema = schema();
    let db = populated(&schema);
    let (_, d) = run_traced(&schema, &db, &tx("insert(tuple('carol', 300), EMP)"));
    assert_eq!(Delta::empty().compose(&d), d);
    assert_eq!(d.compose(&Delta::empty()), d);
}

#[test]
fn seq_composition_is_associative() {
    let schema = schema();
    let db = populated(&schema);
    let a = tx("insert(tuple('carol', 300), EMP)");
    let b = tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end");
    let c = tx("delete(tuple('carol', 310), EMP)");
    let engine = Engine::builder(&schema).build().unwrap();
    let env = Env::new();
    let e1 = engine.execute_traced(&db, &a, &env).unwrap();
    let (s1, da) = (e1.state, e1.delta);
    let e2 = engine.execute_traced(&s1, &b, &env).unwrap();
    let (s2, db_) = (e2.state, e2.delta);
    let e3 = engine.execute_traced(&s2, &c, &env).unwrap();
    let (s3, dc) = (e3.state, e3.delta);
    assert_eq!(da.compose(&db_).compose(&dc), da.compose(&db_.compose(&dc)));
    // and both equal the delta of the whole sequence program
    let seq = FTerm::seq(FTerm::seq(a, b), c);
    let eseq = engine.execute_traced(&db, &seq, &env).unwrap();
    let (end, dseq) = (eseq.state, eseq.delta);
    assert!(end.content_eq(&s3));
    assert_eq!(dseq, da.compose(&db_).compose(&dc));
}

#[test]
fn foreach_over_empty_set_is_a_no_op() {
    let schema = schema();
    let db = populated(&schema);
    let t = tx("foreach e: 2tup | e in EMP & salary(e) > 9999 do delete(e, EMP) end");
    let (end, delta) = run_traced(&schema, &db, &t);
    assert!(delta.is_empty());
    assert!(end.content_eq(&db));
}

#[test]
fn insert_then_delete_cancels() {
    let schema = schema();
    let db = populated(&schema);
    let t = tx("insert(tuple('carol', 300), EMP) ;; delete(tuple('carol', 300), EMP)");
    let (end, delta) = run_traced(&schema, &db, &t);
    assert!(
        delta.is_empty(),
        "net delta of insert;;delete is Λ: {delta}"
    );
    assert!(end.value_eq(&db));
}

#[test]
fn raise_then_cut_back_cancels() {
    let schema = schema();
    let db = populated(&schema);
    let up = tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end");
    let down = tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) - 10) end");
    let engine = Engine::builder(&schema).build().unwrap();
    let env = Env::new();
    let e1 = engine.execute_traced(&db, &up, &env).unwrap();
    let (s1, d1) = (e1.state, e1.delta);
    let e2 = engine.execute_traced(&s1, &down, &env).unwrap();
    let (s2, d2) = (e2.state, e2.delta);
    assert!(s2.content_eq(&db));
    assert!(d1.compose(&d2).is_empty());
}

#[test]
fn conditional_traces_the_branch_taken() {
    let schema = schema();
    let db = populated(&schema);
    let t = tx("if exists e: 2tup . e in EMP & salary(e) > 450
         then insert(tuple('rich'), LOG)
         else insert(tuple('poor'), LOG)");
    let (_, delta) = run_traced(&schema, &db, &t);
    let log = schema.rel_id("LOG").unwrap();
    let rd = delta.rel(log).expect("LOG was touched");
    assert_eq!(rd.inserted.len(), 1);
    let inserted: Vec<_> = rd.inserted.values().collect();
    assert_eq!(inserted[0].as_ref(), &[Atom::str("rich")][..]);
}

#[test]
fn foreach_delta_composes_per_iteration() {
    let schema = schema();
    let db = populated(&schema);
    let t = tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end");
    let (_, delta) = run_traced(&schema, &db, &t);
    let emp = schema.rel_id("EMP").unwrap();
    let rd = delta.rel(emp).expect("EMP was touched");
    assert_eq!(rd.modified.len(), 2, "one modification per employee");
    assert!(rd.inserted.is_empty() && rd.deleted.is_empty());
}

#[test]
fn assign_traces_creation_and_replacement() {
    let schema = schema();
    let db = populated(&schema);
    // wipe EMP: every previously present tuple is recorded as deleted
    let t = tx("assign(EMP, {e | e: 2tup . e in EMP & salary(e) > 9999})");
    let (end, delta) = run_traced(&schema, &db, &t);
    let emp = schema.rel_id("EMP").unwrap();
    assert!(end.relation(emp).unwrap().is_empty());
    let rd = delta.rel(emp).expect("EMP was touched");
    assert_eq!(rd.deleted.len(), 2);
}
