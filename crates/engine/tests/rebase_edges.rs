//! Edge cases of delta forwarding (`Delta::rebase_fresh`) that the
//! simulation explorer surfaces: an *empty* delta forwarded over a
//! moved head, a forwarded rebase whose WAL record lands across a
//! checkpoint boundary, and a rebase attempt aborted by a poisoned WAL.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use txlog_base::Atom;
use txlog_engine::sim::{StepAction, StepHook, StepPoint};
use txlog_engine::{CommitError, Database, Durability, Env, MemStore, WalError};
use txlog_logic::{parse_fterm, FTerm, ParseCtx};
use txlog_relational::codec::encode_db_state;
use txlog_relational::{DbState, Schema};

fn schema() -> Schema {
    Schema::new()
        .relation("EMP", &["e-name", "salary"])
        .expect("EMP declares")
        .relation("LOG", &["l-name"])
        .expect("LOG declares")
}

fn populated(schema: &Schema) -> DbState {
    let emp = schema.rel_id("EMP").expect("EMP exists");
    let (db, _) = schema
        .initial_state()
        .insert_fields(emp, &[Atom::str("ann"), Atom::nat(500)])
        .expect("seed row inserts");
    db
}

fn tx(src: &str) -> FTerm {
    parse_fterm(src, &ParseCtx::with_relations(&["EMP", "LOG"]), &[]).expect("transaction parses")
}

fn raise() -> FTerm {
    tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end")
}

/// An empty delta (here: the identity transaction, whose footprint is
/// empty too) forwards over a moved head without touching its state:
/// the commit lands, claims a version, and the head content is exactly
/// what the concurrent writer installed.
#[test]
fn empty_delta_forwards_over_a_moved_head() {
    let s = schema();
    let db = Database::with_initial(s.clone(), populated(&s)).expect("database builds");
    let env = Env::new();

    let mut stale = db.session(); // pinned at version 0
    let mut writer = db.session();
    writer.commit("raise", &raise(), &env).expect("raise lands");
    let head_after_raise = (*db.snapshot()).clone();

    let commit = stale
        .commit("noop", &FTerm::Identity, &env)
        .expect("empty delta commits");
    assert!(commit.forwarded, "stale empty delta takes the rebase path");
    assert_eq!(commit.retries, 0, "an empty footprint never conflicts");
    assert_eq!(commit.version, 2, "the no-op still claims a version");
    assert!(
        db.snapshot().content_eq(&head_after_raise),
        "forwarding an empty delta must not change the head's content"
    );
}

/// A forwarded rebase whose commit record lands right after a
/// checkpoint record (`checkpoint_every: 1` checkpoints after every
/// commit): recovery from the raw store bytes reproduces the forwarded
/// head byte-for-byte at the right version.
#[test]
fn forwarded_rebase_recovers_across_a_checkpoint_boundary() {
    let s = schema();
    let store = MemStore::default();
    let (db, report) = Database::builder(s.clone())
        .initial(populated(&s))
        .durability(Durability::Wal {
            sync_every: 1,
            checkpoint_every: 1,
        })
        .open_store(Box::new(store.clone()))
        .expect("fresh log opens");
    assert!(report.fresh);
    let env = Env::new();

    let mut stale = db.session(); // pinned at version 0
    let mut writer = db.session();
    writer.commit("raise", &raise(), &env).expect("raise lands");
    // the raise logged a commit record and then a checkpoint; the
    // forwarded insert below is the first record past that boundary
    let commit = stale
        .commit("memo", &tx("insert(tuple('memo'), LOG)"), &env)
        .expect("disjoint insert commits");
    assert!(commit.forwarded, "stale disjoint commit forwards");
    assert_eq!(commit.version, 2);

    let (recovered, report) = Database::builder(s)
        .durability(Durability::Wal {
            sync_every: 1,
            checkpoint_every: 1,
        })
        .open_store(Box::new(MemStore::from_bytes(store.contents())))
        .expect("log reopens");
    assert!(!report.fresh);
    assert_eq!(recovered.head_version(), 2, "both commits recover");
    assert_eq!(
        encode_db_state(&recovered.snapshot()),
        encode_db_state(&db.snapshot()),
        "recovery reproduces the forwarded head byte-for-byte"
    );
}

/// Fails the `n`-th fsync it sees (1-based), cleanly, once.
struct FailNthFsync {
    seen: AtomicU32,
    nth: u32,
}

impl StepHook for FailNthFsync {
    fn on_step(&self, point: StepPoint) -> StepAction {
        if point == StepPoint::WalFsync && self.seen.fetch_add(1, Ordering::SeqCst) + 1 == self.nth
        {
            return StepAction::FailIo;
        }
        StepAction::Proceed
    }
}

/// A session holding a stale snapshot attempts a forwarded rebase after
/// another writer's fsync failure poisoned the WAL: the rebase aborts
/// with `Poisoned` (fatal, no retry). The commit whose fsync failed
/// *did* install (installation precedes the append under group commit)
/// but was never acknowledged; recovery returns it — nothing the
/// aborted rebase touched.
#[test]
fn rebase_attempt_after_poisoned_wal_aborts_cleanly() {
    let s = schema();
    let store = MemStore::default();
    let (mut db, _) = Database::builder(s.clone())
        .initial(populated(&s))
        .durability(Durability::Wal {
            sync_every: 1,
            checkpoint_every: 0,
        })
        .open_store(Box::new(store.clone()))
        .expect("fresh log opens");
    // installed after open, so the open-time checkpoint's fsync is not
    // counted: the second *commit* fsync is the one that fails
    db.set_step_hook(Arc::new(FailNthFsync {
        seen: AtomicU32::new(0),
        nth: 2,
    }));
    let db = db;
    let env = Env::new();

    let mut stale = db.session(); // pinned at version 0
    let mut writer = db.session();
    writer
        .commit("raise-1", &raise(), &env)
        .expect("first lands");
    let err = writer
        .commit("raise-2", &raise(), &env)
        .expect_err("second commit's fsync fails");
    assert!(
        matches!(err, CommitError::Durability(WalError::Io { .. })),
        "the failing fsync surfaces as an I/O durability error, got {err:?}"
    );
    assert_eq!(
        db.head_version(),
        2,
        "the unacknowledged commit installed before its batch failed"
    );

    // the stale session's footprint (LOG) is disjoint from the raises
    // (EMP), so this would forward — but the WAL is poisoned
    let err = stale
        .commit("memo", &tx("insert(tuple('memo'), LOG)"), &env)
        .expect_err("rebase against a poisoned WAL must abort");
    assert!(
        matches!(err, CommitError::Durability(WalError::Poisoned { .. })),
        "poisoning is fatal and not retried, got {err:?}"
    );
    assert_eq!(db.head_version(), 2, "the aborted rebase never installs");

    // recovery sees the durable-but-unacked second raise, not the memo
    let (recovered, _) = Database::builder(s)
        .durability(Durability::Wal {
            sync_every: 1,
            checkpoint_every: 0,
        })
        .open_store(Box::new(MemStore::from_bytes(store.contents())))
        .expect("log reopens");
    assert_eq!(
        recovered.head_version(),
        2,
        "the appended-but-unsynced commit is on disk and recovers"
    );
    let emp = recovered.schema().rel_id("EMP").expect("EMP exists");
    let snap = recovered.snapshot();
    let salaries: Vec<u64> = snap
        .relation(emp)
        .expect("EMP recovers")
        .iter()
        .map(|t| t.fields()[1].as_nat().expect("salary is a nat"))
        .collect();
    assert_eq!(
        salaries,
        vec![520],
        "both raises are in the recovered state"
    );
}
