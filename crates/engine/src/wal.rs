//! Write-ahead log, checkpoints, and crash recovery.
//!
//! The paper's histories are sequences of states related by transaction
//! arcs, and PR 4's commit pipeline already assigns every committed arc a
//! gapless version number. Durability is then exactly: persist the arcs.
//! This module appends every committed [`Delta`] to a length-prefixed,
//! CRC-32-checksummed log *before* the commit installs, interleaves
//! periodic full-state checkpoints, and recovers by loading the latest
//! valid checkpoint and replaying the delta suffix through
//! [`Delta::apply`] — the same machinery the in-memory pipeline uses.
//!
//! ## Record framing
//!
//! ```text
//! record   := len:u32 ‖ crc:u32 ‖ payload           (len = |payload|, LE)
//! payload  := 0x01 ‖ version:u64 ‖ label:str ‖ next_tuple:u64 ‖ delta
//!           | 0x02 ‖ version:u64 ‖ schema ‖ state   (checkpoint)
//! ```
//!
//! `crc` covers the payload only; a torn or bit-flipped tail fails the
//! checksum (or the length bound) and recovery truncates the log back to
//! the last fully valid record. `next_tuple` snapshots the post-commit
//! tuple allocator so replay restores it exactly even when a
//! transaction's net delta cancels an allocation.
//!
//! ## Recovery invariant
//!
//! Recovery always lands on a *commit-order prefix*: the recovered state
//! is byte-identical (under `txlog_relational::codec`) to the head some
//! prefix of the committed history produced, with a gapless version
//! sequence. The fault-injection tests in `tests/tests/wal_recovery.rs`
//! assert this for a write kill at every byte offset of the log.
//!
//! ## Fault injection
//!
//! The log sits behind the [`LogStore`] trait. [`FileStore`] is the real
//! file-backed implementation; [`MemStore`] is an in-memory store whose
//! writes can be configured to die (leaving a partial record) at any byte
//! offset — and whose syncs can be configured to fail past any offset —
//! which is how the crash matrix simulates power loss and flush failure
//! at every boundary without touching a filesystem.
//!
//! A failure that leaves the log's durable contents in doubt (an fsync
//! or rollback failure after record bytes went out) *poisons* the
//! writer: all further appends fail with [`WalError::Poisoned`] until
//! the database is reopened, so a version that may already be logged is
//! never reused. See `Wal` for the argument.

use crate::sim::{RecordKind, SimEvent, StepAction, StepHook, StepPoint};
use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use txlog_base::obs::{Counter, Metrics};
use txlog_base::TxError;
use txlog_relational::codec::{self, CodecError, Decoder, Encoder};
use txlog_relational::{DbState, Delta, Schema};

/// Durability policy for a [`Database`](crate::db::Database).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Durability {
    /// No persistence: the database lives and dies with the process.
    Off,
    /// Write-ahead logging through the group-commit log writer: every
    /// commit enqueues its record and is acknowledged only after the
    /// batch containing it has been fsynced.
    Wal {
        /// Maximum commit records the log writer drains into one batch
        /// (one fsync per batch). 1 = fsync per commit; larger values
        /// let concurrent sessions share a flush. Unlike the old fsync
        /// *cadence* of the same name, no commit is ever acknowledged
        /// before its batch is durable. Values of 0 are treated as 1.
        sync_every: u64,
        /// Append a full-state checkpoint after every `checkpoint_every`
        /// commits (0 = never checkpoint after the initial one).
        checkpoint_every: u64,
    },
}

impl Durability {
    /// WAL with conservative defaults: flush every record, checkpoint
    /// every 1024 commits.
    pub fn wal() -> Durability {
        Durability::Wal {
            sync_every: 1,
            checkpoint_every: 1024,
        }
    }
}

/// Why a log operation or a recovery failed.
#[derive(Debug)]
pub enum WalError {
    /// The underlying store failed.
    Io {
        /// The store operation that failed.
        op: &'static str,
        /// Description of the failure.
        detail: String,
    },
    /// A record payload failed to decode.
    Codec(CodecError),
    /// The log's contents contradict the protocol (e.g. a commit record
    /// before any checkpoint, or a version gap).
    Corrupt {
        /// Byte offset of the offending record.
        offset: u64,
        /// Description of the contradiction.
        detail: String,
    },
    /// The schema recorded in the log's checkpoint does not match the
    /// schema the database was opened with.
    SchemaMismatch {
        /// Description of the divergence.
        detail: String,
    },
    /// Engine-level validation of the recovered head failed (schema
    /// validation or a registered constraint).
    Engine(TxError),
    /// A previous failure left the log's durable contents possibly
    /// ahead of the in-memory head (e.g. a commit record appended but
    /// its fsync failed), so the writer refuses every further append:
    /// handing out the same version twice would make recovery truncate
    /// at the duplicate and drop acknowledged commits. Recover from the
    /// log (reopen the database) to resume.
    Poisoned {
        /// The failure that poisoned the log.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { op, detail } => write!(f, "log store {op} failed: {detail}"),
            WalError::Codec(e) => write!(f, "log record codec error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "log corrupt at byte {offset}: {detail}")
            }
            WalError::SchemaMismatch { detail } => {
                write!(f, "log schema mismatch: {detail}")
            }
            WalError::Engine(e) => write!(f, "recovered head rejected: {e}"),
            WalError::Poisoned { detail } => {
                write!(
                    f,
                    "log poisoned by an earlier failure ({detail}); reopen to recover"
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    /// The wrapped cause: a [`CodecError`] under [`WalError::Codec`], a
    /// [`TxError`] under [`WalError::Engine`]. The message-only variants
    /// (`Io`, `Corrupt`, `SchemaMismatch`, `Poisoned`) are themselves
    /// the root cause.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Codec(e) => Some(e),
            WalError::Engine(e) => Some(e),
            WalError::Io { .. }
            | WalError::Corrupt { .. }
            | WalError::SchemaMismatch { .. }
            | WalError::Poisoned { .. } => None,
        }
    }
}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> WalError {
        WalError::Codec(e)
    }
}

impl From<TxError> for WalError {
    fn from(e: TxError) -> WalError {
        WalError::Engine(e)
    }
}

/// An append-only byte log the WAL writes through. Implementations must
/// persist appends in order; `sync` makes everything appended so far
/// durable. The trait exists so tests can inject failures at exact byte
/// offsets ([`MemStore`]) while production uses files ([`FileStore`]).
pub trait LogStore: Send {
    /// Current length of the log in bytes.
    fn len(&self) -> Result<u64, WalError>;
    /// True iff the log holds no bytes.
    fn is_empty(&self) -> Result<bool, WalError> {
        Ok(self.len()? == 0)
    }
    /// Read the entire log.
    fn read_all(&mut self) -> Result<Vec<u8>, WalError>;
    /// Append bytes at the end. A failed append may leave a *prefix* of
    /// `bytes` in the log (a torn write) — recovery must cope.
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError>;
    /// Make all appended bytes durable.
    fn sync(&mut self) -> Result<(), WalError>;
    /// Discard every byte at offset `len` and beyond.
    fn truncate(&mut self, len: u64) -> Result<(), WalError>;
}

/// File-backed [`LogStore`].
pub struct FileStore {
    file: File,
}

impl FileStore {
    /// Open (creating if absent) the log file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<FileStore, WalError> {
        let path = path.as_ref();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| WalError::Io {
                op: "open",
                detail: format!("{}: {e}", path.display()),
            })?;
        // The file's directory entry must itself be durable, or a crash
        // can make a freshly created log — initial checkpoint, early
        // commits and all — vanish even though every record was fsynced.
        #[cfg(unix)]
        {
            let dir = match path.parent() {
                Some(p) if !p.as_os_str().is_empty() => p,
                _ => Path::new("."),
            };
            File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| WalError::Io {
                    op: "sync-dir",
                    detail: format!("{}: {e}", dir.display()),
                })?;
        }
        Ok(FileStore { file })
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> WalError {
    move |e| WalError::Io {
        op,
        detail: e.to_string(),
    }
}

impl LogStore for FileStore {
    fn len(&self) -> Result<u64, WalError> {
        Ok(self.file.metadata().map_err(io_err("stat"))?.len())
    }

    fn read_all(&mut self) -> Result<Vec<u8>, WalError> {
        self.file.seek(SeekFrom::Start(0)).map_err(io_err("seek"))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf).map_err(io_err("read"))?;
        Ok(buf)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.file.seek(SeekFrom::End(0)).map_err(io_err("seek"))?;
        self.file.write_all(bytes).map_err(io_err("append"))
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(io_err("sync"))
    }

    fn truncate(&mut self, len: u64) -> Result<(), WalError> {
        self.file.set_len(len).map_err(io_err("truncate"))?;
        self.file.seek(SeekFrom::End(0)).map_err(io_err("seek"))?;
        Ok(())
    }
}

/// Buffer plus durability watermark shared by every [`MemStore`] clone.
#[derive(Default)]
struct MemInner {
    buf: Vec<u8>,
    /// Bytes made durable by the last successful `sync`. A simulated
    /// power loss keeps only `buf[..synced]`; the tail past it was
    /// accepted but never flushed.
    synced: usize,
}

/// In-memory [`LogStore`] with deterministic write-failure injection.
///
/// Clones share the same buffer, so a test can keep a handle, hand a
/// clone to a `Database`, "crash" it, and then inspect or recover from
/// exactly the bytes that made it to the store. The store also tracks a
/// *durability watermark* — how many bytes the last successful `sync`
/// covered — so a crash simulator can distinguish the power-loss image
/// ([`MemStore::durable_contents`]) from the full buffer.
#[derive(Clone, Default)]
pub struct MemStore {
    inner: Arc<Mutex<MemInner>>,
    /// Absolute byte offset at which writes die: an append that would
    /// carry the log past this offset writes only the prefix up to it
    /// and fails, and every later append fails outright — simulating a
    /// crash mid-write.
    fail_at: Option<u64>,
    /// Absolute byte offset past which `sync` dies: once the log holds
    /// more than this many bytes every sync fails (the appended bytes
    /// stay in the buffer) — simulating a disk that accepts writes but
    /// can no longer flush them.
    fail_sync_at: Option<u64>,
}

impl MemStore {
    /// An empty store that never fails.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// A store pre-loaded with `bytes` (e.g. a captured log image),
    /// treated as already durable.
    pub fn from_bytes(bytes: Vec<u8>) -> MemStore {
        let synced = bytes.len();
        MemStore {
            inner: Arc::new(Mutex::new(MemInner { buf: bytes, synced })),
            fail_at: None,
            fail_sync_at: None,
        }
    }

    /// Configure writes to die at absolute byte offset `offset`.
    pub fn failing_at(mut self, offset: u64) -> MemStore {
        self.fail_at = Some(offset);
        self
    }

    /// Configure `sync` to fail once the log holds more than `offset`
    /// bytes (appends still land in the buffer).
    pub fn failing_sync_at(mut self, offset: u64) -> MemStore {
        self.fail_sync_at = Some(offset);
        self
    }

    /// A copy of the store's current contents.
    pub fn contents(&self) -> Vec<u8> {
        self.inner.lock().expect("mem store lock").buf.clone()
    }

    /// Bytes covered by the last successful `sync` — the power-loss
    /// crash image: everything after the watermark was accepted into
    /// the buffer but never made durable.
    pub fn durable_contents(&self) -> Vec<u8> {
        let inner = self.inner.lock().expect("mem store lock");
        inner.buf[..inner.synced].to_vec()
    }

    /// Length of [`MemStore::durable_contents`].
    pub fn durable_len(&self) -> usize {
        self.inner.lock().expect("mem store lock").synced
    }
}

impl LogStore for MemStore {
    fn len(&self) -> Result<u64, WalError> {
        Ok(self.inner.lock().expect("mem store lock").buf.len() as u64)
    }

    fn read_all(&mut self) -> Result<Vec<u8>, WalError> {
        Ok(self.contents())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let mut inner = self.inner.lock().expect("mem store lock");
        if let Some(fail_at) = self.fail_at {
            let cur = inner.buf.len() as u64;
            let end = cur + bytes.len() as u64;
            if end > fail_at {
                let keep = fail_at.saturating_sub(cur) as usize;
                inner.buf.extend_from_slice(&bytes[..keep]);
                return Err(WalError::Io {
                    op: "append",
                    detail: format!("injected write failure at byte {fail_at}"),
                });
            }
        }
        inner.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let mut inner = self.inner.lock().expect("mem store lock");
        if let Some(fail_sync_at) = self.fail_sync_at {
            if inner.buf.len() as u64 > fail_sync_at {
                return Err(WalError::Io {
                    op: "sync",
                    detail: format!("injected sync failure past byte {fail_sync_at}"),
                });
            }
        }
        inner.synced = inner.buf.len();
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), WalError> {
        let mut inner = self.inner.lock().expect("mem store lock");
        inner.buf.truncate(len as usize);
        inner.synced = inner.synced.min(inner.buf.len());
        Ok(())
    }
}

const TAG_COMMIT: u8 = 1;
const TAG_CHECKPOINT: u8 = 2;
const FRAME_HEADER: u64 = 8; // len:u32 ‖ crc:u32

/// The write side: frames records and reports into the `wal_*`
/// counters. Sync and checkpoint *cadence* live one layer up, in the
/// group-commit log writer (`group::GroupCommitter`): the `Wal`
/// only knows how to append a record, flush, and poison itself.
///
/// ## Poisoning
///
/// Under group commit a version is consumed when the commit *installs*,
/// before its record is written; the record is appended afterwards by
/// the log-writer thread. A failure while writing therefore always
/// leaves a gap or a record in doubt — a clean append failure means the
/// installed version will never reach the log, a failed fsync means the
/// appended records may or may not be durable, a torn append could not
/// be rolled back. In every such case the `Wal` poisons itself (here
/// for its own failures, or via [`Wal::poison_external`] for failures
/// the committer detects): every later operation returns
/// [`WalError::Poisoned`] until the database is reopened through
/// recovery. Otherwise the log would grow a version gap or a duplicate,
/// recovery's gapless-version scan would truncate there, and every
/// acknowledged commit after it would be silently dropped.
pub(crate) struct Wal {
    store: Box<dyn LogStore>,
    poisoned: Option<String>,
    metrics: Metrics,
    /// Simulation seam (see [`crate::db::Database::set_step_hook`]):
    /// append/fsync become schedulable, failable steps. `None` in normal
    /// operation — one branch per store operation.
    hook: Option<Arc<dyn StepHook>>,
}

impl Wal {
    pub(crate) fn new(store: Box<dyn LogStore>, metrics: Metrics) -> Wal {
        Wal {
            store,
            poisoned: None,
            metrics,
            hook: None,
        }
    }

    pub(crate) fn set_hook(&mut self, hook: Arc<dyn StepHook>) {
        self.hook = Some(hook);
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn check_poisoned(&self) -> Result<(), WalError> {
        match &self.poisoned {
            Some(detail) => Err(WalError::Poisoned {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    fn poison(&mut self, detail: String) {
        if self.poisoned.is_none() {
            self.poisoned = Some(detail);
            if let Some(h) = &self.hook {
                h.on_event(SimEvent::WalPoisoned);
            }
        }
    }

    /// Poison on behalf of the group committer, for failures the `Wal`
    /// itself reports cleanly but that leave an *installed* version
    /// unloggable (e.g. a clean append failure after the commit already
    /// took its version under the head lock).
    pub(crate) fn poison_external(&mut self, detail: String) {
        self.poison(detail);
    }

    pub(crate) fn append_record(
        &mut self,
        payload: &[u8],
        kind: RecordKind,
    ) -> Result<(), WalError> {
        self.check_poisoned()?;
        if let Some(h) = &self.hook {
            if h.on_step(StepPoint::WalAppend(kind)) == StepAction::FailIo {
                // a clean injected failure: no bytes reached the store,
                // so nothing to roll back and no reason to poison — the
                // version is provably unlogged and may be reused
                return Err(WalError::Io {
                    op: "append",
                    detail: "injected append failure (schedule)".to_string(),
                });
            }
        }
        let before = self.store.len()?;
        if payload.len() as u64 > u64::from(u32::MAX) {
            return Err(WalError::Corrupt {
                offset: before,
                detail: format!(
                    "record payload of {} bytes exceeds the u32 frame limit",
                    payload.len()
                ),
            });
        }
        let mut frame = Encoder::new();
        frame.u32(payload.len() as u32);
        frame.u32(codec::crc32(payload));
        let mut bytes = frame.finish();
        bytes.extend_from_slice(payload);
        if let Err(e) = self.store.append(&bytes) {
            // A failed append may have left a torn prefix; pull the log
            // back to the last record boundary so a later record is not
            // appended after unreachable garbage (which would hide it
            // from recovery). If even the truncate fails the tail stays
            // torn, so refuse further appends until recovery cleans it.
            if self.store.truncate(before).is_err() {
                self.poison(format!("torn append could not be rolled back: {e}"));
            }
            return Err(e);
        }
        self.metrics.bump(Counter::WalAppends);
        self.metrics.add(Counter::WalBytes, bytes.len() as u64);
        if let Some(h) = &self.hook {
            h.on_event(SimEvent::WalAppended(kind));
        }
        Ok(())
    }

    pub(crate) fn sync(&mut self) -> Result<(), WalError> {
        self.check_poisoned()?;
        let injected = self
            .hook
            .as_ref()
            .is_some_and(|h| h.on_step(StepPoint::WalFsync) == StepAction::FailIo);
        let synced = if injected {
            Err(WalError::Io {
                op: "sync",
                detail: "injected sync failure (schedule)".to_string(),
            })
        } else {
            self.store.sync()
        };
        if let Err(e) = synced {
            // The appended records may or may not be durable (and after
            // a failed fsync the kernel may have dropped the dirty
            // pages, so retrying proves nothing): their versions must
            // never be reused.
            self.poison(format!("sync failed with records in flight: {e}"));
            return Err(e);
        }
        self.metrics.bump(Counter::WalFsyncs);
        if let Some(h) = &self.hook {
            h.on_event(SimEvent::WalSynced);
        }
        Ok(())
    }

    /// Encode one commit record's payload. Called under the head lock at
    /// submit time, so the log-writer thread only ever moves bytes.
    pub(crate) fn encode_commit(
        version: u64,
        label: &str,
        delta: &Delta,
        state_after: &DbState,
    ) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(TAG_COMMIT);
        e.u64(version);
        e.str(label);
        e.u64(state_after.next_tuple_id());
        e.delta(delta);
        e.finish()
    }

    /// Append one commit record (no fsync — the caller decides when the
    /// batch flushes). The group committer appends pre-encoded payloads
    /// directly; this convenience wrapper serves the tests.
    #[cfg(test)]
    pub(crate) fn log_commit(
        &mut self,
        version: u64,
        label: &str,
        delta: &Delta,
        state_after: &DbState,
    ) -> Result<(), WalError> {
        let payload = Wal::encode_commit(version, label, delta, state_after);
        self.append_record(&payload, RecordKind::Commit)
    }

    /// Append a full-state checkpoint record (no fsync).
    pub(crate) fn log_checkpoint(
        &mut self,
        version: u64,
        schema: &Schema,
        state: &DbState,
    ) -> Result<(), WalError> {
        self.check_poisoned()?;
        let mut e = Encoder::new();
        e.u8(TAG_CHECKPOINT);
        e.u64(version);
        e.schema(schema);
        e.db_state(state);
        self.append_record(&e.finish(), RecordKind::Checkpoint)?;
        self.metrics.bump(Counter::WalCheckpoints);
        Ok(())
    }
}

/// What log recovery did, surfaced through
/// [`Database::recover`](crate::db::Database::recover) and the builder's
/// `open_*` methods.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// The recovered head version.
    pub version: u64,
    /// Version of the checkpoint replay started from.
    pub checkpoint_version: u64,
    /// Commit deltas replayed on top of the checkpoint.
    pub replayed_deltas: u64,
    /// Torn/corrupt tail records dropped by truncation (framing is lost
    /// past the first invalid record, so this is 0 or 1).
    pub truncated_records: u64,
    /// Bytes dropped by truncation.
    pub truncated_bytes: u64,
    /// True when the log held no usable records and the database was
    /// freshly initialized instead.
    pub fresh: bool,
}

pub(crate) struct RecoveredLog {
    pub state: DbState,
    pub version: u64,
    pub report: RecoveryReport,
    /// The replayed commit suffix (version, delta) in commit order —
    /// everything since the checkpoint replay started from. The event
    /// dispatcher replays these through registered automata so pattern
    /// state survives recovery.
    pub replayed: Vec<(u64, Delta)>,
}

/// One parsed, checksum-valid record.
enum Record {
    Commit {
        version: u64,
        next_tuple: u64,
        delta: Delta,
    },
    Checkpoint {
        version: u64,
        schema: Schema,
        state: DbState,
    },
}

fn decode_record(payload: &[u8]) -> Result<Record, CodecError> {
    let mut d = Decoder::new(payload);
    let at = d.offset();
    match d.u8("record tag")? {
        TAG_COMMIT => {
            let version = d.u64("commit version")?;
            let _label = d.str("commit label")?;
            let next_tuple = d.u64("commit allocator")?;
            let delta = d.delta()?;
            d.finish()?;
            Ok(Record::Commit {
                version,
                next_tuple,
                delta,
            })
        }
        TAG_CHECKPOINT => {
            let version = d.u64("checkpoint version")?;
            let schema = d.schema()?;
            let state = d.db_state()?;
            d.finish()?;
            Ok(Record::Checkpoint {
                version,
                schema,
                state,
            })
        }
        tag => Err(CodecError::BadTag {
            offset: at,
            tag,
            what: "log record",
        }),
    }
}

/// Render a schema's declarations for a mismatch diagnostic.
fn schema_sig(s: &Schema) -> String {
    let mut out = String::new();
    for d in s.decls() {
        out.push_str(&d.to_string());
        out.push(' ');
    }
    out
}

/// Scan the log, truncate any torn or corrupt tail back to the last
/// valid record, and rebuild the state at the surviving head: the latest
/// checkpoint plus the replayed delta suffix. Returns `None` when no
/// usable record survives (the caller initializes afresh).
///
/// Consistency rules enforced during the scan — a record violating one
/// ends the valid prefix exactly like a bad checksum:
///
/// * the first record must be a checkpoint (the writer always opens a
///   log with one);
/// * commit versions are gapless: each must be exactly one past the
///   previous record's version;
/// * a mid-log checkpoint must carry the version of the commit before it.
///
/// A checkpoint recording a different schema than the one the database
/// is being opened with is a configuration error, not corruption, and
/// fails the whole recovery.
pub(crate) fn recover_log(
    store: &mut dyn LogStore,
    schema: &Schema,
    metrics: &Metrics,
) -> Result<Option<RecoveredLog>, WalError> {
    let bytes = store.read_all()?;
    let total = bytes.len() as u64;
    let mut pos: u64 = 0;
    let mut valid_end: u64 = 0;
    let mut checkpoint: Option<(u64, DbState)> = None;
    // (version, post-commit allocator, delta) since the last checkpoint
    let mut suffix: VecDeque<(u64, u64, Delta)> = VecDeque::new();
    let mut last_version: Option<u64> = None;
    loop {
        if total - pos < FRAME_HEADER {
            break;
        }
        let mut d = Decoder::new(&bytes[pos as usize..(pos + FRAME_HEADER) as usize]);
        let len = match d.u32("record length") {
            Ok(v) => v as u64,
            Err(_) => break,
        };
        let crc = match d.u32("record checksum") {
            Ok(v) => v,
            Err(_) => break,
        };
        if len > total - pos - FRAME_HEADER {
            break; // torn tail: the record never finished writing
        }
        let payload = &bytes[(pos + FRAME_HEADER) as usize..(pos + FRAME_HEADER + len) as usize];
        if codec::crc32(payload) != crc {
            break; // bit rot or a torn write inside the record
        }
        let record = match decode_record(payload) {
            Ok(r) => r,
            Err(_) => break,
        };
        match record {
            Record::Commit {
                version,
                next_tuple,
                delta,
            } => {
                match last_version {
                    // a log must open with a checkpoint; a commit first
                    // means the prefix is unusable from here on
                    None => break,
                    Some(prev) if version != prev + 1 => break,
                    Some(_) => {}
                }
                suffix.push_back((version, next_tuple, delta));
                last_version = Some(version);
            }
            Record::Checkpoint {
                version,
                schema: logged,
                state,
            } => {
                match last_version {
                    Some(prev) if version != prev => break,
                    _ => {}
                }
                if logged.decls() != schema.decls() {
                    return Err(WalError::SchemaMismatch {
                        detail: format!(
                            "log checkpoint declares [{}] but the database was opened \
                             with [{}]",
                            schema_sig(&logged),
                            schema_sig(schema)
                        ),
                    });
                }
                checkpoint = Some((version, state));
                suffix.clear();
                last_version = Some(version);
            }
        }
        pos += FRAME_HEADER + len;
        valid_end = pos;
    }
    if valid_end < total {
        store.truncate(valid_end)?;
        metrics.bump(Counter::RecoverTruncatedRecords);
    }
    let Some((checkpoint_version, mut state)) = checkpoint else {
        return Ok(None);
    };
    let mut version = checkpoint_version;
    let replayed = suffix.len() as u64;
    let mut replayed_deltas = Vec::with_capacity(suffix.len());
    for (v, next_tuple, delta) in suffix {
        state = delta.apply(&state).map_err(|e| WalError::Corrupt {
            offset: valid_end,
            detail: format!("replaying commit {v} failed: {e}"),
        })?;
        state.advance_allocator(next_tuple);
        version = v;
        metrics.bump(Counter::RecoverReplayedDeltas);
        replayed_deltas.push((v, delta));
    }
    Ok(Some(RecoveredLog {
        state,
        version,
        replayed: replayed_deltas,
        report: RecoveryReport {
            version,
            checkpoint_version,
            replayed_deltas: replayed,
            truncated_records: u64::from(valid_end < total),
            truncated_bytes: total - valid_end,
            fresh: false,
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use txlog_base::Atom;

    fn schema() -> Schema {
        Schema::new()
            .relation("R", &["a", "b"])
            .expect("schema builds")
    }

    fn commit_chain(n: u64) -> (Schema, Vec<DbState>, MemStore) {
        // build a chain of states and log them through a Wal, flushing
        // after every record the way a sync_every=1 committer would
        let sch = schema();
        let rid = sch.rel_id("R").expect("R declared");
        let store = MemStore::new();
        let mut wal = Wal::new(Box::new(store.clone()), Metrics::disabled());
        let mut states = vec![sch.initial_state()];
        wal.log_checkpoint(0, &sch, &states[0]).expect("checkpoint");
        wal.sync().expect("checkpoint syncs");
        for v in 1..=n {
            let prev = states.last().expect("non-empty").clone();
            let (next, _) = prev
                .insert_fields(rid, &[Atom::nat(v), Atom::str("x")])
                .expect("insert");
            let delta = prev.diff(&next);
            wal.log_commit(v, &format!("c{v}"), &delta, &next)
                .expect("log commit");
            wal.sync().expect("commit syncs");
            states.push(next);
        }
        (sch, states, store)
    }

    #[test]
    fn recover_replays_full_chain() {
        let (sch, states, store) = commit_chain(5);
        let mut s = MemStore::from_bytes(store.contents());
        let r = recover_log(&mut s, &sch, &Metrics::disabled())
            .expect("recovery runs")
            .expect("log non-empty");
        assert_eq!(r.version, 5);
        assert_eq!(r.report.replayed_deltas, 5);
        assert_eq!(r.report.truncated_records, 0);
        let expected = states.last().expect("non-empty");
        assert_eq!(
            codec::encode_db_state(&r.state),
            codec::encode_db_state(expected)
        );
    }

    #[test]
    fn recover_from_checkpointed_log_skips_replay() {
        let sch = schema();
        let rid = sch.rel_id("R").expect("R declared");
        let store = MemStore::new();
        let mut wal = Wal::new(Box::new(store.clone()), Metrics::disabled());
        let mut state = sch.initial_state();
        wal.log_checkpoint(0, &sch, &state).expect("checkpoint");
        for v in 1..=5u64 {
            let (next, _) = state
                .insert_fields(rid, &[Atom::nat(v), Atom::str("y")])
                .expect("insert");
            let delta = state.diff(&next);
            wal.log_commit(v, "c", &delta, &next).expect("log");
            state = next;
            // checkpoint every 2 commits, as the committer's cadence would
            if v % 2 == 0 {
                wal.log_checkpoint(v, &sch, &state).expect("checkpoint");
            }
        }
        wal.sync().expect("sync");
        let mut s = MemStore::from_bytes(store.contents());
        let r = recover_log(&mut s, &sch, &Metrics::disabled())
            .expect("recovery runs")
            .expect("log non-empty");
        assert_eq!(r.version, 5);
        assert_eq!(r.report.checkpoint_version, 4);
        assert_eq!(r.report.replayed_deltas, 1);
        assert_eq!(
            codec::encode_db_state(&r.state),
            codec::encode_db_state(&state)
        );
    }

    #[test]
    fn torn_tail_is_truncated_to_a_prefix() {
        let (sch, states, store) = commit_chain(3);
        let bytes = store.contents();
        // chop mid-way through the last record
        let mut s = MemStore::from_bytes(bytes[..bytes.len() - 3].to_vec());
        let r = recover_log(&mut s, &sch, &Metrics::disabled())
            .expect("recovery runs")
            .expect("log non-empty");
        assert_eq!(r.version, 2);
        assert_eq!(r.report.truncated_records, 1);
        assert!(r.report.truncated_bytes > 0);
        assert_eq!(
            codec::encode_db_state(&r.state),
            codec::encode_db_state(&states[2])
        );
        // the store was truncated back to the valid prefix: a second
        // recovery sees a clean log
        let r2 = recover_log(&mut s, &sch, &Metrics::disabled())
            .expect("recovery runs")
            .expect("log non-empty");
        assert_eq!(r2.version, 2);
        assert_eq!(r2.report.truncated_records, 0);
    }

    #[test]
    fn empty_or_garbage_log_recovers_to_none() {
        let sch = schema();
        let mut empty = MemStore::new();
        assert!(recover_log(&mut empty, &sch, &Metrics::disabled())
            .expect("recovery runs")
            .is_none());
        let mut garbage = MemStore::from_bytes(vec![0xAB; 37]);
        assert!(recover_log(&mut garbage, &sch, &Metrics::disabled())
            .expect("recovery runs")
            .is_none());
        assert_eq!(garbage.len().expect("len"), 0, "garbage tail truncated");
    }

    #[test]
    fn schema_mismatch_is_a_hard_error() {
        let (_, _, store) = commit_chain(1);
        let other = Schema::new().relation("S", &["z"]).expect("schema builds");
        let mut s = MemStore::from_bytes(store.contents());
        match recover_log(&mut s, &other, &Metrics::disabled()) {
            Err(WalError::SchemaMismatch { .. }) => {}
            Err(other) => panic!("expected SchemaMismatch, got {other:?}"),
            Ok(_) => panic!("expected SchemaMismatch, got a recovered log"),
        }
    }

    #[test]
    fn sync_failure_after_commit_append_poisons_the_wal() {
        let sch = schema();
        let rid = sch.rel_id("R").expect("R declared");
        // measure the opening checkpoint so only post-checkpoint syncs die
        let probe = MemStore::new();
        let mut w = Wal::new(Box::new(probe.clone()), Metrics::disabled());
        w.log_checkpoint(0, &sch, &sch.initial_state())
            .expect("checkpoint");
        let checkpoint_len = probe.contents().len() as u64;

        let store = MemStore::new().failing_sync_at(checkpoint_len);
        let mut wal = Wal::new(Box::new(store.clone()), Metrics::disabled());
        let s0 = sch.initial_state();
        wal.log_checkpoint(0, &sch, &s0)
            .expect("checkpoint appends");
        wal.sync().expect("checkpoint syncs");
        let (s1, _) = s0
            .insert_fields(rid, &[Atom::nat(1), Atom::str("x")])
            .expect("insert");
        let d1 = s0.diff(&s1);
        // the append lands, the batch sync dies: the record may be
        // durable, so the flush must fail AND the wal must seal itself
        wal.log_commit(1, "c1", &d1, &s1).expect("append lands");
        match wal.sync() {
            Err(WalError::Io { op: "sync", .. }) => {}
            other => panic!("expected a sync failure, got {other:?}"),
        }
        match wal.log_commit(1, "c1-retry", &d1, &s1) {
            Err(WalError::Poisoned { .. }) => {}
            other => panic!("expected Poisoned, got {other:?}"),
        }
        // the logged-but-unacknowledged commit is a valid prefix: no
        // duplicate version was ever appended after it
        let mut s = MemStore::from_bytes(store.contents());
        let r = recover_log(&mut s, &sch, &Metrics::disabled())
            .expect("recovery runs")
            .expect("log non-empty");
        assert_eq!(r.version, 1);
        assert_eq!(
            codec::encode_db_state(&r.state),
            codec::encode_db_state(&s1)
        );
    }

    #[test]
    fn torn_checkpoint_append_rolls_back_to_a_clean_prefix() {
        let sch = schema();
        let rid = sch.rel_id("R").expect("R declared");
        // measure the layout: opening checkpoint, then one commit record
        let probe = MemStore::new();
        let mut w = Wal::new(Box::new(probe.clone()), Metrics::disabled());
        let s0 = sch.initial_state();
        w.log_checkpoint(0, &sch, &s0).expect("checkpoint");
        let (s1, _) = s0
            .insert_fields(rid, &[Atom::nat(1), Atom::str("x")])
            .expect("insert");
        let d1 = s0.diff(&s1);
        w.log_commit(1, "c1", &d1, &s1).expect("commit logs");
        let commit_end = probe.contents().len() as u64;

        // die a few bytes into the checkpoint that follows the commit
        let store = MemStore::new().failing_at(commit_end + 3);
        let mut wal = Wal::new(Box::new(store.clone()), Metrics::disabled());
        wal.log_checkpoint(0, &sch, &s0).expect("checkpoint fits");
        wal.log_commit(1, "c1", &d1, &s1).expect("commit fits");
        assert!(
            wal.log_checkpoint(1, &sch, &s1).is_err(),
            "the checkpoint append must fail"
        );
        // the torn prefix was rolled back, so the wal itself is not
        // poisoned — whether the *installed* commit the checkpoint was
        // covering survives is the committer's call (it poisons via
        // poison_external when a failed append strands a version)
        assert!(!wal.is_poisoned());
        wal.poison_external("checkpoint after commit 1 failed".to_string());
        match wal.log_commit(2, "c2", &d1, &s1) {
            Err(WalError::Poisoned { .. }) => {}
            other => panic!("expected Poisoned, got {other:?}"),
        }
        // the surviving log is the checkpoint plus commit 1 (the torn
        // checkpoint was rolled back), a clean prefix
        assert_eq!(store.contents().len() as u64, commit_end);
        let mut s = MemStore::from_bytes(store.contents());
        let r = recover_log(&mut s, &sch, &Metrics::disabled())
            .expect("recovery runs")
            .expect("log non-empty");
        assert_eq!(r.version, 1);
        assert_eq!(r.report.truncated_records, 0);
        assert_eq!(
            codec::encode_db_state(&r.state),
            codec::encode_db_state(&s1)
        );
    }

    #[test]
    fn mem_store_sync_watermark_tracks_durable_prefix() {
        let mut store = MemStore::new();
        store.append(b"abc").expect("append");
        assert_eq!(store.durable_len(), 0, "unsynced bytes are not durable");
        store.sync().expect("sync");
        assert_eq!(store.durable_len(), 3);
        store.append(b"defg").expect("append");
        assert_eq!(store.durable_contents(), b"abc".to_vec());
        store.truncate(2).expect("truncate");
        assert_eq!(store.durable_len(), 2, "truncate clamps the watermark");
    }

    #[test]
    fn injected_write_failure_leaves_recoverable_prefix() {
        let sch = schema();
        let rid = sch.rel_id("R").expect("R declared");
        // capture a full run first to learn the record layout
        let (_, states, full) = commit_chain(4);
        let full_len = full.contents().len() as u64;
        // now kill the write stream at every offset and recover
        for fail_at in 0..=full_len {
            let store = MemStore::new().failing_at(fail_at);
            let mut wal = Wal::new(Box::new(store.clone()), Metrics::disabled());
            let mut state = sch.initial_state();
            let mut durable = 0u64; // commits acknowledged after their sync
            if wal.log_checkpoint(0, &sch, &state).is_ok() && wal.sync().is_ok() {
                for v in 1..=4u64 {
                    let (next, _) = state
                        .insert_fields(rid, &[Atom::nat(v), Atom::str("x")])
                        .expect("insert");
                    let delta = state.diff(&next);
                    if wal.log_commit(v, &format!("c{v}"), &delta, &next).is_err()
                        || wal.sync().is_err()
                    {
                        break;
                    }
                    durable = v;
                    state = next;
                }
            }
            let mut s = MemStore::from_bytes(store.contents());
            let recovered = recover_log(&mut s, &sch, &Metrics::disabled()).expect("recovery runs");
            let version = recovered.as_ref().map_or(0, |r| r.version);
            // every acknowledged commit must be recovered (sync_every=1)
            assert!(
                version >= durable,
                "fail_at={fail_at}: acked {durable} but recovered {version}"
            );
            if let Some(r) = recovered {
                let expected = &states[r.version as usize];
                assert_eq!(
                    codec::encode_db_state(&r.state),
                    codec::encode_db_state(expected),
                    "fail_at={fail_at}: recovered state is not the version-{} prefix",
                    r.version
                );
            }
        }
    }

    /// Every `WalError` variant either exposes its wrapped cause through
    /// `Error::source()` or is itself the root cause.
    #[test]
    fn wal_error_source_chain_per_variant() {
        use std::error::Error as _;
        let io = WalError::Io {
            op: "append",
            detail: "disk full".to_string(),
        };
        assert!(io.source().is_none());
        let corrupt = WalError::Corrupt {
            offset: 12,
            detail: "version gap".to_string(),
        };
        assert!(corrupt.source().is_none());
        let mismatch = WalError::SchemaMismatch {
            detail: "arity".to_string(),
        };
        assert!(mismatch.source().is_none());
        let poisoned = WalError::Poisoned {
            detail: "torn append".to_string(),
        };
        assert!(poisoned.source().is_none());
        let codec = WalError::Codec(CodecError::BadMagic);
        let src = codec.source().expect("Codec chains its CodecError");
        assert!(src.downcast_ref::<CodecError>().is_some());
        let engine = WalError::Engine(TxError::eval("constraint rejected"));
        let src = engine.source().expect("Engine chains its TxError");
        assert!(src.downcast_ref::<TxError>().is_some());
    }
}
