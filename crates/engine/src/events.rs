//! The reactive-event hub: complex-event automata over the commit
//! stream.
//!
//! Every committed [`Delta`] is enqueued (under the head lock, so queue
//! order is exactly commit order) and dispatched (outside it, on the
//! committing thread) through the registered [`Automaton`]s. A match
//! drives two effects:
//!
//! * **Materialization** — patterns registered with
//!   [`PatternDef::materialized`] install their matches as tuples of a
//!   system-maintained relation, via a validation-skipping system
//!   commit (see `Database::install_system_rows`). Inserts are
//!   if-absent, so re-firing after crash recovery is idempotent —
//!   delivery into history relations is *at-least-once*.
//! * **Notification** — in-process subscribers registered with
//!   `Database::subscribe_pattern` get a callback per match, in commit
//!   order. The wire protocol's `Subscribe` rides on this.
//!
//! Dispatch is serialized by a `try_lock`ed mutex: whichever committing
//! thread wins drains the whole queue, so a thread returning from
//! `commit` has always seen its own commit dispatched (sequential
//! workflows observe materialized relations immediately), and automata
//! advance strictly in version order.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use txlog_base::obs::{Counter, Metrics};
use txlog_base::{Atom, RelId, Symbol, TxError, TxResult};
use txlog_events::{Automaton, Binding};
use txlog_relational::{Delta, Schema};

pub use txlog_events::{EventKind, Materialize, PTerm, Pattern, PatternDef, PatternError};

/// Bound on the retained dispatched-delta history. The history seeds
/// the automaton of a pattern subscribed mid-stream (so joins may reach
/// back to retained commits) and comes pre-seeded from WAL recovery's
/// replayed suffix.
const HISTORY_CAP: usize = 8192;

/// Handle on one live subscription, returned by
/// `Database::subscribe_pattern` and consumed by
/// `Database::unsubscribe`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SubId(u64);

/// One delivered match: which pattern fired, at which committed
/// version, with which variable binding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventNotification {
    /// The pattern's registry name.
    pub name: String,
    /// The version of the commit that completed the match.
    pub version: u64,
    /// The match's variable binding.
    pub binding: Binding,
}

/// A subscriber callback. Invoked on the committing thread with no
/// engine locks held; keep it short (enqueue and return) — a slow
/// callback delays the committer that happens to be draining.
pub type EventCallback = Arc<dyn Fn(&EventNotification) + Send + Sync>;

/// The system-commit hook [`EventHub::drain`] hands each pattern's new
/// rows to: `(pattern name, history relation, rows)`.
pub(crate) type MaterializeFn<'a> = dyn FnMut(&str, RelId, Vec<Vec<Atom>>) + 'a;

/// A materialization, resolved against the schema.
struct MatSpec {
    rel: RelId,
    columns: Vec<Symbol>,
}

struct Registration {
    name: String,
    automaton: Automaton,
    materialize: Option<MatSpec>,
    subscribers: Vec<(SubId, EventCallback)>,
}

struct HubInner {
    regs: Vec<Registration>,
    queue: VecDeque<(u64, Delta)>,
    history: VecDeque<(u64, Delta)>,
    next_sub: u64,
}

/// The engine's event-dispatch stage. One per [`crate::Database`].
pub(crate) struct EventHub {
    /// True iff any registration exists — checked before cloning a
    /// delta under the head lock, so databases without patterns pay
    /// one atomic load per commit.
    active: AtomicBool,
    inner: Mutex<HubInner>,
    /// Serializes dispatch. Only ever `try_lock`ed: a committer that
    /// loses the race leaves its queue entry for the current drainer.
    dispatch: Mutex<()>,
}

/// What one queue item resolved to, computed under the inner lock and
/// effected outside it.
struct Effects {
    mats: Vec<(String, RelId, Vec<Vec<Atom>>)>,
    notes: Vec<(EventCallback, EventNotification)>,
}

/// Reject patterns over system relations: a materialization feeding an
/// automaton would loop, and system relations are engine-written in the
/// first place.
fn reject_system_rels(pattern: &Pattern, schema: &Schema) -> TxResult<()> {
    for rel in pattern.rels() {
        if schema.by_name(rel).is_some_and(|d| d.system) {
            return Err(TxError::schema(format!(
                "event patterns cannot watch system relation {rel} \
                 (system relations are themselves event-maintained)"
            )));
        }
    }
    Ok(())
}

/// Validate a definition against a schema without registering it — the
/// builder's early error path.
pub(crate) fn check_def(def: &PatternDef, schema: &Schema) -> TxResult<()> {
    reject_system_rels(&def.pattern, schema)?;
    Automaton::compile(&def.pattern, schema)
        .map_err(|e| TxError::schema(format!("event pattern {}: {e}", def.name)))?;
    Ok(())
}

impl EventHub {
    pub(crate) fn new() -> EventHub {
        EventHub {
            active: AtomicBool::new(false),
            inner: Mutex::new(HubInner {
                regs: Vec::new(),
                queue: VecDeque::new(),
                history: VecDeque::new(),
                next_sub: 0,
            }),
            dispatch: Mutex::new(()),
        }
    }

    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Relaxed)
    }

    /// Pre-seed the dispatch queue with WAL recovery's replayed commit
    /// suffix, so a subsequent drain replays it through every automaton
    /// (and re-materializes any match the crash lost).
    pub(crate) fn seed_replay(&self, replayed: Vec<(u64, Delta)>) {
        let mut inner = self.inner.lock().expect("event hub lock");
        inner.queue.extend(replayed);
    }

    /// Record a recovered suffix as already-dispatched history — the
    /// no-registrations variant of [`EventHub::seed_replay`], so a later
    /// live subscription can still prime over it.
    pub(crate) fn seed_history(&self, replayed: Vec<(u64, Delta)>) {
        let mut inner = self.inner.lock().expect("event hub lock");
        inner.history.extend(replayed);
        while inner.history.len() > HISTORY_CAP {
            inner.history.pop_front();
        }
    }

    /// Register a build-time pattern definition. The schema already
    /// declares the materialized relation (the builder added it).
    pub(crate) fn register_def(
        &self,
        def: &PatternDef,
        schema: &Schema,
        metrics: &Metrics,
    ) -> TxResult<()> {
        reject_system_rels(&def.pattern, schema)?;
        let automaton = Automaton::compile(&def.pattern, schema)
            .map_err(|e| TxError::schema(format!("event pattern {}: {e}", def.name)))?;
        let materialize = match &def.materialize {
            None => None,
            Some(m) => {
                let certain = def.pattern.certain_vars();
                let mut columns = Vec::with_capacity(m.columns.len());
                for c in &m.columns {
                    let v = Symbol::new(c);
                    if !certain.contains(&v) {
                        return Err(TxError::schema(format!(
                            "event pattern {}: materialization column {c} is not \
                             certainly bound by the pattern",
                            def.name
                        )));
                    }
                    columns.push(v);
                }
                Some(MatSpec {
                    rel: schema.rel_id(&m.relation)?,
                    columns,
                })
            }
        };
        let mut inner = self.inner.lock().expect("event hub lock");
        if inner.regs.iter().any(|r| r.name == def.name) {
            return Err(TxError::schema(format!(
                "event pattern {} is already registered",
                def.name
            )));
        }
        inner.regs.push(Registration {
            name: def.name.clone(),
            automaton,
            materialize,
            subscribers: Vec::new(),
        });
        drop(inner);
        self.active.store(true, Relaxed);
        metrics.bump(Counter::EvtPatterns);
        Ok(())
    }

    /// Register a live, subscription-only pattern. The fresh automaton
    /// is primed over the retained history *silently* (no
    /// notifications): matches completing at or after the subscription
    /// are delivered, matches wholly in the past are not. `primer`
    /// supplements the hub's own history (which only accumulates while
    /// some registration exists) with deltas the caller retained — the
    /// head's recent delta log; overlapping versions are advanced once,
    /// and versions still queued for dispatch are left to the dispatcher
    /// (they advance this automaton like any other).
    pub(crate) fn subscribe(
        &self,
        name: &str,
        pattern: &Pattern,
        schema: &Schema,
        callback: EventCallback,
        metrics: &Metrics,
        primer: &[(u64, Delta)],
    ) -> TxResult<SubId> {
        reject_system_rels(pattern, schema)?;
        let mut automaton = Automaton::compile(pattern, schema)
            .map_err(|e| TxError::schema(format!("event pattern {name}: {e}")))?;
        let mut inner = self.inner.lock().expect("event hub lock");
        if inner.regs.iter().any(|r| r.name == name) {
            return Err(TxError::schema(format!(
                "event pattern {name} is already registered"
            )));
        }
        let queued_from = inner.queue.front().map_or(u64::MAX, |(v, _)| *v);
        {
            let mut by_version: std::collections::BTreeMap<u64, &Delta> =
                inner.history.iter().map(|(v, d)| (*v, d)).collect();
            for (v, d) in primer {
                by_version.entry(*v).or_insert(d);
            }
            for (v, delta) in by_version {
                if v >= queued_from {
                    break;
                }
                let _ = automaton.advance(delta);
            }
        }
        let id = SubId(inner.next_sub);
        inner.next_sub += 1;
        inner.regs.push(Registration {
            name: name.to_string(),
            automaton,
            materialize: None,
            subscribers: vec![(id, callback)],
        });
        drop(inner);
        self.active.store(true, Relaxed);
        metrics.bump(Counter::EvtPatterns);
        Ok(id)
    }

    /// Drop a subscription; the registration goes with it when nothing
    /// else (a materialization, another subscriber) holds it. Returns
    /// false for an unknown (or already-removed) id.
    pub(crate) fn unsubscribe(&self, id: SubId) -> bool {
        let mut inner = self.inner.lock().expect("event hub lock");
        let mut found = false;
        for reg in &mut inner.regs {
            reg.subscribers.retain(|(s, _)| {
                if *s == id {
                    found = true;
                    false
                } else {
                    true
                }
            });
        }
        inner
            .regs
            .retain(|r| r.materialize.is_some() || !r.subscribers.is_empty());
        if inner.regs.is_empty() {
            self.active.store(false, Relaxed);
        }
        found
    }

    /// Enqueue a committed delta. Caller holds the head lock — that is
    /// what makes queue order commit order.
    pub(crate) fn enqueue(&self, version: u64, delta: Delta) {
        let mut inner = self.inner.lock().expect("event hub lock");
        inner.queue.push_back((version, delta));
    }

    /// Drain the queue through every automaton. `materialize` performs
    /// the system commit for one pattern's new rows (it takes the head
    /// lock; no hub lock is held around the call). Non-blocking when
    /// another thread is already draining — the current drainer picks
    /// the entry up.
    pub(crate) fn drain(&self, metrics: &Metrics, materialize: &mut MaterializeFn<'_>) {
        loop {
            let Ok(guard) = self.dispatch.try_lock() else {
                return;
            };
            loop {
                let item = {
                    let mut inner = self.inner.lock().expect("event hub lock");
                    inner.queue.pop_front()
                };
                let Some((version, delta)) = item else { break };
                let effects = self.advance_all(version, delta, metrics);
                for (name, rel, rows) in effects.mats {
                    materialize(&name, rel, rows);
                }
                for (cb, note) in effects.notes {
                    metrics.bump(Counter::EvtNotificationsSent);
                    cb(&note);
                }
            }
            drop(guard);
            // A commit that raced our unlock may have enqueued after we
            // saw an empty queue; loop once more rather than strand it.
            if self.inner.lock().expect("event hub lock").queue.is_empty() {
                return;
            }
        }
    }

    /// Advance every automaton by one delta (under the inner lock) and
    /// collect the effects to apply outside it.
    fn advance_all(&self, version: u64, delta: Delta, metrics: &Metrics) -> Effects {
        let _span = metrics.span("events.dispatch");
        let mut effects = Effects {
            mats: Vec::new(),
            notes: Vec::new(),
        };
        let mut inner = self.inner.lock().expect("event hub lock");
        for reg in &mut inner.regs {
            let fired = reg.automaton.advance(&delta);
            metrics.add(Counter::EvtSteps, fired.steps);
            if fired.matches.is_empty() {
                continue;
            }
            metrics.add(Counter::EvtMatches, fired.matches.len() as u64);
            if let Some(m) = &reg.materialize {
                let rows: Vec<Vec<Atom>> = fired
                    .matches
                    .iter()
                    .map(|b| m.columns.iter().map(|c| b[c]).collect())
                    .collect();
                effects.mats.push((reg.name.clone(), m.rel, rows));
            }
            for (_, cb) in &reg.subscribers {
                for binding in &fired.matches {
                    effects.notes.push((
                        Arc::clone(cb),
                        EventNotification {
                            name: reg.name.clone(),
                            version,
                            binding: binding.clone(),
                        },
                    ));
                }
            }
        }
        inner.history.push_back((version, delta));
        while inner.history.len() > HISTORY_CAP {
            inner.history.pop_front();
        }
        effects
    }
}
