//! Snapshot-isolated database sessions with optimistic parallel commits.
//!
//! The paper's states are immutable values related by transaction arcs,
//! which is exactly the shape multi-version concurrency wants: a
//! [`Database`] keeps a single committed *head* [`DbState`] behind a
//! mutex, readers share `Arc` snapshots of it without any coordination,
//! and writers go through an optimistic commit pipeline:
//!
//! 1. A [`Session`] executes a transaction against its snapshot with
//!    [`Engine::execute_traced`], producing an [`Execution`] — the
//!    candidate successor state plus the [`Delta`] of the run.
//! 2. [`Session::commit`] takes the head lock. If the head is still the
//!    session's snapshot, the candidate is validated and installed.
//! 3. If the head moved, the commit is *forwarded* when the
//!    transaction's static [`Footprint`] (every relation it can read or
//!    write) is disjoint from the composition of the concurrently
//!    committed deltas: the recorded delta — with freshly allocated
//!    tuple identities renumbered from the head's allocator via
//!    [`Delta::rebase_fresh`] — is applied directly to the head, no
//!    re-execution needed. Disjointness of the full footprint means the
//!    transaction would have read the same values and written the same
//!    changes at the moved head, so the forward is serializable.
//! 4. Otherwise the commit *conflicts*: the session re-executes against
//!    a fresh snapshot after a bounded exponential backoff, up to
//!    [`RetryPolicy::max_retries`] times, then surfaces
//!    [`CommitError::RetriesExhausted`].
//!
//! Constraint validation runs before installation, under the head lock
//! (commits serialize; readers never block). Each registered
//! [`CommitConstraint`] is first screened by its read set: a constraint
//! whose reads are disjoint from the commit's delta kept its verdict by
//! induction (the head always satisfies every registered constraint), so
//! only the affected ones are re-checked — fanned out across a
//! `std::thread::scope` worker pool. A violation aborts the commit with
//! [`CommitError::ConstraintViolation`] and leaves the head untouched.
//!
//! Durable databases commit through the *group-commit* stage (the
//! crate-private `group` module): the head lock section only validates, encodes the
//! commit record, enqueues it into a bounded submission queue, and
//! installs; a dedicated log-writer thread batches queued records, issues
//! one fsync per batch, and acknowledges every commit in the batch
//! together. [`Session::commit`] blocks on that acknowledgment (so no
//! fsync runs under the head lock, and concurrent sessions share
//! flushes); [`Session::submit_prepared`] returns the [`CommitTicket`]
//! unawaited for callers that pipeline their own commits.
//!
//! The whole pipeline reports into [`txlog_base::obs`]: commit
//! attempts/conflicts/retries counters, applied-vs-forwarded outcomes,
//! validation runs and read-set skips, a `commit.validate` span, and a
//! `commit.log_wait` span covering the wait for group ack.

use crate::env::Env;
use crate::events::{EventCallback, EventHub, SubId};
use crate::exec::{Engine, EvalOptions, Execution};
use crate::group::{GroupCommitter, Slot, SubmitError, WriterOp};
use crate::sim::{ProtocolBug, StepHook, StepPoint};
use crate::wal::{self, Durability, FileStore, LogStore, RecoveryReport, Wal, WalError};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use txlog_base::obs::{Counter, Metrics};
use txlog_base::{Atom, RelId, Symbol, TxError, TxResult};
use txlog_events::{Pattern, PatternDef};
use txlog_logic::plan::find_membership_rel;
use txlog_logic::{FFormula, FTerm, ObjSort, Sort, Var};
use txlog_relational::{DbState, Delta, Schema};

/// How many recent `(version, delta)` pairs the head retains for
/// conflict analysis. A session whose snapshot is older than the log can
/// still commit — it just always takes the conservative conflict path.
const DELTA_LOG_CAP: usize = 64;

/// Default bound on the group-commit submission queue
/// ([`DatabaseBuilder::log_queue_cap`]). Deep enough that overload only
/// fires when the log writer is genuinely stalled, shallow enough that
/// memory stays bounded when it is.
const DEFAULT_LOG_QUEUE_CAP: usize = 1024;

/// An integrity constraint checkable at commit time.
///
/// The engine crate cannot name the constraints crate (the dependency
/// points the other way), so the commit pipeline validates through this
/// trait; `txlog_constraints::SessionConstraint` is the standard
/// implementation, wrapping an s-formula with its checkability window
/// and read set.
pub trait CommitConstraint: Send + Sync {
    /// Diagnostic name, used in [`CommitError::ConstraintViolation`].
    fn name(&self) -> &str;

    /// Number of consecutive states (`>= 1`) a check needs to see: 1 for
    /// static constraints, 2 for single-transition constraints, etc.
    fn window_states(&self) -> usize;

    /// Whether a commit with this delta can change the constraint's
    /// verdict. Sound to over-approximate; returning `false` skips the
    /// check (the head satisfies every registered constraint by
    /// induction, so an unaffected verdict carries over).
    fn affected_by(&self, schema: &Schema, delta: &Delta) -> bool;

    /// Decide the constraint over a window of consecutive states,
    /// oldest first, where `labels[i]` names the transaction that
    /// produced `states[i + 1]`. The window holds at most
    /// [`window_states`](CommitConstraint::window_states) states (fewer
    /// near the start of history).
    fn check(&self, schema: &Schema, states: &[DbState], labels: &[&str]) -> TxResult<bool>;
}

/// The static read/write footprint of a transaction: an
/// over-approximation of every relation executing it can touch, split
/// into the relations it may *read* and those it may *write*.
///
/// `foreach`/quantifier/set-former variables bounded by a membership
/// conjunct (`x ∈ R ∧ …`) contribute their relation to the read set;
/// the write primitives contribute their target relation to the write
/// set, with `modify` resolved through the enumeration binding of its
/// tuple variable. Anything the analysis cannot bound — program
/// variables, tuple parameters, atom quantifiers (whose domain is every
/// atom in the state), user functions — poisons the footprint to
/// [`Footprint::all`], which conflicts with every concurrent commit
/// (always sound, never clever).
///
/// The read/write split is what the [`IsolationLevel`] spectrum prices:
/// snapshot sessions validate the *union* against concurrent deltas,
/// read-committed sessions only their write set, and serializable
/// sessions additionally certify the session's accumulated statement
/// reads at commit time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Footprint {
    /// Relations the program may read; `None` when unbounded.
    reads: Option<BTreeSet<Symbol>>,
    /// Relations the program may write; `None` when unbounded.
    writes: Option<BTreeSet<Symbol>>,
}

/// Whether a (possibly unbounded) relation set intersects the relations
/// a delta touched. Unbounded sets overlap every non-empty delta;
/// relations the schema does not know are treated as overlapping.
fn set_overlaps_delta(set: &Option<BTreeSet<Symbol>>, schema: &Schema, delta: &Delta) -> bool {
    match set {
        None => !delta.is_empty(),
        Some(rels) => delta
            .touched()
            .any(|rid| schema.by_id(rid).map_or(true, |d| rels.contains(&d.name))),
    }
}

impl Footprint {
    /// The unbounded footprint: may read and write anything.
    pub fn all() -> Footprint {
        Footprint {
            reads: None,
            writes: None,
        }
    }

    /// The empty footprint: provably touches nothing. The identity of
    /// [`Footprint::merge`], used as the seed of a session's accumulated
    /// read set.
    pub fn empty() -> Footprint {
        Footprint {
            reads: Some(BTreeSet::new()),
            writes: Some(BTreeSet::new()),
        }
    }

    /// Analyze a transaction program.
    pub fn of_program(t: &FTerm) -> Footprint {
        let mut w = FpWalker {
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
            bound: Vec::new(),
        };
        if w.term(t) {
            Footprint {
                reads: Some(w.reads),
                writes: Some(w.writes),
            }
        } else {
            Footprint::all()
        }
    }

    /// Analyze a truth-valued formula: everything it touches is a read.
    pub fn of_formula(p: &FFormula) -> Footprint {
        let mut w = FpWalker {
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
            bound: Vec::new(),
        };
        if w.formula(p) {
            Footprint {
                reads: Some(w.reads),
                writes: Some(w.writes),
            }
        } else {
            Footprint::all()
        }
    }

    /// True iff the analysis could not bound the footprint.
    pub fn is_all(&self) -> bool {
        self.reads.is_none() || self.writes.is_none()
    }

    /// The bounded read set, if the analysis produced one.
    pub fn reads(&self) -> Option<&BTreeSet<Symbol>> {
        self.reads.as_ref()
    }

    /// The bounded write set, if the analysis produced one.
    pub fn writes(&self) -> Option<&BTreeSet<Symbol>> {
        self.writes.as_ref()
    }

    /// The bounded relation set — the union of reads and writes — if
    /// the analysis produced one.
    pub fn rels(&self) -> Option<BTreeSet<Symbol>> {
        match (&self.reads, &self.writes) {
            (Some(r), Some(w)) => Some(r.union(w).copied().collect()),
            _ => None,
        }
    }

    /// Everything this footprint touches, demoted to reads — how a
    /// dry-run execution is accounted: nothing was written, but the
    /// caller observed state derived from every relation the program
    /// touched (a written relation's candidate content reveals its prior
    /// content too).
    pub fn as_reads(&self) -> Footprint {
        Footprint {
            reads: self.rels(),
            writes: Some(BTreeSet::new()),
        }
    }

    /// True when the read set is non-empty (or unbounded) — i.e. there
    /// is something to certify.
    pub fn has_reads(&self) -> bool {
        self.reads.as_ref().map_or(true, |r| !r.is_empty())
    }

    /// Union `other` into this footprint; poison is absorbing.
    pub fn merge(&mut self, other: &Footprint) {
        self.reads = match (self.reads.take(), &other.reads) {
            (Some(mut mine), Some(theirs)) => {
                mine.extend(theirs.iter().copied());
                Some(mine)
            }
            _ => None,
        };
        self.writes = match (self.writes.take(), &other.writes) {
            (Some(mut mine), Some(theirs)) => {
                mine.extend(theirs.iter().copied());
                Some(mine)
            }
            _ => None,
        };
    }

    /// Whether the full footprint (reads ∪ writes) intersects the
    /// relations a delta touched — the snapshot-isolation conflict test.
    pub fn overlaps_delta(&self, schema: &Schema, delta: &Delta) -> bool {
        set_overlaps_delta(&self.reads, schema, delta)
            || set_overlaps_delta(&self.writes, schema, delta)
    }

    /// Whether the write set intersects the relations a delta touched —
    /// the read-committed (first-committer-wins) conflict test.
    pub fn writes_overlap_delta(&self, schema: &Schema, delta: &Delta) -> bool {
        set_overlaps_delta(&self.writes, schema, delta)
    }

    /// Whether the read set intersects the relations a delta touched —
    /// the serializable read-certification test.
    pub fn reads_overlap_delta(&self, schema: &Schema, delta: &Delta) -> bool {
        set_overlaps_delta(&self.reads, schema, delta)
    }
}

struct FpWalker {
    reads: BTreeSet<Symbol>,
    writes: BTreeSet<Symbol>,
    /// Enumeration variables currently in scope, newest last, each with
    /// the relation its membership conjunct bounds it to.
    bound: Vec<(Var, Symbol)>,
}

impl FpWalker {
    fn lookup(&self, v: Var) -> Option<Symbol> {
        self.bound
            .iter()
            .rev()
            .find(|(b, _)| *b == v)
            .map(|(_, r)| *r)
    }

    /// Bind `v` through a membership conjunct of `cond`, recording the
    /// relation. `None` (poison) for atom variables — their fallback
    /// domain enumerates every atom in the state — and for tuple
    /// variables without a bounding conjunct.
    fn bind_through(&mut self, v: Var, cond: &FFormula) -> Option<()> {
        match v.sort {
            Sort::Obj(ObjSort::Tup(_)) => {
                let rel = find_membership_rel(cond, v)?;
                self.reads.insert(rel);
                self.bound.push((v, rel));
                Some(())
            }
            _ => None,
        }
    }

    /// Returns false when the footprint cannot be bounded; the caller
    /// discards everything, so the binding stack need not be unwound on
    /// that path.
    fn term(&mut self, t: &FTerm) -> bool {
        match t {
            FTerm::Identity | FTerm::Nat(_) | FTerm::Str(_) => true,
            FTerm::Var(v) => match v.sort {
                // an atom value comes straight from the environment
                Sort::Obj(ObjSort::Atom) => true,
                // a tuple variable re-reads its current fields from the
                // state: bounded only when we know which relation holds it
                Sort::Obj(ObjSort::Tup(_)) => self.lookup(*v).is_some(),
                // program / state / situational variables: opaque
                _ => false,
            },
            FTerm::Rel(r) => {
                self.reads.insert(*r);
                true
            }
            FTerm::Attr(_, inner) | FTerm::Select(inner, _) | FTerm::IdOf(inner) => {
                self.term(inner)
            }
            FTerm::TupleCons(ts) | FTerm::App(_, ts) => ts.iter().all(|t| self.term(t)),
            FTerm::UserApp(..) => false,
            FTerm::SetFormer { head, vars, cond } => {
                let depth = self.bound.len();
                for v in vars {
                    if self.bind_through(*v, cond).is_none() {
                        return false;
                    }
                }
                let ok = self.formula(cond) && self.term(head);
                self.bound.truncate(depth);
                ok
            }
            FTerm::Seq(a, b) => self.term(a) && self.term(b),
            FTerm::Cond(p, a, b) => self.formula(p) && self.term(a) && self.term(b),
            FTerm::Foreach(v, p, body) => {
                let depth = self.bound.len();
                if self.bind_through(*v, p).is_none() {
                    return false;
                }
                let ok = self.formula(p) && self.term(body);
                self.bound.truncate(depth);
                ok
            }
            FTerm::Insert(tup, rel) | FTerm::Delete(tup, rel) => {
                self.writes.insert(*rel);
                self.term(tup)
            }
            FTerm::Modify(tup, _, val) | FTerm::ModifyAttr(tup, _, val) => {
                // the write lands wherever the tuple lives; bounded only
                // for a tuple variable whose relation the enumeration fixed
                match &**tup {
                    FTerm::Var(v) => match self.lookup(*v) {
                        Some(rel) => {
                            self.writes.insert(rel);
                            self.term(val)
                        }
                        None => false,
                    },
                    _ => false,
                }
            }
            FTerm::Assign(rel, set) => {
                self.writes.insert(*rel);
                self.term(set)
            }
        }
    }

    fn formula(&mut self, p: &FFormula) -> bool {
        match p {
            FFormula::True | FFormula::False => true,
            FFormula::Cmp(_, a, b) | FFormula::Member(a, b) | FFormula::Subset(a, b) => {
                self.term(a) && self.term(b)
            }
            FFormula::Not(q) => self.formula(q),
            FFormula::And(a, b)
            | FFormula::Or(a, b)
            | FFormula::Implies(a, b)
            | FFormula::Iff(a, b) => self.formula(a) && self.formula(b),
            FFormula::Exists(v, body) | FFormula::Forall(v, body) => {
                let depth = self.bound.len();
                if self.bind_through(*v, body).is_none() {
                    return false;
                }
                let ok = self.formula(body);
                self.bound.truncate(depth);
                ok
            }
            FFormula::UserPred(..) => false,
        }
    }
}

/// Retry/backoff policy for optimistic commits.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Re-executions allowed after the first conflicted attempt before
    /// [`CommitError::RetriesExhausted`].
    pub max_retries: u32,
    /// First backoff delay; doubles per retry. Zero disables sleeping
    /// (useful for deterministic tests).
    pub backoff_base: Duration,
    /// Upper bound on a single backoff delay.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A policy that retries up to `max_retries` times without sleeping.
    pub fn no_backoff(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }

    fn delay(&self, retry: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let mult = 1u32.checked_shl(retry.min(16)).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(mult)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap)
    }
}

/// The concurrency contract a [`Session`] runs under — which anomalies
/// the session tolerates in exchange for cheaper commits.
///
/// * [`ReadCommitted`](IsolationLevel::ReadCommitted) re-pins the head
///   snapshot at every statement boundary ([`Session::execute`],
///   [`Session::prepare`], [`Session::ask`], and each commit call), and
///   conflicts only on *write-write* overlap with concurrently
///   committed deltas (first committer wins). Non-repeatable reads
///   between statements are permitted; lost updates are not.
/// * [`Snapshot`](IsolationLevel::Snapshot) — the default — keeps the
///   session pinned to one snapshot and conflicts when the *full*
///   program footprint (reads ∪ writes) overlaps concurrent deltas.
///   Statements always see one consistent state; write skew across
///   statement-level reads is permitted.
/// * [`Serializable`](IsolationLevel::Serializable) extends snapshot
///   validation with SSI-style read certification: the session
///   accumulates the read footprint of every statement it runs, and a
///   commit aborts with [`CommitError::SerializationFailure`] when any
///   concurrently committed delta intersects that read set. Stale reads
///   cannot be repaired by re-execution, so the failure is fatal rather
///   than retried — callers restart the whole transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum IsolationLevel {
    /// Statement-level snapshots, write-write conflict detection only.
    ReadCommitted,
    /// One snapshot per transaction, full-footprint conflict detection.
    #[default]
    Snapshot,
    /// Snapshot plus commit-time certification of accumulated reads.
    Serializable,
}

impl IsolationLevel {
    /// Every level, weakest first.
    pub const ALL: [IsolationLevel; 3] = [
        IsolationLevel::ReadCommitted,
        IsolationLevel::Snapshot,
        IsolationLevel::Serializable,
    ];

    /// Stable kebab-case name, used on the wire and in the REPL.
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "read-committed",
            IsolationLevel::Snapshot => "snapshot",
            IsolationLevel::Serializable => "serializable",
        }
    }

    /// Parse a level name as typed in a REPL (`read-committed`,
    /// `snapshot`, `serializable`, plus the usual abbreviations).
    pub fn parse(s: &str) -> Option<IsolationLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "read-committed" | "read_committed" | "readcommitted" | "rc" => {
                Some(IsolationLevel::ReadCommitted)
            }
            "snapshot" | "si" => Some(IsolationLevel::Snapshot),
            "serializable" | "ssi" => Some(IsolationLevel::Serializable),
            _ => None,
        }
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-session configuration, consumed by [`Database::session_with`].
///
/// ```
/// # use txlog_engine::db::{Database, IsolationLevel, RetryPolicy, SessionOptions};
/// # use txlog_relational::Schema;
/// # let schema = Schema::new().relation("EMP", &["name"]).unwrap();
/// # let db = Database::new(schema).unwrap();
/// let session = db.session_with(
///     SessionOptions::serializable()
///         .retry(RetryPolicy::no_backoff(4))
///         .label_prefix("etl/"),
/// );
/// assert_eq!(session.isolation(), IsolationLevel::Serializable);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SessionOptions {
    /// The session's isolation level.
    pub isolation: IsolationLevel,
    /// The session's retry policy; `None` inherits the database-wide
    /// default ([`DatabaseBuilder::default_retry`]).
    pub retry: Option<RetryPolicy>,
    /// Prepended verbatim to every commit label this session produces —
    /// a namespace for the history's transaction arcs.
    pub label_prefix: Option<String>,
}

impl SessionOptions {
    /// Default options: snapshot isolation, database-default retries.
    pub fn new() -> SessionOptions {
        SessionOptions::default()
    }

    /// Options at [`IsolationLevel::ReadCommitted`].
    pub fn read_committed() -> SessionOptions {
        SessionOptions::new().isolation(IsolationLevel::ReadCommitted)
    }

    /// Options at [`IsolationLevel::Snapshot`].
    pub fn snapshot() -> SessionOptions {
        SessionOptions::new().isolation(IsolationLevel::Snapshot)
    }

    /// Options at [`IsolationLevel::Serializable`].
    pub fn serializable() -> SessionOptions {
        SessionOptions::new().isolation(IsolationLevel::Serializable)
    }

    /// Set the isolation level.
    pub fn isolation(mut self, level: IsolationLevel) -> SessionOptions {
        self.isolation = level;
        self
    }

    /// Set a session-specific retry policy (overrides the database
    /// default).
    pub fn retry(mut self, retry: RetryPolicy) -> SessionOptions {
        self.retry = Some(retry);
        self
    }

    /// Set the commit-label prefix.
    pub fn label_prefix(mut self, prefix: impl Into<String>) -> SessionOptions {
        self.label_prefix = Some(prefix.into());
        self
    }
}

/// Why a commit did not install.
#[derive(Debug)]
pub enum CommitError {
    /// The head moved past the session's snapshot and the transaction's
    /// footprint overlapped the concurrently committed deltas. Only
    /// [`Session::try_commit`] surfaces this; [`Session::commit`]
    /// retries until the policy is exhausted.
    Conflict {
        /// The head version the commit raced against.
        head_version: u64,
    },
    /// The candidate state violated a registered constraint. Not
    /// retried: the transaction itself produces an illegal state.
    ConstraintViolation {
        /// Name of the violated constraint.
        constraint: String,
    },
    /// Every attempt permitted by the [`RetryPolicy`] conflicted.
    RetriesExhausted {
        /// Total execution attempts made.
        attempts: u32,
    },
    /// A [`Serializable`](IsolationLevel::Serializable) session's
    /// accumulated read set intersected a concurrently committed delta
    /// (or the head's delta log no longer reached back far enough to
    /// prove it did not). Stale reads cannot be repaired by
    /// re-executing the commit, so this is fatal — restart the whole
    /// transaction, reads included, from a fresh session or after
    /// [`Session::refresh`].
    SerializationFailure {
        /// The head version the certification ran against.
        head_version: u64,
    },
    /// The transaction failed to execute, or a constraint check errored.
    Execution(TxError),
    /// The group-commit submission queue is full: the log writer is not
    /// keeping up with the commit rate. The commit did *not* install (the
    /// queue is checked before a version is consumed) and is not retried
    /// automatically — backpressure is the caller's decision.
    Overload {
        /// The configured queue capacity ([`DatabaseBuilder::log_queue_cap`]).
        capacity: usize,
    },
    /// The write-ahead log could not persist the commit record. If the
    /// error surfaced at submit time (a poisoned log), the commit did not
    /// install. If it surfaced from the [`CommitTicket`] wait, the commit
    /// *did* install — it is visible in memory but unacknowledged, the
    /// log is poisoned, and crash recovery may or may not retain it;
    /// reopen the database to resume committing.
    Durability(WalError),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Conflict { head_version } => write!(
                f,
                "commit conflict: head advanced to version {head_version} with \
                 overlapping changes"
            ),
            CommitError::ConstraintViolation { constraint } => {
                write!(f, "commit rejected: constraint {constraint} violated")
            }
            CommitError::RetriesExhausted { attempts } => {
                write!(f, "commit gave up after {attempts} conflicted attempts")
            }
            CommitError::SerializationFailure { head_version } => write!(
                f,
                "commit aborted: a delta committed before version {head_version} \
                 intersects this serializable session's reads"
            ),
            CommitError::Execution(e) => write!(f, "commit failed to execute: {e}"),
            CommitError::Overload { capacity } => write!(
                f,
                "commit rejected: the log submission queue is full ({capacity} pending)"
            ),
            CommitError::Durability(e) => {
                write!(f, "commit could not be made durable: {e}")
            }
        }
    }
}

impl std::error::Error for CommitError {
    /// The wrapped cause, for the variants that carry one: walking the
    /// chain from a [`CommitError::Durability`] reaches the
    /// [`WalError`], and from there any [`CodecError`] or engine error
    /// underneath — which is what lets a wire-protocol front end map
    /// commit failures to typed errors without string matching.
    ///
    /// [`CodecError`]: txlog_relational::codec::CodecError
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommitError::Execution(e) => Some(e),
            CommitError::Durability(e) => Some(e),
            CommitError::Conflict { .. }
            | CommitError::ConstraintViolation { .. }
            | CommitError::RetriesExhausted { .. }
            | CommitError::SerializationFailure { .. }
            | CommitError::Overload { .. } => None,
        }
    }
}

impl From<TxError> for CommitError {
    fn from(e: TxError) -> CommitError {
        CommitError::Execution(e)
    }
}

/// Receipt for a successfully installed commit.
#[derive(Clone, Copy, Debug)]
pub struct Commit {
    /// The head version this commit produced (versions start at 0 for
    /// the initial state and increase by 1 per commit).
    pub version: u64,
    /// How many conflicted attempts preceded the successful one.
    pub retries: u32,
    /// True when the commit installed by forwarding its delta onto a
    /// moved head instead of re-executing.
    pub forwarded: bool,
}

/// Handle on a commit's durability acknowledgment.
///
/// A durable commit *installs* (becomes visible to new snapshots) under
/// the head lock, but is only *acknowledged* once the log writer has
/// fsynced the batch containing its record. The ticket is that
/// acknowledgment: [`CommitTicket::wait`] blocks until the batch
/// flushes (what [`Session::commit`] does internally);
/// [`Session::submit_prepared`] hands the ticket to the caller instead,
/// so a pipeline of commits can overlap their waits. Without durability
/// the ticket is born complete.
pub struct CommitTicket {
    /// `None` when durability is off: nothing to wait for.
    slot: Option<Arc<Slot>>,
    metrics: Metrics,
}

impl CommitTicket {
    /// Block until the log writer acknowledges (or fails) the commit.
    /// An `Err` means the commit is installed in memory but its record
    /// never became durable and the log is poisoned — see
    /// [`CommitError::Durability`].
    pub fn wait(&self) -> Result<(), CommitError> {
        match &self.slot {
            None => Ok(()),
            Some(slot) => {
                let _span = self.metrics.span("commit.log_wait");
                slot.wait()
                    .map_err(|e| CommitError::Durability(e.into_wal()))
            }
        }
    }

    /// The acknowledgment if it already happened (non-blocking).
    pub fn try_result(&self) -> Option<Result<(), CommitError>> {
        match &self.slot {
            None => Some(Ok(())),
            Some(slot) => slot
                .try_result()
                .map(|r| r.map_err(|e| CommitError::Durability(e.into_wal()))),
        }
    }

    /// True once the log writer has decided this commit's fate (always
    /// true without durability).
    pub fn is_complete(&self) -> bool {
        self.try_result().is_some()
    }
}

/// Map a submission rejection (which happens before the commit consumes
/// a version) onto the public error type.
fn submit_error(e: SubmitError) -> CommitError {
    match e {
        SubmitError::Overload { capacity } => CommitError::Overload { capacity },
        SubmitError::Poisoned { detail } => CommitError::Durability(WalError::Poisoned { detail }),
    }
}

/// The committed head plus the bookkeeping the pipeline needs.
struct Head {
    version: u64,
    state: Arc<DbState>,
    /// Trailing committed states, oldest first, ending at `state`;
    /// bounded by the largest constraint window.
    recent: VecDeque<Arc<DbState>>,
    /// `labels[i]` names the commit that produced `recent[i + 1]`.
    labels: VecDeque<String>,
    /// Recent committed deltas as `(version_after, delta)`, oldest
    /// first, for composing "what happened since snapshot v".
    log: VecDeque<(u64, Delta)>,
}

impl Head {
    /// Compose the deltas committed after `since`, oldest first, or
    /// `None` if the log no longer reaches back that far.
    fn delta_since(&self, since: u64) -> Option<Delta> {
        let needed = self.version - since;
        let tail: Vec<&Delta> = self
            .log
            .iter()
            .filter(|(v, _)| *v > since)
            .map(|(_, d)| d)
            .collect();
        if tail.len() as u64 != needed {
            return None;
        }
        let mut out = Delta::empty();
        for d in tail {
            out = out.compose(d);
        }
        Some(out)
    }

    fn install(&mut self, label: &str, state: Arc<DbState>, delta: Delta, keep_states: usize) {
        self.version += 1;
        self.state = Arc::clone(&state);
        self.recent.push_back(state);
        self.labels.push_back(label.to_string());
        while self.recent.len() > keep_states.max(1) {
            self.recent.pop_front();
            self.labels.pop_front();
        }
        self.log.push_back((self.version, delta));
        while self.log.len() > DELTA_LOG_CAP {
            self.log.pop_front();
        }
    }
}

/// A shared database: one committed head, any number of snapshot
/// readers, optimistic writers. Share it by reference across
/// `std::thread::scope` (or wrap it in an `Arc`); it is deliberately
/// not `Clone` — clones would be independent databases.
pub struct Database {
    schema: Schema,
    opts: EvalOptions,
    metrics: Metrics,
    /// Default retry policy for sessions that do not set their own
    /// ([`SessionOptions::retry`]).
    retry: RetryPolicy,
    /// Isolation level [`Database::session`] opens at
    /// ([`DatabaseBuilder::default_isolation`]).
    default_isolation: IsolationLevel,
    constraints: Vec<Box<dyn CommitConstraint>>,
    /// Largest constraint window, governing how many trailing states the
    /// head retains.
    max_window: usize,
    /// Simulation seam: when installed (model-checking builds only) the
    /// commit pipeline announces every decision point to it. `None` in
    /// normal operation, so the whole seam costs one branch per point.
    hook: Option<Arc<dyn StepHook>>,
    /// The group-commit stage, when durability is on. Submissions happen
    /// under the head lock (so the queue order is exactly commit order);
    /// draining, batching, and fsync happen off it.
    committer: Option<Arc<GroupCommitter>>,
    /// The dedicated log-writer thread, absent in
    /// [`DatabaseBuilder::manual_log_writer`] mode (the deterministic
    /// simulator pumps the committer itself).
    writer_thread: Option<JoinHandle<()>>,
    /// The reactive-event stage: committed deltas are enqueued under
    /// the head lock and dispatched through the registered automata
    /// after it is released (see [`crate::events`]).
    events: EventHub,
    head: Mutex<Head>,
}

impl Drop for Database {
    fn drop(&mut self) {
        if let Some(c) = &self.committer {
            c.shutdown();
            match self.writer_thread.take() {
                // the writer drains everything before honoring shutdown,
                // so joining it flushes all pending commits
                Some(t) => drop(t.join()),
                None => {
                    // manual mode: drain what we can, then make sure no
                    // ticket waits forever
                    c.pump_all();
                    c.fail_pending("database closed");
                }
            }
        }
    }
}

impl Database {
    /// A database over `schema`, starting from its initial (empty) state.
    pub fn new(schema: Schema) -> TxResult<Database> {
        let initial = schema.initial_state();
        Database::with_initial(schema, initial)
    }

    /// A database starting from an explicit state. Validates the schema
    /// the way [`Engine::builder`] does.
    pub fn with_initial(schema: Schema, initial: DbState) -> TxResult<Database> {
        // surface schema problems at construction, not first commit
        Engine::builder(&schema).build()?;
        let state = Arc::new(initial);
        Ok(Database {
            schema,
            opts: EvalOptions::default(),
            metrics: Metrics::current(),
            retry: RetryPolicy::default(),
            default_isolation: IsolationLevel::default(),
            constraints: Vec::new(),
            max_window: 1,
            hook: None,
            committer: None,
            writer_thread: None,
            events: EventHub::new(),
            head: Mutex::new(Head {
                version: 0,
                state: Arc::clone(&state),
                recent: VecDeque::from([state]),
                labels: VecDeque::new(),
                log: VecDeque::new(),
            }),
        })
    }

    /// Start configuring a database over `schema` — the way to reach the
    /// durability options.
    pub fn builder(schema: Schema) -> DatabaseBuilder {
        DatabaseBuilder {
            schema,
            initial: None,
            opts: EvalOptions::default(),
            metrics: None,
            retry: RetryPolicy::default(),
            default_isolation: IsolationLevel::default(),
            durability: Durability::Off,
            constraints: Vec::new(),
            event_defs: Vec::new(),
            queue_cap: DEFAULT_LOG_QUEUE_CAP,
            manual_writer: false,
        }
    }

    /// Open (or create) a durable database whose write-ahead log lives at
    /// `path`, with default WAL settings ([`Durability::wal`]). An
    /// existing log is recovered: any torn tail is truncated back to the
    /// last valid record, the latest checkpoint is loaded, and the delta
    /// suffix is replayed. A missing or empty log initializes afresh from
    /// the schema's initial state.
    pub fn recover(
        schema: Schema,
        path: impl AsRef<Path>,
    ) -> Result<(Database, RecoveryReport), WalError> {
        Database::builder(schema)
            .durability(Durability::wal())
            .open_path(path)
    }

    /// Replace the evaluation options sessions execute with.
    pub fn with_options(mut self, opts: EvalOptions) -> Database {
        self.opts = opts;
        self
    }

    /// Thread an explicit observability sink (default: the
    /// process-global recorder).
    pub fn with_metrics(mut self, metrics: Metrics) -> Database {
        self.metrics = metrics;
        self
    }

    /// Replace the database-wide default commit retry policy.
    #[deprecated(
        since = "0.1.0",
        note = "configure retries per session via `SessionOptions::retry`, or \
                the database-wide default via `DatabaseBuilder::default_retry`"
    )]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Database {
        self.retry = retry;
        self
    }

    /// Install a [`StepHook`]: every nondeterministic decision point in
    /// the commit/WAL pipeline is announced to it, which is how the
    /// deterministic simulator ([`crate::sim`]) schedules interleavings
    /// and injects faults. Also threads the hook into the write-ahead
    /// log, when one is attached. Without a hook the seam is a single
    /// `Option` branch per point (measured by the `b11_sim` bench).
    pub fn set_step_hook(&mut self, hook: Arc<dyn StepHook>) {
        if let Some(c) = &self.committer {
            c.set_hook(Arc::clone(&hook));
        }
        self.hook = Some(hook);
    }

    /// Announce a decision point to the installed hook, if any.
    #[inline]
    fn step(&self, point: StepPoint) {
        if let Some(h) = &self.hook {
            h.on_step(point);
        }
    }

    /// Whether the installed hook injects `bug` (model-checker
    /// self-tests only; always false without a hook).
    #[inline]
    fn bug(&self, bug: ProtocolBug) -> bool {
        match &self.hook {
            Some(h) => h.injected_bug() == Some(bug),
            None => false,
        }
    }

    /// Drain the group-commit queue to the log: run the log writer's
    /// micro-steps until it goes idle (every queued commit appended,
    /// fsynced, and acknowledged). A no-op without durability or with an
    /// already-idle writer. Only needed in
    /// [`DatabaseBuilder::manual_log_writer`] mode — with the dedicated
    /// writer thread the draining happens continuously.
    pub fn pump_log_writer(&self) {
        if let Some(c) = &self.committer {
            c.pump_all();
        }
    }

    /// Register a live event subscription: `pattern` is compiled into
    /// an incremental automaton advanced on every subsequent commit,
    /// and `callback` is invoked once per new match, in commit order,
    /// on the committing thread. The automaton is primed over the
    /// hub's retained history *silently*: matches completing at or
    /// after the subscription are delivered, matches wholly in the
    /// past are not. Patterns that should survive restarts or
    /// materialize into relations are registered at build time instead
    /// ([`DatabaseBuilder::event_pattern`]).
    pub fn subscribe_pattern(
        &self,
        name: &str,
        pattern: &Pattern,
        callback: EventCallback,
    ) -> TxResult<SubId> {
        // The hub records history only while it has registrations; the
        // head's recent delta log fills the gap for a first subscriber.
        let primer: Vec<(u64, Delta)> = {
            let head = self.head.lock().expect("db head lock");
            head.log.iter().cloned().collect()
        };
        self.events.subscribe(
            name,
            pattern,
            &self.schema,
            callback,
            &self.metrics,
            &primer,
        )
    }

    /// Drop a live subscription. Returns false for an unknown (or
    /// already-removed) id.
    pub fn unsubscribe(&self, id: SubId) -> bool {
        self.events.unsubscribe(id)
    }

    /// Drain the event hub: advance every automaton over the newly
    /// committed deltas, install materializations, invoke subscribers.
    /// Called by the commit pipeline after releasing the head lock, and
    /// by the recovery replay in `open_store`.
    fn dispatch_events(&self) {
        if !self.events.is_active() {
            return;
        }
        self.events.drain(&self.metrics, &mut |name, rel, rows| {
            self.install_system_rows(name, rel, rows)
        });
    }

    /// Install a pattern's new matches as tuples of its system
    /// relation: an engine-internal commit that skips constraint
    /// validation and the event hub (no feedback loops), inserts
    /// if-absent (so recovery replay is idempotent), and is WAL-logged
    /// like any other commit. Rows already present consume no version.
    fn install_system_rows(&self, name: &str, rel: RelId, rows: Vec<Vec<Atom>>) {
        let mut head = self.head.lock().expect("db head lock");
        let mut state = (*head.state).clone();
        let mut inserted = 0u64;
        for row in rows {
            let exists = state
                .relation(rel)
                .is_some_and(|r| r.iter().any(|t| t.fields() == row.as_slice()));
            if exists {
                continue;
            }
            if let Ok((next, _)) = state.insert_fields(rel, &row) {
                state = next;
                inserted += 1;
            }
        }
        if inserted == 0 {
            return;
        }
        let label = format!("events/{name}");
        let delta = head.state.diff(&state);
        let version = head.version + 1;
        let state = Arc::new(state);
        if let Some(c) = &self.committer {
            let payload = Wal::encode_commit(version, &label, &delta, &state);
            if c.submit(version, payload, Arc::clone(&state)).is_err() {
                // Poisoned or overloaded log: skip the install rather
                // than let memory diverge from what recovery can
                // reconstruct — the match re-fires from the replayed
                // WAL suffix on reopen.
                return;
            }
        }
        self.metrics.add(Counter::EvtMaterialized, inserted);
        head.install(&label, Arc::clone(&state), delta, self.max_window);
    }

    /// The group-commit stage, for the deterministic simulator (which
    /// schedules the log writer as an actor via
    /// [`GroupCommitter::next_op`] / [`GroupCommitter::micro_step`]).
    pub(crate) fn group_committer(&self) -> Option<&Arc<GroupCommitter>> {
        self.committer.as_ref()
    }

    /// The log writer's next store operation, if it has work
    /// (simulation seam).
    pub(crate) fn writer_next_op(&self) -> Option<WriterOp> {
        self.committer.as_ref().and_then(|c| c.next_op())
    }

    /// Perform one log-writer micro-step (simulation seam). Returns
    /// false when the writer was idle.
    pub(crate) fn writer_micro_step(&self) -> bool {
        self.committer.as_ref().is_some_and(|c| c.micro_step())
    }

    /// Register a commit-time constraint. The current head must satisfy
    /// it — that is the induction base that lets later commits skip
    /// validation of read-set-disjoint constraints — so the constraint
    /// is checked against the retained history first and rejected if it
    /// does not hold.
    pub fn add_constraint(&mut self, c: Box<dyn CommitConstraint>) -> TxResult<()> {
        let k = c.window_states().max(1);
        {
            let head = self.head.lock().expect("db head lock");
            let take = k.min(head.recent.len());
            let states: Vec<DbState> = head
                .recent
                .iter()
                .skip(head.recent.len() - take)
                .map(|s| (**s).clone())
                .collect();
            let labels: Vec<&str> = head
                .labels
                .iter()
                .skip(head.labels.len() - (take - 1))
                .map(String::as_str)
                .collect();
            if !c.check(&self.schema, &states, &labels)? {
                return Err(TxError::eval(format!(
                    "constraint {} does not hold at the current head; a database \
                     only accepts constraints its committed state satisfies",
                    c.name()
                )));
            }
        }
        self.max_window = self.max_window.max(k);
        self.constraints.push(c);
        Ok(())
    }

    /// The schema this database evolves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The observability sink the pipeline reports into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// An engine configured like this database's sessions — the reader
    /// side: evaluate queries against any [`Database::snapshot`] without
    /// touching the head lock again.
    pub fn engine(&self) -> TxResult<Engine<'_>> {
        Engine::builder(&self.schema)
            .options(self.opts)
            .metrics(self.metrics.clone())
            .build()
    }

    /// An `Arc` share of the committed head state. Readers hold it as
    /// long as they like; commits never mutate shared states.
    pub fn snapshot(&self) -> Arc<DbState> {
        Arc::clone(&self.head.lock().expect("db head lock").state)
    }

    /// The committed head version (0 = initial state).
    pub fn head_version(&self) -> u64 {
        self.head.lock().expect("db head lock").version
    }

    /// The isolation level [`Database::session`] opens at.
    pub fn default_isolation(&self) -> IsolationLevel {
        self.default_isolation
    }

    /// Open a session at the database's default isolation level
    /// ([`DatabaseBuilder::default_isolation`]; snapshot unless
    /// configured otherwise), pinned to the current head.
    pub fn session(&self) -> Session<'_> {
        self.session_with(SessionOptions::new().isolation(self.default_isolation))
    }

    /// Open a session with explicit [`SessionOptions`], pinned to the
    /// current head.
    ///
    /// A [`ReadCommitted`](IsolationLevel::ReadCommitted) request is
    /// *escalated* to [`Snapshot`](IsolationLevel::Snapshot) when the
    /// database carries any registered constraint with a checkability
    /// window of two or more states: transition constraints are judged
    /// against a stable pre-state, and statement-boundary re-pinning is
    /// exactly what makes the pre-state unstable. The escalation is
    /// observable as the `sessions_escalated` counter.
    pub fn session_with(&self, opts: SessionOptions) -> Session<'_> {
        let mut opts = opts;
        if opts.isolation == IsolationLevel::ReadCommitted && self.max_window >= 2 {
            opts.isolation = IsolationLevel::Snapshot;
            self.metrics.bump(Counter::SessionsEscalated);
        }
        self.metrics.bump(match opts.isolation {
            IsolationLevel::ReadCommitted => Counter::SessionsReadCommitted,
            IsolationLevel::Snapshot => Counter::SessionsSnapshot,
            IsolationLevel::Serializable => Counter::SessionsSerializable,
        });
        self.step(StepPoint::Pin);
        let head = self.head.lock().expect("db head lock");
        Session {
            db: self,
            base_version: head.version,
            base: Arc::clone(&head.state),
            reads_since: head.version,
            read_fp: Footprint::empty(),
            opts,
        }
    }

    /// Validate a candidate commit against the registered constraints,
    /// fanning affected checks across a scoped worker pool. Caller holds
    /// the head lock.
    fn validate(
        &self,
        head: &Head,
        candidate: &DbState,
        delta: &Delta,
        label: &str,
    ) -> Result<(), CommitError> {
        let affected: Vec<&dyn CommitConstraint> = self
            .constraints
            .iter()
            .map(|c| &**c)
            .filter(|c| {
                let hit = c.affected_by(&self.schema, delta);
                if !hit {
                    self.metrics.bump(Counter::CommitValidationSkips);
                }
                hit
            })
            .collect();
        if affected.is_empty() {
            return Ok(());
        }
        self.step(StepPoint::Validate);
        let _span = self.metrics.span("commit.validate");
        self.metrics
            .add(Counter::CommitValidations, affected.len() as u64);
        // Build each constraint's window up front: trailing committed
        // states plus the candidate, with the commit label closing it.
        let jobs: Vec<(Vec<DbState>, Vec<&str>)> = affected
            .iter()
            .map(|c| {
                let want_prior = c.window_states().max(1) - 1;
                let take = want_prior.min(head.recent.len());
                let mut states: Vec<DbState> = head
                    .recent
                    .iter()
                    .skip(head.recent.len() - take)
                    .map(|s| (**s).clone())
                    .collect();
                states.push(candidate.clone());
                let mut labels: Vec<&str> = if take > 0 {
                    head.labels
                        .iter()
                        .skip(head.labels.len() - (take - 1))
                        .map(String::as_str)
                        .collect()
                } else {
                    Vec::new()
                };
                labels.push(label);
                (states, labels)
            })
            .collect();
        // under a hook, validate serially: the simulator's schedules
        // must not depend on worker-pool timing
        let workers = if self.hook.is_some() {
            1
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(affected.len())
        };
        let results: Vec<Mutex<Option<TxResult<bool>>>> =
            affected.iter().map(|_| Mutex::new(None)).collect();
        if workers <= 1 {
            for (i, c) in affected.iter().enumerate() {
                let (states, labels) = &jobs[i];
                *results[i].lock().expect("validation slot") =
                    Some(c.check(&self.schema, states, labels));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Relaxed);
                        let Some(c) = affected.get(i) else { break };
                        let (states, labels) = &jobs[i];
                        let verdict = c.check(&self.schema, states, labels);
                        *results[i].lock().expect("validation slot") = Some(verdict);
                    });
                }
            });
        }
        // report deterministically: first failure in registration order
        for (i, c) in affected.iter().enumerate() {
            let verdict = results[i]
                .lock()
                .expect("validation slot")
                .take()
                .expect("every validation job ran");
            match verdict {
                Ok(true) => {}
                Ok(false) => {
                    return Err(CommitError::ConstraintViolation {
                        constraint: c.name().to_string(),
                    })
                }
                Err(e) => return Err(CommitError::Execution(e)),
            }
        }
        Ok(())
    }
}

/// Configures a [`Database`]: initial state, evaluation options,
/// metrics, retry policy, commit constraints, and — the part the plain
/// constructors cannot reach — [`Durability`].
///
/// ```no_run
/// # use txlog_engine::db::Database;
/// # use txlog_engine::wal::Durability;
/// # use txlog_relational::Schema;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::new().relation("EMP", &["name", "salary"])?;
/// let (db, report) = Database::builder(schema)
///     .durability(Durability::Wal { sync_every: 1, checkpoint_every: 256 })
///     .open_path("emp.wal")?;
/// assert_eq!(db.head_version(), report.version);
/// # Ok(())
/// # }
/// ```
pub struct DatabaseBuilder {
    schema: Schema,
    initial: Option<DbState>,
    opts: EvalOptions,
    metrics: Option<Metrics>,
    retry: RetryPolicy,
    default_isolation: IsolationLevel,
    durability: Durability,
    constraints: Vec<Box<dyn CommitConstraint>>,
    event_defs: Vec<PatternDef>,
    queue_cap: usize,
    manual_writer: bool,
}

/// Extend `state` with (empty) instances of any schema relations it
/// lacks — an explicit [`DatabaseBuilder::initial`] state predates the
/// system relations that [`DatabaseBuilder::event_pattern`] declares.
fn ensure_schema_relations(schema: &Schema, mut state: DbState) -> TxResult<DbState> {
    for d in schema.decls() {
        if state.relation(d.id).is_none() {
            state = state.with_relation(d.id, d.arity())?;
        }
    }
    Ok(state)
}

impl DatabaseBuilder {
    /// Start from an explicit state instead of the schema's initial
    /// (empty) one. Ignored when `open_*` recovers state from a
    /// non-empty log.
    pub fn initial(mut self, state: DbState) -> DatabaseBuilder {
        self.initial = Some(state);
        self
    }

    /// Evaluation options for sessions.
    pub fn options(mut self, opts: EvalOptions) -> DatabaseBuilder {
        self.opts = opts;
        self
    }

    /// Observability sink (default: the process-global recorder).
    pub fn metrics(mut self, metrics: Metrics) -> DatabaseBuilder {
        self.metrics = Some(metrics);
        self
    }

    /// Commit retry policy.
    #[deprecated(
        since = "0.1.0",
        note = "renamed to `DatabaseBuilder::default_retry` (sessions can \
                override it via `SessionOptions::retry`)"
    )]
    pub fn retry(self, retry: RetryPolicy) -> DatabaseBuilder {
        self.default_retry(retry)
    }

    /// Default commit retry policy for sessions that do not set their
    /// own ([`SessionOptions::retry`]).
    pub fn default_retry(mut self, retry: RetryPolicy) -> DatabaseBuilder {
        self.retry = retry;
        self
    }

    /// Isolation level [`Database::session`] opens at (default:
    /// [`IsolationLevel::Snapshot`]). Sessions opened through
    /// [`Database::session_with`] choose their own level explicitly.
    pub fn default_isolation(mut self, level: IsolationLevel) -> DatabaseBuilder {
        self.default_isolation = level;
        self
    }

    /// Durability policy. [`Durability::Wal`] takes effect through
    /// [`open_path`](DatabaseBuilder::open_path) /
    /// [`open_store`](DatabaseBuilder::open_store);
    /// [`build`](DatabaseBuilder::build) is the in-memory path and
    /// requires [`Durability::Off`].
    pub fn durability(mut self, durability: Durability) -> DatabaseBuilder {
        self.durability = durability;
        self
    }

    /// Register a commit-time constraint. Checked against the head at
    /// construction — including a *recovered* head, which is how
    /// recovery verifies the log replay still satisfies every
    /// constraint.
    pub fn constraint(mut self, c: Box<dyn CommitConstraint>) -> DatabaseBuilder {
        self.constraints.push(c);
        self
    }

    /// Register an event pattern. A materializing definition
    /// ([`PatternDef::materialized`]) declares its target relation here
    /// — as a *system* relation, before any log is opened, which is what
    /// lets WAL recovery compare schemas and replay the dispatcher's own
    /// commits. Patterns must not watch system relations (a
    /// materialization feeding an automaton would loop), and
    /// materialization columns must be variables every match certainly
    /// binds ([`Pattern::certain_vars`]).
    pub fn event_pattern(mut self, def: PatternDef) -> TxResult<DatabaseBuilder> {
        if self.event_defs.iter().any(|d| d.name == def.name) {
            return Err(TxError::schema(format!(
                "event pattern {} is already registered",
                def.name
            )));
        }
        if let Some(m) = &def.materialize {
            let certain = def.pattern.certain_vars();
            for c in &m.columns {
                if !certain.contains(&Symbol::new(c)) {
                    return Err(TxError::schema(format!(
                        "event pattern {}: materialization column {c} is not \
                         certainly bound by the pattern",
                        def.name
                    )));
                }
            }
            let attrs: Vec<&str> = m.columns.iter().map(String::as_str).collect();
            self.schema.add_system_relation(&m.relation, &attrs)?;
        }
        crate::events::check_def(&def, &self.schema)?;
        self.event_defs.push(def);
        Ok(self)
    }

    /// Bound on the group-commit submission queue: commits beyond it
    /// fail with [`CommitError::Overload`] instead of growing memory
    /// while the log writer is stalled. Values of 0 are treated as 1.
    pub fn log_queue_cap(mut self, cap: usize) -> DatabaseBuilder {
        self.queue_cap = cap.max(1);
        self
    }

    /// Do not spawn the dedicated log-writer thread: the caller drives
    /// the committer explicitly through
    /// [`Database::pump_log_writer`] (or, in the deterministic
    /// simulator, one micro-step at a time). A [`CommitTicket`] only
    /// resolves after the writer is pumped, so blocking commit calls
    /// ([`Session::commit`] and friends) would deadlock — use
    /// [`Session::submit_prepared`] in this mode.
    pub fn manual_log_writer(mut self) -> DatabaseBuilder {
        self.manual_writer = true;
        self
    }

    /// Build an in-memory database ([`Durability::Off`] only — opening a
    /// log needs a store, so WAL durability goes through the `open_*`
    /// methods).
    pub fn build(self) -> TxResult<Database> {
        if self.durability != Durability::Off {
            return Err(TxError::schema(
                "DatabaseBuilder::build is the in-memory path; use open_path or \
                 open_store to attach a write-ahead log",
            ));
        }
        let initial = match self.initial {
            Some(s) => ensure_schema_relations(&self.schema, s)?,
            None => self.schema.initial_state(),
        };
        let mut db = Database::with_initial(self.schema, initial)?.with_options(self.opts);
        db.retry = self.retry;
        db.default_isolation = self.default_isolation;
        if let Some(m) = self.metrics {
            db = db.with_metrics(m);
        }
        for def in &self.event_defs {
            db.events.register_def(def, &db.schema, &db.metrics)?;
        }
        for c in self.constraints {
            db.add_constraint(c)?;
        }
        Ok(db)
    }

    /// Open against the log file at `path` (created if absent):
    /// [`open_store`](DatabaseBuilder::open_store) over a [`FileStore`].
    pub fn open_path(self, path: impl AsRef<Path>) -> Result<(Database, RecoveryReport), WalError> {
        let store = FileStore::open(path)?;
        self.open_store(Box::new(store))
    }

    /// Open against an explicit [`LogStore`]. A non-empty store is
    /// recovered (torn tail truncated, latest checkpoint loaded, delta
    /// suffix replayed, constraints re-verified against the recovered
    /// head); an empty one is initialized with a version-0 checkpoint.
    /// With [`Durability::Off`] the store is only read — state is
    /// recovered but later commits are not logged.
    pub fn open_store(
        self,
        mut store: Box<dyn LogStore>,
    ) -> Result<(Database, RecoveryReport), WalError> {
        let metrics = self.metrics.clone().unwrap_or_else(Metrics::current);
        let recovered = {
            let _span = metrics.span("recover");
            wal::recover_log(&mut *store, &self.schema, &metrics)?
        };
        let (state, version, report, replayed) = match recovered {
            Some(r) => (r.state, r.version, r.report, r.replayed),
            None => {
                let state = match &self.initial {
                    Some(s) => ensure_schema_relations(&self.schema, s.clone())?,
                    None => self.schema.initial_state(),
                };
                let report = RecoveryReport {
                    fresh: true,
                    ..RecoveryReport::default()
                };
                (state, 0, report, Vec::new())
            }
        };
        let wal = match self.durability {
            Durability::Off => None,
            Durability::Wal {
                sync_every,
                checkpoint_every,
            } => {
                let mut w = Wal::new(store, metrics.clone());
                if report.fresh {
                    // pin the schema (and the chosen initial state) as
                    // the log's opening checkpoint
                    w.log_checkpoint(0, &self.schema, &state)?;
                    w.sync()?;
                }
                Some((w, sync_every, checkpoint_every))
            }
        };
        let mut db = Database::with_initial(self.schema.clone(), state)?
            .with_options(self.opts)
            .with_metrics(metrics.clone());
        db.retry = self.retry;
        db.default_isolation = self.default_isolation;
        db.head.lock().expect("db head lock").version = version;
        if let Some((w, sync_every, checkpoint_every)) = wal {
            let committer = Arc::new(GroupCommitter::new(
                w,
                self.schema,
                sync_every,
                checkpoint_every,
                self.queue_cap,
                // resume the checkpoint cadence where the log left off,
                // and let the next cadence checkpoint snapshot the
                // recovered head
                report.replayed_deltas,
                Some((version, db.snapshot())),
                metrics,
            ));
            if !self.manual_writer {
                let c = Arc::clone(&committer);
                let thread = std::thread::Builder::new()
                    .name("txlog-wal-writer".to_string())
                    .spawn(move || c.run())
                    .map_err(|e| WalError::Io {
                        op: "spawn",
                        detail: format!("could not spawn the log-writer thread: {e}"),
                    })?;
                db.writer_thread = Some(thread);
            }
            db.committer = Some(committer);
        }
        for def in &self.event_defs {
            db.events.register_def(def, &db.schema, &db.metrics)?;
        }
        if !replayed.is_empty() {
            if db.events.is_active() {
                // Replay the recovered commit suffix through the
                // automata: rebuilds their join state and re-fires any
                // match whose materialization the crash lost
                // (insert-if-absent makes the replay idempotent).
                db.events.seed_replay(replayed);
                db.dispatch_events();
            } else {
                db.events.seed_history(replayed);
            }
        }
        for c in self.constraints {
            // add_constraint checks the constraint against the (possibly
            // recovered) head and rejects a violated base
            db.add_constraint(c)?;
        }
        Ok((db, report))
    }
}

/// A dry-run execution paired with the transaction's static footprint:
/// everything a single commit attempt needs, produced by
/// [`Session::prepare`] and consumed by [`Session::commit_prepared`].
///
/// [`Session::commit`] fuses execute-and-attempt into one call (with
/// internal retries); this decomposed form exists so the deterministic
/// simulator ([`crate::sim`]) can schedule the execute step and the
/// attempt step independently — which is exactly the freedom real
/// threads have, since execution runs outside the head lock against an
/// immutable snapshot.
pub struct Prepared {
    execution: Execution,
    footprint: Footprint,
}

impl Prepared {
    /// The candidate successor state and delta.
    pub fn execution(&self) -> &Execution {
        &self.execution
    }

    /// The transaction's static footprint.
    pub fn footprint(&self) -> &Footprint {
        &self.footprint
    }
}

/// Why a single commit attempt did not install — either a retryable
/// conflict (with the fresh head to re-pin to) or a fatal error.
enum AttemptError {
    Conflicted {
        head_version: u64,
        fresh: Arc<DbState>,
    },
    Fatal(CommitError),
}

/// A snapshot-pinned view of a [`Database`]: read freely, then commit
/// optimistically. Cheap to open; hold one per writer.
///
/// The session's [`IsolationLevel`] (fixed at open by
/// [`Database::session_with`]) governs what "pinned" means: snapshot
/// and serializable sessions keep one snapshot until a commit or
/// [`refresh`](Session::refresh) moves it; read-committed sessions
/// re-pin to the head at every statement boundary. Serializable
/// sessions additionally accumulate the static read footprint of every
/// statement and certify it at commit time.
pub struct Session<'db> {
    db: &'db Database,
    base_version: u64,
    base: Arc<DbState>,
    /// The head version the accumulated read set is valid from: reads
    /// taken since this version are certified against everything
    /// committed after it (Serializable only).
    reads_since: u64,
    /// Union of the read footprints of every statement this session ran
    /// since `reads_since` (Serializable only; stays empty elsewhere).
    read_fp: Footprint,
    opts: SessionOptions,
}

impl<'db> Session<'db> {
    /// The snapshot this session reads from and executes against.
    pub fn state(&self) -> &DbState {
        &self.base
    }

    /// An `Arc` share of the snapshot (outlives the session).
    pub fn snapshot(&self) -> Arc<DbState> {
        Arc::clone(&self.base)
    }

    /// The head version the snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.base_version
    }

    /// The isolation level this session runs under (after any
    /// constraint-window escalation — see [`Database::session_with`]).
    pub fn isolation(&self) -> IsolationLevel {
        self.opts.isolation
    }

    /// Re-pin the session to the current committed head. Also discards
    /// the accumulated read set of a serializable session — the reads
    /// are re-taken against the fresh snapshot.
    pub fn refresh(&mut self) {
        self.db.step(StepPoint::Pin);
        let head = self.db.head.lock().expect("db head lock");
        self.base_version = head.version;
        self.base = Arc::clone(&head.state);
        drop(head);
        self.reads_since = self.base_version;
        self.read_fp = Footprint::empty();
    }

    /// A statement boundary: read-committed sessions re-pin to the
    /// current head here; everyone else keeps their snapshot.
    fn pin_statement(&mut self) {
        if self.opts.isolation == IsolationLevel::ReadCommitted {
            self.refresh();
        }
    }

    /// Record a statement's read footprint for commit-time
    /// certification (serializable sessions only).
    fn record_reads(&mut self, fp: &Footprint) {
        if self.opts.isolation == IsolationLevel::Serializable {
            self.read_fp.merge(fp);
        }
    }

    /// The commit label with the session's configured prefix applied.
    fn full_label<'a>(&self, label: &'a str) -> std::borrow::Cow<'a, str> {
        match &self.opts.label_prefix {
            Some(p) => std::borrow::Cow::Owned(format!("{p}{label}")),
            None => std::borrow::Cow::Borrowed(label),
        }
    }

    /// Execute a transaction against the session's view *without*
    /// committing — a dry run returning the candidate [`Execution`].
    /// A statement boundary: read-committed sessions re-pin first;
    /// serializable sessions record the program's whole footprint as
    /// reads (the caller observes state derived from everything the
    /// program touched).
    pub fn execute(&mut self, tx: &FTerm, env: &Env) -> TxResult<Execution> {
        self.pin_statement();
        self.record_reads(&Footprint::of_program(tx).as_reads());
        self.db.engine()?.execute_traced(&self.base, tx, env)
    }

    /// Evaluate a truth-valued formula against the session's view — a
    /// statement boundary, like [`Session::execute`], with the
    /// formula's footprint recorded as reads under
    /// [`IsolationLevel::Serializable`].
    pub fn ask(&mut self, p: &FFormula, env: &Env) -> TxResult<bool> {
        self.pin_statement();
        self.record_reads(&Footprint::of_formula(p));
        self.db.engine()?.eval_truth(&self.base, p, env)
    }

    /// Execute against the session's view and package the result with
    /// the transaction's footprint, ready for
    /// [`Session::commit_prepared`]. A statement boundary, like
    /// [`Session::execute`].
    pub fn prepare(&mut self, tx: &FTerm, env: &Env) -> TxResult<Prepared> {
        self.pin_statement();
        let footprint = Footprint::of_program(tx);
        self.record_reads(&footprint.as_reads());
        self.db.step(StepPoint::Execute);
        let execution = self.db.engine()?.execute_traced(&self.base, tx, env)?;
        Ok(Prepared {
            execution,
            footprint,
        })
    }

    /// One commit attempt of a prepared execution: no internal retry and
    /// no re-execution. A moved head with an overlapping footprint
    /// surfaces as [`CommitError::Conflict`] and leaves the session on
    /// its snapshot — the caller decides whether to [`refresh`], re-
    /// [`prepare`] and attempt again, which is how the simulator turns
    /// the retry loop into individually scheduled steps.
    ///
    /// The prepared execution must have been produced against this
    /// session's current snapshot; attempting a stale one conflicts (or
    /// forwards, when provably disjoint) exactly as a stale `commit`
    /// would.
    ///
    /// [`refresh`]: Session::refresh
    /// [`prepare`]: Session::prepare
    pub fn commit_prepared(
        &mut self,
        label: &str,
        prepared: &Prepared,
    ) -> Result<Commit, CommitError> {
        let (commit, ticket) = self.submit_prepared(label, prepared)?;
        ticket.wait()?;
        Ok(commit)
    }

    /// Like [`Session::commit_prepared`] but *without* waiting for the
    /// group fsync: on success the commit is installed (the session is
    /// re-pinned to it) and the returned [`CommitTicket`] resolves once
    /// the log writer acknowledges its batch. Submitting several commits
    /// before waiting on their tickets is how a single session fills a
    /// batch; with [`DatabaseBuilder::manual_log_writer`] this is the
    /// only commit call that cannot deadlock.
    pub fn submit_prepared(
        &mut self,
        label: &str,
        prepared: &Prepared,
    ) -> Result<(Commit, CommitTicket), CommitError> {
        self.db.metrics.bump(Counter::CommitAttempts);
        let label = self.full_label(label).into_owned();
        match self.attempt(&label, prepared.execution.clone(), &prepared.footprint, 0) {
            Ok(r) => Ok(r),
            Err(AttemptError::Fatal(e)) => Err(e),
            Err(AttemptError::Conflicted { head_version, .. }) => {
                Err(CommitError::Conflict { head_version })
            }
        }
    }

    /// Execute and commit, retrying conflicted attempts per the
    /// database's [`RetryPolicy`]. On success the session is re-pinned
    /// to the new head.
    pub fn commit(&mut self, label: &str, tx: &FTerm, env: &Env) -> Result<Commit, CommitError> {
        self.commit_inner(label, tx, env, true)
    }

    /// Like [`Session::commit`] but with a single attempt: a conflict
    /// surfaces as [`CommitError::Conflict`] instead of retrying (the
    /// session stays on its snapshot so the caller can inspect and
    /// decide).
    pub fn try_commit(
        &mut self,
        label: &str,
        tx: &FTerm,
        env: &Env,
    ) -> Result<Commit, CommitError> {
        self.commit_inner(label, tx, env, false)
    }

    fn commit_inner(
        &mut self,
        label: &str,
        tx: &FTerm,
        env: &Env,
        retry: bool,
    ) -> Result<Commit, CommitError> {
        let db = self.db;
        let engine = db.engine()?;
        let label = self.full_label(label).into_owned();
        // a commit is itself a statement boundary for read-committed
        self.pin_statement();
        let footprint = Footprint::of_program(tx);
        let policy = self.opts.retry.unwrap_or(db.retry);
        let mut retries = 0u32;
        loop {
            db.metrics.bump(Counter::CommitAttempts);
            db.step(StepPoint::Execute);
            // execute outside the lock, against the pinned snapshot
            let exec = engine.execute_traced(&self.base, tx, env)?;
            match self.attempt(&label, exec, &footprint, retries) {
                Ok((commit, ticket)) => {
                    // block for the group ack outside the head lock; a
                    // durability failure here is fatal (the commit is
                    // installed but unacknowledged, the log poisoned)
                    ticket.wait()?;
                    return Ok(commit);
                }
                Err(AttemptError::Fatal(e)) => return Err(e),
                Err(AttemptError::Conflicted {
                    head_version,
                    fresh,
                }) => {
                    if !retry {
                        return Err(CommitError::Conflict { head_version });
                    }
                    if retries >= policy.max_retries {
                        return Err(CommitError::RetriesExhausted {
                            attempts: retries + 1,
                        });
                    }
                    let delay = policy.delay(retries);
                    retries += 1;
                    db.metrics.bump(Counter::CommitRetries);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    self.base_version = head_version;
                    self.base = fresh;
                }
            }
        }
    }

    /// One commit attempt of an executed candidate: take the head lock,
    /// then install (head unmoved), forward (head moved, footprint
    /// provably disjoint), or conflict. The atomic section of the
    /// pipeline — both `commit`'s retry loop and `commit_prepared` end
    /// here.
    ///
    /// With durability on, the head lock section only validates, encodes
    /// the commit record, enqueues it to the group committer, and
    /// installs; the append and fsync run on the log-writer thread and
    /// the returned [`CommitTicket`] resolves when the batch flushes.
    fn attempt(
        &mut self,
        label: &str,
        exec: Execution,
        footprint: &Footprint,
        retries: u32,
    ) -> Result<(Commit, CommitTicket), AttemptError> {
        let db = self.db;
        db.step(StepPoint::LockAcquire);
        let mut head = db.head.lock().expect("db head lock");
        // SSI-style certification: a serializable session's accumulated
        // statement reads must not intersect anything committed since
        // they were taken. `reads_since` can trail `base_version` (a
        // conflict re-pin moves the snapshot but cannot re-take reads
        // the caller already observed), so this triggers even when the
        // head looks unmoved from the snapshot's point of view. A
        // too-short delta log cannot prove the reads unharmed, so it
        // fails the certification too.
        if self.opts.isolation == IsolationLevel::Serializable
            && self.read_fp.has_reads()
            && head.version > self.reads_since
        {
            let clean = match head.delta_since(self.reads_since) {
                Some(concurrent) => !self.read_fp.reads_overlap_delta(&db.schema, &concurrent),
                None => false,
            };
            if !clean {
                let head_version = head.version;
                drop(head);
                db.metrics.bump(Counter::CommitSerializationFailures);
                return Err(AttemptError::Fatal(CommitError::SerializationFailure {
                    head_version,
                }));
            }
        }
        if head.version == self.base_version {
            // head unmoved: validate, enqueue the record, install
            db.validate(&head, &exec.state, &exec.delta, label)
                .map_err(AttemptError::Fatal)?;
            let version = head.version + 1;
            let state = Arc::new(exec.state);
            let slot = match &db.committer {
                Some(c) => {
                    let payload = Wal::encode_commit(version, label, &exec.delta, &state);
                    match c.submit(version, payload, Arc::clone(&state)) {
                        Ok(slot) => Some(slot),
                        Err(e) => return Err(AttemptError::Fatal(submit_error(e))),
                    }
                }
                None => None,
            };
            let evt = db.events.is_active().then(|| exec.delta.clone());
            db.step(StepPoint::Install);
            head.install(label, Arc::clone(&state), exec.delta, db.max_window);
            db.metrics.bump(Counter::CommitsApplied);
            if let Some(d) = evt {
                // enqueue under the head lock: queue order = commit order
                db.events.enqueue(version, d);
            }
            drop(head);
            db.dispatch_events();
            self.base_version = version;
            self.base = state;
            self.reads_since = version;
            self.read_fp = Footprint::empty();
            return Ok((
                Commit {
                    version,
                    retries,
                    forwarded: false,
                },
                CommitTicket {
                    slot,
                    metrics: db.metrics.clone(),
                },
            ));
        }
        // head moved: forward if provably disjoint from what landed.
        // Read-committed only demands first-committer-wins on write-write
        // overlap; snapshot and serializable require the whole program
        // footprint (reads included) to be untouched.
        if let Some(concurrent) = head.delta_since(self.base_version) {
            let disjoint = match self.opts.isolation {
                IsolationLevel::ReadCommitted => {
                    !footprint.writes_overlap_delta(&db.schema, &concurrent)
                }
                _ => !footprint.overlaps_delta(&db.schema, &concurrent),
            } || db.bug(ProtocolBug::ValidateAgainstSnapshot);
            if disjoint {
                let rebased = exec
                    .delta
                    .rebase_fresh(self.base.next_tuple_id(), head.state.next_tuple_id());
                if let Ok(next) = rebased.apply(&head.state) {
                    db.validate(&head, &next, &rebased, label)
                        .map_err(AttemptError::Fatal)?;
                    let version = head.version + 1;
                    let state = Arc::new(next);
                    let slot = match &db.committer {
                        Some(c) => {
                            // log the *rebased* state: that is what the
                            // head becomes
                            let payload = Wal::encode_commit(version, label, &rebased, &state);
                            match c.submit(version, payload, Arc::clone(&state)) {
                                Ok(slot) => Some(slot),
                                Err(e) => return Err(AttemptError::Fatal(submit_error(e))),
                            }
                        }
                        None => None,
                    };
                    let evt = db.events.is_active().then(|| rebased.clone());
                    db.step(StepPoint::Install);
                    head.install(label, Arc::clone(&state), rebased, db.max_window);
                    db.metrics.bump(Counter::CommitsForwarded);
                    if let Some(d) = evt {
                        db.events.enqueue(version, d);
                    }
                    drop(head);
                    db.dispatch_events();
                    self.base_version = version;
                    self.base = state;
                    self.reads_since = version;
                    self.read_fp = Footprint::empty();
                    return Ok((
                        Commit {
                            version,
                            retries,
                            forwarded: true,
                        },
                        CommitTicket {
                            slot,
                            metrics: db.metrics.clone(),
                        },
                    ));
                }
            }
        }
        // conflict: surface the fresh head so the caller can re-pin
        db.metrics.bump(Counter::CommitConflicts);
        let head_version = head.version;
        let fresh = Arc::clone(&head.state);
        drop(head);
        Err(AttemptError::Conflicted {
            head_version,
            fresh,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txlog_logic::{parse_fterm, ParseCtx};

    fn schema() -> Schema {
        Schema::new()
            .relation("EMP", &["e-name", "salary"])
            .unwrap()
            .relation("LOG", &["l-entry"])
            .unwrap()
    }

    fn ctx() -> ParseCtx {
        ParseCtx::with_relations(&["EMP", "LOG"])
    }

    fn tx(src: &str) -> FTerm {
        parse_fterm(src, &ctx(), &[]).unwrap()
    }

    struct SalaryCap(u64);
    impl CommitConstraint for SalaryCap {
        fn name(&self) -> &str {
            "salary-cap"
        }
        fn window_states(&self) -> usize {
            1
        }
        fn affected_by(&self, schema: &Schema, delta: &Delta) -> bool {
            schema.rel_id("EMP").is_ok_and(|id| delta.touches(id))
        }
        fn check(&self, schema: &Schema, states: &[DbState], _: &[&str]) -> TxResult<bool> {
            let emp = schema.rel_id("EMP")?;
            let state = states.last().expect("window is non-empty");
            Ok(state
                .relation(emp)
                .map(|r| {
                    r.iter()
                        .all(|t| t.fields()[1].as_nat().is_ok_and(|s| s <= self.0))
                })
                .unwrap_or(true))
        }
    }

    #[test]
    fn sequential_commits_advance_the_head() {
        let db = Database::new(schema()).unwrap();
        let mut s = db.session();
        let c1 = s
            .commit(
                "hire-ann",
                &tx("insert(tuple('ann', 500), EMP)"),
                &Env::new(),
            )
            .unwrap();
        assert_eq!(c1.version, 1);
        assert!(!c1.forwarded);
        let c2 = s
            .commit(
                "hire-bob",
                &tx("insert(tuple('bob', 400), EMP)"),
                &Env::new(),
            )
            .unwrap();
        assert_eq!(c2.version, 2);
        let emp = db.schema().rel_id("EMP").unwrap();
        assert_eq!(db.snapshot().relation(emp).unwrap().len(), 2);
        assert_eq!(db.head_version(), 2);
    }

    #[test]
    fn snapshots_are_isolated_from_later_commits() {
        let db = Database::new(schema()).unwrap();
        let mut s = db.session();
        s.commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        let frozen = db.snapshot();
        let mut s2 = db.session();
        s2.commit("hire2", &tx("insert(tuple('bob', 400), EMP)"), &Env::new())
            .unwrap();
        let emp = db.schema().rel_id("EMP").unwrap();
        assert_eq!(frozen.relation(emp).unwrap().len(), 1);
        assert_eq!(db.snapshot().relation(emp).unwrap().len(), 2);
    }

    #[test]
    fn disjoint_commit_forwards_without_retry() {
        let db = Database::new(schema()).unwrap();
        // two sessions pinned to the same snapshot
        let mut a = db.session();
        let mut b = db.session();
        a.commit("emp", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        // b's footprint is {LOG}, disjoint from a's {EMP}
        let c = b
            .commit("log", &tx("insert(tuple('audit'), LOG)"), &Env::new())
            .unwrap();
        assert!(
            c.forwarded,
            "disjoint commit should forward, not re-execute"
        );
        assert_eq!(c.retries, 0);
        assert_eq!(c.version, 2);
        let emp = db.schema().rel_id("EMP").unwrap();
        let log = db.schema().rel_id("LOG").unwrap();
        let head = db.snapshot();
        assert_eq!(head.relation(emp).unwrap().len(), 1);
        assert_eq!(head.relation(log).unwrap().len(), 1);
    }

    #[test]
    fn overlapping_commit_retries_and_serializes() {
        let db = Database::new(schema()).unwrap();
        let mut setup = db.session();
        setup
            .commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        let mut a = db.session();
        let mut b = db.session();
        let raise = tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end");
        a.commit("raise-a", &raise, &Env::new()).unwrap();
        let c = b.commit("raise-b", &raise, &Env::new()).unwrap();
        assert!(!c.forwarded);
        assert!(c.retries >= 1, "same-relation commit must conflict");
        // both raises landed: serializable outcome
        let emp = db.schema().rel_id("EMP").unwrap();
        let sal = db
            .snapshot()
            .relation(emp)
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .fields()[1]
            .as_nat()
            .unwrap();
        assert_eq!(sal, 520);
    }

    #[test]
    fn try_commit_surfaces_conflict() {
        let db = Database::new(schema()).unwrap();
        let mut setup = db.session();
        setup
            .commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        let mut a = db.session();
        let mut b = db.session();
        let raise = tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end");
        a.commit("raise-a", &raise, &Env::new()).unwrap();
        match b.try_commit("raise-b", &raise, &Env::new()) {
            Err(CommitError::Conflict { head_version }) => assert_eq!(head_version, 2),
            other => panic!("expected Conflict, got {other:?}"),
        }
        // refresh and try again: succeeds
        b.refresh();
        b.try_commit("raise-b", &raise, &Env::new()).unwrap();
    }

    #[test]
    fn constraint_violation_aborts_without_installing() {
        let mut db = Database::new(schema()).unwrap();
        db.add_constraint(Box::new(SalaryCap(1000))).unwrap();
        let mut s = db.session();
        let err = s
            .commit("hire", &tx("insert(tuple('ann', 5000), EMP)"), &Env::new())
            .unwrap_err();
        match err {
            CommitError::ConstraintViolation { constraint } => {
                assert_eq!(constraint, "salary-cap")
            }
            other => panic!("expected ConstraintViolation, got {other:?}"),
        }
        assert_eq!(db.head_version(), 0);
        // a legal commit still goes through
        s.refresh();
        s.commit("hire", &tx("insert(tuple('ann', 900), EMP)"), &Env::new())
            .unwrap();
        assert_eq!(db.head_version(), 1);
    }

    #[test]
    fn materialized_event_pattern_maintains_history_relation() {
        let db = Database::builder(schema())
            .event_pattern(PatternDef::materialized(
                "fired",
                Pattern::parse("delete(EMP, N, _)").unwrap(),
                "FIRED",
                &["N"],
            ))
            .unwrap()
            .build()
            .unwrap();
        assert!(db.schema().expect("FIRED").unwrap().system);
        let fired = db.schema().rel_id("FIRED").unwrap();
        let mut s = db.session();
        s.commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        assert!(db.snapshot().relation(fired).unwrap().is_empty());
        s.commit("fire", &tx("delete(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        // the dispatch ran synchronously: the system commit is already
        // installed when the user commit returns
        let head = db.snapshot();
        assert!(head
            .relation(fired)
            .unwrap()
            .contains_fields(&[Atom::str("ann")]));
        assert_eq!(db.head_version(), 3, "materialization consumed a version");
        // re-firing the same name does not duplicate the history row
        s.refresh();
        s.commit("rehire", &tx("insert(tuple('ann', 700), EMP)"), &Env::new())
            .unwrap();
        s.commit("refire", &tx("delete(tuple('ann', 700), EMP)"), &Env::new())
            .unwrap();
        assert_eq!(db.snapshot().relation(fired).unwrap().len(), 1);
    }

    #[test]
    fn subscriptions_deliver_matches_in_commit_order() {
        let db = Database::new(schema()).unwrap();
        let seen: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let p = Pattern::parse("insert(EMP, N, _)").unwrap();
        let id = db
            .subscribe_pattern(
                "hires",
                &p,
                Arc::new(move |n: &crate::events::EventNotification| {
                    let name = n.binding.values().next().unwrap();
                    sink.lock().unwrap().push((n.version, name.to_string()));
                }),
            )
            .unwrap();
        // duplicate names are rejected
        assert!(db.subscribe_pattern("hires", &p, Arc::new(|_| {})).is_err());
        let mut s = db.session();
        s.commit("h1", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        s.commit("h2", &tx("insert(tuple('bob', 400), EMP)"), &Env::new())
            .unwrap();
        assert_eq!(
            *seen.lock().unwrap(),
            vec![(1, "'ann'".to_string()), (2, "'bob'".to_string())]
        );
        assert!(db.unsubscribe(id));
        assert!(!db.unsubscribe(id));
        s.commit("h3", &tx("insert(tuple('cyd', 300), EMP)"), &Env::new())
            .unwrap();
        assert_eq!(seen.lock().unwrap().len(), 2, "unsubscribed");
    }

    #[test]
    fn late_subscription_primes_silently_over_history() {
        let db = Database::new(schema()).unwrap();
        let mut s = db.session();
        s.commit("fire", &tx("insert(tuple('ann'), LOG)"), &Env::new())
            .unwrap();
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        // seq whose left half is already in the past at subscription time
        let p = Pattern::parse("seq(insert(LOG, N), insert(EMP, N, _))").unwrap();
        db.subscribe_pattern(
            "seq",
            &p,
            Arc::new(move |n: &crate::events::EventNotification| {
                sink.lock().unwrap().push(n.version);
            }),
        )
        .unwrap();
        // completes the seq: left primed from history, right live
        s.commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![2]);
    }

    #[test]
    fn event_pattern_registration_is_validated() {
        // unknown relation
        assert!(Database::builder(schema())
            .event_pattern(PatternDef::named(
                "p",
                Pattern::parse("insert(NOPE, X)").unwrap()
            ))
            .is_err());
        // materialization column not certainly bound (Or binds S on one
        // branch only)
        assert!(Database::builder(schema())
            .event_pattern(PatternDef::materialized(
                "p",
                Pattern::parse("or(insert(EMP, N, S), delete(EMP, N, _))").unwrap(),
                "OUT",
                &["N", "S"],
            ))
            .is_err());
        // patterns over system relations are rejected
        let b = Database::builder(schema())
            .event_pattern(PatternDef::materialized(
                "fired",
                Pattern::parse("delete(EMP, N, _)").unwrap(),
                "FIRED",
                &["N"],
            ))
            .unwrap();
        assert!(b
            .event_pattern(PatternDef::named(
                "loop",
                Pattern::parse("insert(FIRED, N)").unwrap()
            ))
            .is_err());
    }

    #[test]
    fn materialized_relations_recover_with_the_log() {
        use crate::wal::MemStore;
        let def = || {
            PatternDef::materialized(
                "fired",
                Pattern::parse("delete(EMP, N, _)").unwrap(),
                "FIRED",
                &["N"],
            )
        };
        let store = MemStore::new();
        {
            let (db, _) = Database::builder(schema())
                .event_pattern(def())
                .unwrap()
                .durability(Durability::Wal {
                    sync_every: 1,
                    checkpoint_every: 1024,
                })
                .open_store(Box::new(store.clone()))
                .unwrap();
            let mut s = db.session();
            s.commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
                .unwrap();
            s.commit("fire", &tx("delete(tuple('ann', 500), EMP)"), &Env::new())
                .unwrap();
            let fired = db.schema().rel_id("FIRED").unwrap();
            assert_eq!(db.snapshot().relation(fired).unwrap().len(), 1);
        }
        // reopen from the logged bytes: the system commit replays (or
        // re-fires idempotently) and the history relation survives
        let (db, report) = Database::builder(schema())
            .event_pattern(def())
            .unwrap()
            .durability(Durability::Wal {
                sync_every: 1,
                checkpoint_every: 1024,
            })
            .open_store(Box::new(MemStore::from_bytes(store.contents())))
            .unwrap();
        assert!(!report.fresh);
        let fired = db.schema().rel_id("FIRED").unwrap();
        assert!(db
            .snapshot()
            .relation(fired)
            .unwrap()
            .contains_fields(&[Atom::str("ann")]));
        // and the automaton state was rebuilt: a fresh fire of a new
        // name still materializes
        let mut s = db.session();
        s.commit("hire2", &tx("insert(tuple('bob', 400), EMP)"), &Env::new())
            .unwrap();
        s.commit("fire2", &tx("delete(tuple('bob', 400), EMP)"), &Env::new())
            .unwrap();
        assert_eq!(db.snapshot().relation(fired).unwrap().len(), 2);
    }

    #[test]
    fn add_constraint_rejects_violated_base() {
        let mut db = Database::new(schema()).unwrap();
        let mut s = db.session();
        s.commit("hire", &tx("insert(tuple('ann', 5000), EMP)"), &Env::new())
            .unwrap();
        assert!(db.add_constraint(Box::new(SalaryCap(1000))).is_err());
    }

    #[test]
    fn footprint_bounds_simple_programs() {
        let fp = Footprint::of_program(&tx("insert(tuple('ann', 1), EMP)"));
        let rels: Vec<&str> = fp.rels().unwrap().iter().map(|s| s.as_str()).collect();
        assert_eq!(rels, ["EMP"]);
        let fp = Footprint::of_program(&tx(
            "foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 1) end",
        ));
        let rels: Vec<&str> = fp.rels().unwrap().iter().map(|s| s.as_str()).collect();
        assert_eq!(rels, ["EMP"]);
        let fp = Footprint::of_program(&tx("if exists e: 2tup . e in EMP & salary(e) > 100
             then insert(tuple('rich'), LOG) else insert(tuple('poor'), LOG)"));
        let rels: Vec<&str> = fp.rels().unwrap().iter().map(|s| s.as_str()).collect();
        assert_eq!(rels, ["EMP", "LOG"]);
    }

    #[test]
    fn footprint_poisons_unbounded_reads() {
        // a foreach without a membership conjunct enumerates active tuples
        let unbounded = tx("foreach e: 2tup | salary(e) > 0 do delete(e, EMP) end");
        assert!(Footprint::of_program(&unbounded).is_all());
        // an unbounded footprint conflicts with any non-empty delta
        let s = schema();
        let emp = s.rel_id("EMP").unwrap();
        let d0 = s.initial_state();
        let (_, _, delta) = d0
            .insert_traced(
                emp,
                &txlog_relational::TupleVal::anonymous(vec![
                    txlog_base::Atom::str("x"),
                    txlog_base::Atom::nat(1),
                ]),
            )
            .unwrap();
        assert!(Footprint::all().overlaps_delta(&s, &delta));
        assert!(!Footprint::all().overlaps_delta(&s, &Delta::empty()));
    }

    #[test]
    fn durable_commits_survive_reopen() {
        use crate::wal::MemStore;
        let store = MemStore::new();
        let (db, report) = Database::builder(schema())
            .durability(Durability::Wal {
                sync_every: 1,
                checkpoint_every: 0,
            })
            .open_store(Box::new(store.clone()))
            .unwrap();
        assert!(report.fresh);
        let mut s = db.session();
        s.commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        s.commit("hire2", &tx("insert(tuple('bob', 400), EMP)"), &Env::new())
            .unwrap();
        let head = db.snapshot();
        drop(s);
        drop(db);
        // reopen from the same log bytes
        let (db2, report) = Database::builder(schema())
            .durability(Durability::wal())
            .open_store(Box::new(MemStore::from_bytes(store.contents())))
            .unwrap();
        assert!(!report.fresh);
        assert_eq!(report.replayed_deltas, 2);
        assert_eq!(db2.head_version(), 2);
        let recovered = db2.snapshot();
        assert!(recovered.content_eq(&head));
        assert_eq!(recovered.next_tuple_id(), head.next_tuple_id());
        // and the recovered database keeps committing
        let mut s2 = db2.session();
        let c = s2
            .commit("hire3", &tx("insert(tuple('cyn', 300), EMP)"), &Env::new())
            .unwrap();
        assert_eq!(c.version, 3);
    }

    #[test]
    fn forwarded_commits_are_logged_too() {
        use crate::wal::MemStore;
        let store = MemStore::new();
        let (db, _) = Database::builder(schema())
            .durability(Durability::wal())
            .open_store(Box::new(store.clone()))
            .unwrap();
        let mut a = db.session();
        let mut b = db.session();
        a.commit("emp", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        let c = b
            .commit("log", &tx("insert(tuple('audit'), LOG)"), &Env::new())
            .unwrap();
        assert!(c.forwarded);
        let head = db.snapshot();
        drop(a);
        drop(b);
        drop(db);
        let (db2, report) = Database::builder(schema())
            .durability(Durability::wal())
            .open_store(Box::new(MemStore::from_bytes(store.contents())))
            .unwrap();
        assert_eq!(report.replayed_deltas, 2);
        assert_eq!(db2.head_version(), 2);
        assert!(db2.snapshot().content_eq(&head));
    }

    #[test]
    fn recovery_verifies_constraints_against_recovered_head() {
        use crate::wal::MemStore;
        let store = MemStore::new();
        let (db, _) = Database::builder(schema())
            .durability(Durability::wal())
            .open_store(Box::new(store.clone()))
            .unwrap();
        let mut s = db.session();
        s.commit("hire", &tx("insert(tuple('ann', 5000), EMP)"), &Env::new())
            .unwrap();
        drop(s);
        drop(db);
        // a constraint the logged history violates fails the recovery
        let err = match Database::builder(schema())
            .durability(Durability::wal())
            .constraint(Box::new(SalaryCap(1000)))
            .open_store(Box::new(MemStore::from_bytes(store.contents())))
        {
            Err(e) => e,
            Ok(_) => panic!("recovery should reject a violated constraint"),
        };
        assert!(matches!(err, WalError::Engine(_)), "got {err:?}");
        // one the history satisfies passes
        let (db2, _) = Database::builder(schema())
            .durability(Durability::wal())
            .constraint(Box::new(SalaryCap(10_000)))
            .open_store(Box::new(MemStore::from_bytes(store.contents())))
            .unwrap();
        assert_eq!(db2.head_version(), 1);
    }

    #[test]
    fn builder_requires_open_for_wal_durability() {
        assert!(Database::builder(schema())
            .durability(Durability::wal())
            .build()
            .is_err());
        let db = Database::builder(schema()).build().unwrap();
        assert_eq!(db.head_version(), 0);
    }

    #[test]
    fn commit_metrics_are_recorded() {
        let m = Metrics::enabled();
        let db = Database::new(schema()).unwrap().with_metrics(m.clone());
        let mut s = db.session();
        s.commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        assert_eq!(m.get(Counter::CommitAttempts), 1);
        assert_eq!(m.get(Counter::CommitsApplied), 1);
        assert_eq!(m.get(Counter::CommitConflicts), 0);
    }

    #[test]
    fn manual_writer_acks_the_whole_batch_after_one_fsync() {
        use crate::wal::MemStore;
        use txlog_base::obs::Hist;
        let store = MemStore::new();
        let m = Metrics::enabled();
        let (db, _) = Database::builder(schema())
            .metrics(m.clone())
            .manual_log_writer()
            .durability(Durability::Wal {
                sync_every: 8,
                checkpoint_every: 0,
            })
            .open_store(Box::new(store.clone()))
            .unwrap();
        let env = Env::new();
        let mut s = db.session();
        let mut tickets = Vec::new();
        for (label, src) in [
            ("a", "insert(tuple('ann', 500), EMP)"),
            ("b", "insert(tuple('bob', 400), EMP)"),
            ("c", "insert(tuple('cyn', 300), EMP)"),
        ] {
            let p = s.prepare(&tx(src), &env).unwrap();
            let (_, t) = s.submit_prepared(label, &p).unwrap();
            tickets.push(t);
        }
        assert_eq!(db.head_version(), 3, "all three install before any fsync");
        assert!(
            tickets.iter().all(|t| !t.is_complete()),
            "no ack may precede the group fsync"
        );
        db.pump_log_writer();
        for t in &tickets {
            assert!(matches!(t.try_result(), Some(Ok(()))));
        }
        assert_eq!(m.get(Counter::WalGroupBatches), 1, "one batch, one fsync");
        assert_eq!(m.hist(Hist::WalGroupBatchSize).max, 3);
        assert_eq!(
            store.durable_len(),
            store.contents().len(),
            "the batch is durable after the pump"
        );
    }

    /// A `LogStore` whose `sync` blocks until the gate opens — a
    /// stand-in for a device with a stalled fsync.
    #[derive(Clone)]
    struct GatedStore {
        inner: crate::wal::MemStore,
        gate: Arc<(Mutex<bool>, std::sync::Condvar)>,
    }

    impl GatedStore {
        fn open_gate(&self) {
            let (lock, cv) = &*self.gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }

        fn close_gate(&self) {
            *self.gate.0.lock().unwrap() = false;
        }
    }

    impl LogStore for GatedStore {
        fn len(&self) -> Result<u64, WalError> {
            self.inner.len()
        }
        fn read_all(&mut self) -> Result<Vec<u8>, WalError> {
            self.inner.read_all()
        }
        fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
            self.inner.append(bytes)
        }
        fn sync(&mut self) -> Result<(), WalError> {
            let (lock, cv) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            self.inner.sync()
        }
        fn truncate(&mut self, len: u64) -> Result<(), WalError> {
            self.inner.truncate(len)
        }
    }

    #[test]
    fn slow_log_store_surfaces_overload_instead_of_deadlock() {
        use crate::wal::MemStore;
        let store = GatedStore {
            inner: MemStore::new(),
            gate: Arc::new((Mutex::new(true), std::sync::Condvar::new())),
        };
        let (db, _) = Database::builder(schema())
            .log_queue_cap(2)
            .durability(Durability::Wal {
                sync_every: 1,
                checkpoint_every: 0,
            })
            .open_store(Box::new(store.clone()))
            .unwrap();
        // the open-time checkpoint synced through the open gate; stall
        // every fsync from here on
        store.close_gate();
        let env = Env::new();
        let mut s = db.session();
        let mut tickets = Vec::new();
        let mut overloaded = false;
        // with the writer stalled at most 1 (in flight) + 2 (queued)
        // submissions are accepted; the next one must be rejected with
        // Overload rather than blocking
        for i in 0..4 {
            let p = s
                .prepare(&tx(&format!("insert(tuple('e{i}', {i}), EMP)")), &env)
                .unwrap();
            match s.submit_prepared(&format!("hire-{i}"), &p) {
                Ok((_, t)) => tickets.push(t),
                Err(CommitError::Overload { capacity }) => {
                    assert_eq!(capacity, 2);
                    overloaded = true;
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e:?}"),
            }
        }
        assert!(
            overloaded,
            "a stalled writer must surface backpressure within queue_cap + 1 submissions"
        );
        assert!(
            tickets.len() >= 2,
            "the queue accepts up to its capacity before overloading"
        );
        // backpressure is transient: release the device and every
        // accepted commit acks durably
        store.open_gate();
        for t in &tickets {
            t.wait().unwrap();
        }
        assert_eq!(db.head_version(), tickets.len() as u64);
    }

    /// Every `CommitError` variant either exposes its wrapped cause
    /// through `Error::source()` or is itself the root cause — the
    /// contract a wire-protocol front end relies on to map commit
    /// failures losslessly.
    #[test]
    fn commit_error_source_chain_per_variant() {
        use std::error::Error as _;
        let conflict = CommitError::Conflict { head_version: 7 };
        assert!(conflict.source().is_none());
        let violated = CommitError::ConstraintViolation {
            constraint: "cap".to_string(),
        };
        assert!(violated.source().is_none());
        let exhausted = CommitError::RetriesExhausted { attempts: 9 };
        assert!(exhausted.source().is_none());
        let serialization = CommitError::SerializationFailure { head_version: 3 };
        assert!(serialization.source().is_none());
        let overload = CommitError::Overload { capacity: 4 };
        assert!(overload.source().is_none());
        let execution = CommitError::Execution(TxError::eval("boom"));
        let src = execution.source().expect("Execution chains its TxError");
        assert!(src.downcast_ref::<TxError>().is_some());
        let durability = CommitError::Durability(WalError::Poisoned {
            detail: "fsync died".to_string(),
        });
        let src = durability.source().expect("Durability chains its WalError");
        assert!(src.downcast_ref::<WalError>().is_some());
        // the chain continues through the WAL layer down to the codec
        let nested = CommitError::Durability(WalError::Codec(
            txlog_relational::codec::CodecError::BadMagic,
        ));
        let wal = nested.source().expect("WalError level");
        let codec = wal.source().expect("CodecError level");
        assert!(codec
            .downcast_ref::<txlog_relational::codec::CodecError>()
            .is_some());
    }

    #[test]
    fn read_committed_repins_at_statement_boundaries() {
        let db = Database::new(schema()).unwrap();
        let mut rc = db.session_with(SessionOptions::read_committed());
        let mut si = db.session_with(SessionOptions::snapshot());
        let mut writer = db.session();
        writer
            .commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        let p = txlog_logic::parse_fformula("exists e: 2tup . e in EMP", &ctx(), &[]).unwrap();
        assert!(
            rc.ask(&p, &Env::new()).unwrap(),
            "read committed re-pins at the statement boundary"
        );
        assert!(
            !si.ask(&p, &Env::new()).unwrap(),
            "snapshot keeps its pinned (empty) state"
        );
    }

    #[test]
    fn serializable_certifies_the_read_set() {
        let m = Metrics::enabled();
        let db = Database::new(schema()).unwrap().with_metrics(m.clone());
        let mut ssi = db.session_with(SessionOptions::serializable());
        let mut writer = db.session();
        let p = txlog_logic::parse_fformula("exists e: 2tup . e in EMP", &ctx(), &[]).unwrap();
        // the read is taken, then EMP moves under it
        assert!(!ssi.ask(&p, &Env::new()).unwrap());
        writer
            .commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        // the commit's own footprint (LOG) is disjoint — a snapshot
        // session would forward — but the *read* of EMP is stale
        let err = ssi
            .commit("memo", &tx("insert(tuple('audit'), LOG)"), &Env::new())
            .expect_err("read-set certification must fail");
        assert!(
            matches!(err, CommitError::SerializationFailure { head_version: 1 }),
            "got {err:?}"
        );
        assert_eq!(m.get(Counter::CommitSerializationFailures), 1);

        // the same dance under snapshot isolation forwards cleanly
        let mut si = db.session_with(SessionOptions::snapshot());
        assert!(si.ask(&p, &Env::new()).unwrap());
        writer
            .commit("hire2", &tx("insert(tuple('bob', 400), EMP)"), &Env::new())
            .unwrap();
        let c = si
            .commit("memo2", &tx("insert(tuple('audit-2'), LOG)"), &Env::new())
            .expect("snapshot isolation ignores read-write conflicts");
        assert!(c.forwarded);
    }

    #[test]
    fn serializable_reads_reset_after_commit_and_refresh() {
        let db = Database::new(schema()).unwrap();
        let mut ssi = db.session_with(SessionOptions::serializable());
        let mut writer = db.session();
        let p = txlog_logic::parse_fformula("exists e: 2tup . e in EMP", &ctx(), &[]).unwrap();
        assert!(!ssi.ask(&p, &Env::new()).unwrap());
        writer
            .commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        // refresh discards the stale read set; the next commit is clean
        ssi.refresh();
        ssi.commit("memo", &tx("insert(tuple('audit'), LOG)"), &Env::new())
            .expect("refreshed reads certify");
        // a successful commit also resets the reads: observing EMP
        // *after* the writer moved it poisons nothing
        assert!(ssi.ask(&p, &Env::new()).unwrap());
        ssi.commit("memo2", &tx("insert(tuple('audit-2'), LOG)"), &Env::new())
            .expect("reads taken at the current head certify");
    }

    #[test]
    fn read_committed_forwards_on_write_write_disjointness_alone() {
        let db = Database::new(schema()).unwrap();
        let mut setup = db.session();
        setup
            .commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        // reads EMP, writes LOG — under snapshot the footprint overlaps
        // any EMP delta; under read committed only the writes matter
        let audit = tx("foreach e: 2tup | e in EMP do insert(tuple('seen'), LOG) end");
        let raise = tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end");

        let mut rc = db.session_with(SessionOptions::read_committed());
        let prepared = rc.prepare(&audit, &Env::new()).unwrap();
        setup.commit("raise", &raise, &Env::new()).unwrap();
        let c = rc
            .commit_prepared("audit", &prepared)
            .expect("write-write disjoint commit forwards under read committed");
        assert!(c.forwarded, "read committed ignores the stale EMP read");

        let mut si = db.session_with(SessionOptions::snapshot());
        let prepared = si.prepare(&audit, &Env::new()).unwrap();
        setup.commit("raise-2", &raise, &Env::new()).unwrap();
        let err = si
            .commit_prepared("audit-2", &prepared)
            .expect_err("the same stale read conflicts under snapshot");
        assert!(matches!(err, CommitError::Conflict { .. }), "got {err:?}");
    }

    #[test]
    fn session_retry_policy_overrides_the_database_default() {
        let db = Database::new(schema()).unwrap();
        let mut setup = db.session();
        setup
            .commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        let raise = tx("foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end");
        // a zero-retry session gives up on the first conflict even
        // though the database default would have retried
        let mut stubborn = db.session_with(SessionOptions::new().retry(RetryPolicy::no_backoff(0)));
        setup.commit("raise-a", &raise, &Env::new()).unwrap();
        let err = stubborn
            .commit("raise-b", &raise, &Env::new())
            .expect_err("zero retries exhausts on the first conflict");
        assert!(
            matches!(err, CommitError::RetriesExhausted { attempts: 1 }),
            "got {err:?}"
        );
    }

    #[test]
    fn windowed_constraint_escalates_read_committed() {
        struct TwoStateNoop;
        impl CommitConstraint for TwoStateNoop {
            fn name(&self) -> &str {
                "two-state-noop"
            }
            fn window_states(&self) -> usize {
                2
            }
            fn affected_by(&self, _: &Schema, _: &Delta) -> bool {
                false
            }
            fn check(&self, _: &Schema, _: &[DbState], _: &[&str]) -> TxResult<bool> {
                Ok(true)
            }
        }
        let m = Metrics::enabled();
        let mut db = Database::new(schema()).unwrap().with_metrics(m.clone());
        db.add_constraint(Box::new(TwoStateNoop)).unwrap();
        let s = db.session_with(SessionOptions::read_committed());
        assert_eq!(
            s.isolation(),
            IsolationLevel::Snapshot,
            "a window-2 constraint needs a statement-stable pre-state"
        );
        assert_eq!(m.get(Counter::SessionsEscalated), 1);
        assert_eq!(m.get(Counter::SessionsSnapshot), 1);
        assert_eq!(m.get(Counter::SessionsReadCommitted), 0);
    }

    #[test]
    fn label_prefix_applies_to_commit_labels() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct LabelSpy(Mutex<Vec<String>>);
        impl CommitConstraint for &'static LabelSpy {
            fn name(&self) -> &str {
                "label-spy"
            }
            fn window_states(&self) -> usize {
                1
            }
            fn affected_by(&self, _: &Schema, _: &Delta) -> bool {
                true
            }
            fn check(&self, _: &Schema, _: &[DbState], labels: &[&str]) -> TxResult<bool> {
                let mut seen = self.0.lock().unwrap();
                seen.extend(labels.iter().map(|l| l.to_string()));
                Ok(true)
            }
        }
        static SPY: LabelSpy = LabelSpy(Mutex::new(Vec::new()));
        let mut db = Database::new(schema()).unwrap();
        db.add_constraint(Box::new(&SPY)).unwrap();
        let mut s = db.session_with(SessionOptions::new().label_prefix("job-7/"));
        s.commit("hire", &tx("insert(tuple('ann', 500), EMP)"), &Env::new())
            .unwrap();
        assert!(
            SPY.0.lock().unwrap().iter().any(|l| l == "job-7/hire"),
            "the configured prefix lands on the validated label"
        );
    }

    #[test]
    fn deprecated_entry_points_still_work() {
        #![allow(deprecated)]
        let db = Database::new(schema())
            .unwrap()
            .with_retry(RetryPolicy::no_backoff(7));
        assert_eq!(db.retry.max_retries, 7);
        let db = Database::builder(schema())
            .retry(RetryPolicy::no_backoff(3))
            .build()
            .unwrap();
        assert_eq!(db.retry.max_retries, 3);
    }

    #[test]
    fn isolation_level_parsing_and_names() {
        for level in IsolationLevel::ALL {
            assert_eq!(IsolationLevel::parse(level.name()), Some(level));
        }
        assert_eq!(
            IsolationLevel::parse("rc"),
            Some(IsolationLevel::ReadCommitted)
        );
        assert_eq!(IsolationLevel::parse("si"), Some(IsolationLevel::Snapshot));
        assert_eq!(
            IsolationLevel::parse("SSI"),
            Some(IsolationLevel::Serializable)
        );
        assert_eq!(IsolationLevel::parse("chaos"), None);
    }
}
