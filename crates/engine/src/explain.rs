//! EXPLAIN for compiled quantifier plans.
//!
//! [`Engine::explain_formula`] / [`Engine::explain_program`] walk a
//! fluent formula or program and compile every quantifier prefix —
//! `exists`/`forall`, set-formers, `foreach` — exactly the way the
//! evaluator will at runtime (one [`QuantPlan`] per quantifier, under
//! the same [`GuardMode`]), and return the result as an [`Explain`]
//! tree. The tree renders as human-readable text or as JSON (via the
//! dependency-free `txlog_base::obs::json` writer), and can carry a
//! runtime counter [`Snapshot`] so a report shows *both* what the
//! planner chose and what the interpreter actually did (probe counts vs
//! scan rows, filter drops, …).
//!
//! Because the planner is purely syntactic, `explain` never touches a
//! database state: the same formula explains identically everywhere,
//! which is what makes the output safe to assert on in tests.
//!
//! [`QuantPlan`]: txlog_logic::plan::QuantPlan

use crate::exec::Engine;
use txlog_base::obs::json::JsonBuf;
use txlog_base::obs::Snapshot;
use txlog_logic::plan::{plan_quantifiers, DomainSource, GuardMode};
use txlog_logic::{FFormula, FTerm};

/// The shape of one plan step's candidate source, as a closed enum so
/// tests can assert "the probe was chosen" without string matching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SourceKind {
    /// Full scan of a membership-bounding relation.
    Scan,
    /// Secondary-index probe on one column of the bounding relation.
    IndexProbe,
    /// Active-domain fallback over all tuples of the variable's arity.
    ActiveTuples,
    /// Active-domain fallback over atoms plus the condition's constants.
    Atoms,
    /// No finite enumeration exists; interpreting errors.
    Unenumerable,
}

impl SourceKind {
    /// Stable snake_case name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::Scan => "scan",
            SourceKind::IndexProbe => "index_probe",
            SourceKind::ActiveTuples => "active_tuples",
            SourceKind::Atoms => "atoms",
            SourceKind::Unenumerable => "unenumerable",
        }
    }
}

/// One variable of a compiled plan: what the interpreter will enumerate
/// to bind it, and how many residual filters narrow it.
#[derive(Clone, Debug)]
pub struct ExplainStep {
    /// The variable the step binds, rendered.
    pub var: String,
    /// The candidate source's shape.
    pub kind: SourceKind,
    /// Human-readable source description, e.g.
    /// `probe ALLOC[1] = e-name(e)` or `scan EMP`.
    pub detail: String,
    /// Residual narrowing conjuncts applied after binding.
    pub filters: usize,
}

/// One quantifier (or set-former / `foreach`) in the explain tree.
#[derive(Clone, Debug)]
pub struct ExplainNode {
    /// What introduced the plan: `exists a`, `forall e`, `set-former`,
    /// `foreach x`.
    pub label: String,
    /// The guard mode the prefix compiles under.
    pub mode: GuardMode,
    /// Plan-variable-free conjuncts checked before enumerating.
    pub prefilters: usize,
    /// One step per bound variable, in binding order.
    pub steps: Vec<ExplainStep>,
    /// Nested quantifiers inside the condition/body, compiled the same
    /// way the evaluator will compile them (fresh plan per binding).
    pub children: Vec<ExplainNode>,
}

/// A compiled-plan report: the explain tree plus, optionally, runtime
/// counters recorded while the plan actually ran.
#[derive(Clone, Debug)]
pub struct Explain {
    /// Top-level plan nodes in syntactic order.
    pub nodes: Vec<ExplainNode>,
    /// Runtime counters to report alongside the tree, if any.
    pub runtime: Option<Snapshot>,
}

impl Explain {
    /// Attach a runtime counter snapshot (typically taken from the
    /// engine's [`Metrics`] after executing the explained expression).
    ///
    /// [`Metrics`]: txlog_base::obs::Metrics
    pub fn with_runtime(mut self, snapshot: Snapshot) -> Explain {
        self.runtime = Some(snapshot);
        self
    }

    /// Every step in the tree, depth-first — convenient for asserting
    /// global properties ("some probe exists", "no unenumerable step").
    pub fn steps(&self) -> Vec<&ExplainStep> {
        fn walk<'a>(n: &'a ExplainNode, out: &mut Vec<&'a ExplainStep>) {
            out.extend(n.steps.iter());
            for c in &n.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        for n in &self.nodes {
            walk(n, &mut out);
        }
        out
    }

    /// Render the plan tree (and the non-zero runtime counters, when
    /// attached) as indented text.
    pub fn render(&self) -> String {
        fn node(n: &ExplainNode, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let mode = match n.mode {
                GuardMode::Positive => "positive",
                GuardMode::Guarded => "guarded",
            };
            out.push_str(&format!("{pad}{} [{mode}]", n.label));
            if n.prefilters > 0 {
                out.push_str(&format!(" prefilters={}", n.prefilters));
            }
            out.push('\n');
            for s in &n.steps {
                out.push_str(&format!("{pad}  {} <- {}", s.var, s.detail));
                if s.filters > 0 {
                    out.push_str(&format!(" | {} filter(s)", s.filters));
                }
                out.push('\n');
            }
            for c in &n.children {
                node(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for n in &self.nodes {
            node(n, 0, &mut out);
        }
        if let Some(rt) = &self.runtime {
            out.push_str("runtime ");
            out.push_str(&rt.render());
        }
        out
    }

    /// Serialize the report as JSON:
    /// `{"plan":[<node>...],"runtime":{...}?}` where each node is
    /// `{"label","mode","prefilters","steps":[{"var","source","detail",
    /// "filters"}],"children":[...]}`.
    pub fn to_json(&self) -> String {
        fn node(n: &ExplainNode, j: &mut JsonBuf) {
            j.begin_obj();
            j.key("label");
            j.string(&n.label);
            j.key("mode");
            j.string(match n.mode {
                GuardMode::Positive => "positive",
                GuardMode::Guarded => "guarded",
            });
            j.key("prefilters");
            j.num(n.prefilters as u64);
            j.key("steps");
            j.begin_arr();
            for s in &n.steps {
                j.begin_obj();
                j.key("var");
                j.string(&s.var);
                j.key("source");
                j.string(s.kind.name());
                j.key("detail");
                j.string(&s.detail);
                j.key("filters");
                j.num(s.filters as u64);
                j.end_obj();
            }
            j.end_arr();
            j.key("children");
            j.begin_arr();
            for c in &n.children {
                node(c, j);
            }
            j.end_arr();
            j.end_obj();
        }
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("plan");
        j.begin_arr();
        for n in &self.nodes {
            node(n, &mut j);
        }
        j.end_arr();
        if let Some(rt) = &self.runtime {
            j.key("runtime");
            // Counters only: the runtime half of an explain report must
            // be as deterministic as the plan half.
            j.begin_obj();
            for (name, v) in &rt.counters {
                if *v != 0 {
                    j.key(name);
                    j.num(*v);
                }
            }
            j.end_obj();
        }
        j.end_obj();
        j.finish()
    }
}

impl Engine<'_> {
    /// Explain every quantifier plan in a fluent formula (a constraint
    /// body, say) without evaluating it.
    pub fn explain_formula(&self, f: &FFormula) -> Explain {
        let mut nodes = Vec::new();
        self.walk_formula(f, &mut nodes);
        Explain {
            nodes,
            runtime: None,
        }
    }

    /// Explain every quantifier plan in a program (set-formers,
    /// `foreach` domains, condition formulas) without executing it.
    pub fn explain_program(&self, t: &FTerm) -> Explain {
        let mut nodes = Vec::new();
        self.walk_term(t, &mut nodes);
        Explain {
            nodes,
            runtime: None,
        }
    }

    fn explain_prefix(
        &self,
        label: String,
        vars: &[txlog_logic::Var],
        cond: &FFormula,
        mode: GuardMode,
    ) -> ExplainNode {
        let plan = plan_quantifiers(&self.sig, vars, cond, mode);
        let steps = plan
            .steps
            .iter()
            .map(|s| {
                let (kind, detail) = match &s.source {
                    DomainSource::Scan(rel) => (SourceKind::Scan, format!("scan {rel}")),
                    DomainSource::IndexProbe { rel, col, key } => (
                        SourceKind::IndexProbe,
                        format!("probe {rel}[{col}] = {key}"),
                    ),
                    DomainSource::ActiveTuples(n) => (
                        SourceKind::ActiveTuples,
                        format!("active tuples of arity {n}"),
                    ),
                    DomainSource::Atoms => {
                        (SourceKind::Atoms, "active atoms + constants".to_string())
                    }
                    DomainSource::Unenumerable(sort) => (
                        SourceKind::Unenumerable,
                        format!("unenumerable sort {sort}"),
                    ),
                };
                ExplainStep {
                    var: s.var.to_string(),
                    kind,
                    detail,
                    filters: s.filters.len(),
                }
            })
            .collect();
        let mut children = Vec::new();
        self.walk_formula(cond, &mut children);
        ExplainNode {
            label,
            mode,
            prefilters: plan.prefilters.len(),
            steps,
            children,
        }
    }

    fn walk_formula(&self, f: &FFormula, out: &mut Vec<ExplainNode>) {
        match f {
            FFormula::Exists(v, body) => {
                out.push(self.explain_prefix(
                    format!("exists {v}"),
                    std::slice::from_ref(v),
                    body,
                    GuardMode::Positive,
                ));
            }
            FFormula::Forall(v, body) => {
                out.push(self.explain_prefix(
                    format!("forall {v}"),
                    std::slice::from_ref(v),
                    body,
                    GuardMode::Guarded,
                ));
            }
            FFormula::Not(q) => self.walk_formula(q, out),
            FFormula::And(a, b)
            | FFormula::Or(a, b)
            | FFormula::Implies(a, b)
            | FFormula::Iff(a, b) => {
                self.walk_formula(a, out);
                self.walk_formula(b, out);
            }
            FFormula::Cmp(_, a, b) | FFormula::Member(a, b) | FFormula::Subset(a, b) => {
                self.walk_term(a, out);
                self.walk_term(b, out);
            }
            FFormula::True | FFormula::False | FFormula::UserPred(_, _) => {}
        }
    }

    fn walk_term(&self, t: &FTerm, out: &mut Vec<ExplainNode>) {
        match t {
            FTerm::SetFormer { head, vars, cond } => {
                let mut node =
                    self.explain_prefix("set-former".to_string(), vars, cond, GuardMode::Positive);
                self.walk_term(head, &mut node.children);
                out.push(node);
            }
            FTerm::Foreach(v, p, body) => {
                let mut node = self.explain_prefix(
                    format!("foreach {v}"),
                    std::slice::from_ref(v),
                    p,
                    GuardMode::Positive,
                );
                self.walk_term(body, &mut node.children);
                out.push(node);
            }
            FTerm::Seq(a, b) => {
                self.walk_term(a, out);
                self.walk_term(b, out);
            }
            FTerm::Cond(p, a, b) => {
                self.walk_formula(p, out);
                self.walk_term(a, out);
                self.walk_term(b, out);
            }
            FTerm::Attr(_, inner) | FTerm::Select(inner, _) | FTerm::IdOf(inner) => {
                self.walk_term(inner, out)
            }
            FTerm::TupleCons(ts) | FTerm::App(_, ts) | FTerm::UserApp(_, ts) => {
                for t in ts {
                    self.walk_term(t, out);
                }
            }
            FTerm::Insert(tup, _) | FTerm::Delete(tup, _) => self.walk_term(tup, out),
            FTerm::Modify(tup, _, v) | FTerm::ModifyAttr(tup, _, v) => {
                self.walk_term(tup, out);
                self.walk_term(v, out);
            }
            FTerm::Assign(_, set) => self.walk_term(set, out),
            FTerm::Var(_) | FTerm::Nat(_) | FTerm::Str(_) | FTerm::Rel(_) | FTerm::Identity => {}
        }
    }
}
