//! Finite-model evaluation of s-formulas over evolution graphs.
//!
//! Definition 2 makes a relational database a *model* of the situational
//! transaction theory: a set of states connected by transactions. A
//! [`Model`] is a finite such structure — an [`EvolutionGraph`] plus its
//! schema — and [`Model::check`] decides a closed s-formula in it:
//!
//! * situational **state** variables range over the graph's nodes;
//! * fluent **state** variables (transactions, the `t` of `s ; t`) range
//!   over the graph's arc labels, and `s ; t` denotes the target of the
//!   `t`-arc from `s` (undefined if there is none) — so `∃t. s;t = s₂`
//!   says exactly "s₂ is reachable from s by a recorded transaction";
//! * fluent **tuple** variables range over tuple identities, re-resolved
//!   at each state (`s:e` and `s;t:e` see the same employee's possibly
//!   different attribute values);
//! * situational **tuple** variables range over tuple values, restricted
//!   by membership conjuncts where possible;
//! * atom variables range over the active domain plus the formula's own
//!   constants.
//!
//! Non-denoting terms make their atoms false (negative free logic), which
//! gives the paper's reading of transaction constraints: a constraint
//! `… → s;t :: φ` is vacuously satisfied at arcs that do not exist.

use crate::env::{Binding, Env};
use crate::exec::{cmp_values, Engine, EvalOptions};
use crate::value::{SetVal, StateVal, Value};
use txlog_base::obs::{Counter, Metrics};
use txlog_base::{Atom, TxError, TxResult};
use txlog_logic::{FTerm, ObjSort, SFormula, STerm, Sort, Var, VarClass};
use txlog_relational::{DbState, EvolutionGraph, Schema, TupleVal, TxLabel};

/// A finite model: an evolution graph over a schema.
pub struct Model {
    /// The schema (relation declarations).
    pub schema: Schema,
    /// The graph of states and transaction arcs.
    pub graph: EvolutionGraph,
    opts: EvalOptions,
    metrics: Metrics,
}

impl Model {
    /// Wrap a graph as a model.
    pub fn new(schema: Schema, graph: EvolutionGraph) -> Model {
        Model {
            schema,
            graph,
            opts: EvalOptions::default(),
            metrics: Metrics::current(),
        }
    }

    /// Set evaluation options (forwarded to the fluent evaluator).
    pub fn with_options(mut self, opts: EvalOptions) -> Model {
        self.opts = opts;
        self
    }

    /// Set the observability sink (forwarded to the fluent evaluator).
    pub fn with_metrics(mut self, metrics: Metrics) -> Model {
        self.metrics = metrics;
        self
    }

    fn engine(&self) -> TxResult<Engine<'_>> {
        Engine::builder(&self.schema)
            .options(self.opts)
            .metrics(self.metrics.clone())
            .build()
    }

    /// Decide a closed s-formula in this model.
    pub fn check(&self, f: &SFormula) -> TxResult<bool> {
        self.metrics.bump(Counter::ModelChecks);
        let _span = self.metrics.span("model_check");
        self.eval_sformula(f, &Env::new())
    }

    /// Decide an s-formula under an environment for its free variables.
    pub fn eval_sformula(&self, f: &SFormula, env: &Env) -> TxResult<bool> {
        match f {
            SFormula::True => Ok(true),
            SFormula::False => Ok(false),
            SFormula::Holds(w, p) => match self.eval_sterm_opt(w, env)? {
                Some(v) => {
                    let sv = v.into_state()?;
                    self.engine()?.eval_truth(&sv.db, p, env)
                }
                None => Ok(false),
            },
            SFormula::Cmp(op, a, b) => {
                let a = self.eval_sterm_opt(a, env)?;
                let b = self.eval_sterm_opt(b, env)?;
                match (a, b) {
                    (Some(a), Some(b)) => cmp_values(*op, &a, &b),
                    _ => Ok(false),
                }
            }
            SFormula::Member(t, set) => {
                let t = self.eval_sterm_opt(t, env)?;
                let set = self.eval_sterm_opt(set, env)?;
                match (t, set) {
                    (Some(t), Some(set)) => Ok(set.into_set()?.contains(&t.into_tuple()?)),
                    _ => Ok(false),
                }
            }
            SFormula::Subset(a, b) => {
                let a = self.eval_sterm_opt(a, env)?;
                let b = self.eval_sterm_opt(b, env)?;
                match (a, b) {
                    (Some(a), Some(b)) => a.into_set()?.subset(&b.into_set()?),
                    _ => Ok(false),
                }
            }
            SFormula::Not(q) => Ok(!self.eval_sformula(q, env)?),
            SFormula::And(a, b) => Ok(self.eval_sformula(a, env)? && self.eval_sformula(b, env)?),
            SFormula::Or(a, b) => Ok(self.eval_sformula(a, env)? || self.eval_sformula(b, env)?),
            SFormula::Implies(a, b) => {
                Ok(!self.eval_sformula(a, env)? || self.eval_sformula(b, env)?)
            }
            SFormula::Iff(a, b) => Ok(self.eval_sformula(a, env)? == self.eval_sformula(b, env)?),
            SFormula::Forall(v, body) => {
                for b in self.quantifier_domain(*v, body, env)? {
                    let env2 = env.bind(*v, b);
                    if !self.eval_sformula(body, &env2)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            SFormula::Exists(v, body) => {
                for b in self.quantifier_domain(*v, body, env)? {
                    let env2 = env.bind(*v, b);
                    if self.eval_sformula(body, &env2)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            SFormula::UserPred(name, _) => Err(TxError::eval(format!(
                "user predicate {name}' has no evaluation rule registered"
            ))),
        }
    }

    /// As [`Model::eval_sformula`], but also returns the witness binding
    /// that falsified the outermost universal (for counterexample reports).
    pub fn check_with_witness(&self, f: &SFormula) -> TxResult<Result<(), String>> {
        match f {
            SFormula::Forall(v, body) => {
                for b in self.quantifier_domain(*v, body, &Env::new())? {
                    let env2 = Env::new().bind(*v, b.clone());
                    if !self.eval_sformula(body, &env2)? {
                        return Ok(Err(format!("{v} ↦ {b}")));
                    }
                }
                Ok(Ok(()))
            }
            other => {
                if self.check(other)? {
                    Ok(Ok(()))
                } else {
                    Ok(Err("formula is false (no binding to report)".into()))
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // s-term evaluation
    // ------------------------------------------------------------------

    /// Evaluate an s-term, `None` for non-denoting.
    pub fn eval_sterm_opt(&self, t: &STerm, env: &Env) -> TxResult<Option<Value>> {
        match self.eval_sterm(t, env) {
            Ok(v) => Ok(Some(v)),
            Err(e) if e.is_undefined() => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Evaluate an s-term to a value.
    pub fn eval_sterm(&self, t: &STerm, env: &Env) -> TxResult<Value> {
        match t {
            STerm::Var(v) => match env.get(v) {
                Some(Binding::Val(val)) => Ok(val.clone()),
                Some(Binding::FluentAtom(a)) => Ok(Value::Atom(*a)),
                Some(other) => Err(TxError::sort(format!(
                    "variable {v} bound to {other} used in s-term position"
                ))),
                None => Err(TxError::eval(format!("unbound variable {v}"))),
            },
            STerm::Nat(n) => Ok(Value::Atom(Atom::Nat(*n))),
            STerm::Str(s) => Ok(Value::Atom(Atom::Str(*s))),
            STerm::EvalObj(w, e) => {
                let sv = self.eval_sterm(w, env)?.into_state()?;
                self.engine()?.eval_obj(&sv.db, e, env)
            }
            STerm::EvalState(w, e) => {
                let sv = self.eval_sterm(w, env)?.into_state()?;
                let out = self.eval_state_fluent(sv, e, env)?;
                Ok(Value::State(out))
            }
            STerm::Attr(name, inner) => {
                let tuple = self.eval_sterm(inner, env)?.into_tuple()?;
                let (arity, ix) = self.attr_of(*name)?;
                if tuple.arity() != arity {
                    return Err(TxError::sort(format!(
                        "attribute {name} belongs to {arity}-ary tuples, got arity {}",
                        tuple.arity()
                    )));
                }
                Ok(Value::Atom(tuple.select(ix)?))
            }
            STerm::Select(inner, i) => {
                let tuple = self.eval_sterm(inner, env)?.into_tuple()?;
                Ok(Value::Atom(tuple.select(*i)?))
            }
            STerm::TupleCons(parts) => {
                let mut fields = Vec::with_capacity(parts.len());
                for p in parts {
                    fields.push(self.eval_sterm(p, env)?.into_atom()?);
                }
                Ok(Value::Tuple(TupleVal::anonymous(fields)))
            }
            STerm::App(op, args) => {
                use txlog_logic::Op;
                // Mirror the fluent evaluator: malformed applications
                // surface as typed sort errors, not index panics.
                let arg = |i: usize| -> TxResult<&STerm> {
                    args.get(i).ok_or_else(|| {
                        TxError::sort(format!(
                            "operator {op} applied to {} argument(s); argument {} is missing",
                            args.len(),
                            i + 1
                        ))
                    })
                };
                match op {
                    Op::Add | Op::Monus | Op::Mul | Op::Max | Op::Min => {
                        let a = self.eval_sterm(arg(0)?, env)?.into_atom()?;
                        let b = self.eval_sterm(arg(1)?, env)?.into_atom()?;
                        let r = match op {
                            Op::Add => a.add(b)?,
                            Op::Monus => a.monus(b)?,
                            Op::Mul => a.mul(b)?,
                            Op::Max => a.max(b)?,
                            Op::Min => a.min(b)?,
                            _ => unreachable!(),
                        };
                        Ok(Value::Atom(r))
                    }
                    Op::Sum => {
                        let s = self.eval_sterm(arg(0)?, env)?.into_set()?;
                        Ok(Value::Atom(s.sum()?))
                    }
                    Op::Size => {
                        let s = self.eval_sterm(arg(0)?, env)?.into_set()?;
                        Ok(Value::Atom(Atom::Nat(s.len() as u64)))
                    }
                    Op::Union | Op::Inter | Op::Diff | Op::Product => {
                        let a = self.eval_sterm(arg(0)?, env)?.into_set()?;
                        let b = self.eval_sterm(arg(1)?, env)?.into_set()?;
                        let r = match op {
                            Op::Union => a.union(&b)?,
                            Op::Inter => a.inter(&b)?,
                            Op::Diff => a.diff(&b)?,
                            Op::Product => a.product(&b)?,
                            _ => unreachable!(),
                        };
                        Ok(Value::Set(r))
                    }
                }
            }
            STerm::SetFormer { head, vars, cond } => {
                let mut members = Vec::new();
                self.enumerate_s(vars, cond, env, &mut |env| {
                    if self.eval_sformula(cond, env)? {
                        members.push(self.eval_sterm(head, env)?.into_tuple()?);
                    }
                    Ok(())
                })?;
                let arity = match members.first() {
                    Some(m) => m.arity(),
                    // An empty comprehension's arity comes from the
                    // head's sort, never from a guess.
                    None => match txlog_logic::sort_of_sterm(&self.engine()?.sig, head) {
                        Ok(Sort::Obj(ObjSort::Atom)) => 1,
                        Ok(Sort::Obj(ObjSort::Tup(n))) => n,
                        Ok(other) => {
                            return Err(TxError::sort(format!(
                                "set-former head has sort {other}, not a tuple or atom"
                            )))
                        }
                        Err(e) => return Err(e),
                    },
                };
                Ok(Value::Set(SetVal::from_members(arity, members)?))
            }
            STerm::IdOf(inner) => match self.eval_sterm(inner, env)? {
                Value::Tuple(t) => {
                    t.id.map(Value::TupleId)
                        .ok_or_else(|| TxError::undefined("id of an anonymous tuple"))
                }
                Value::Set(s) => s
                    .rel_id
                    .map(Value::RelId)
                    .ok_or_else(|| TxError::undefined("id of a computed set")),
                other => Err(TxError::sort(format!("id of {other}"))),
            },
            STerm::UserApp(name, _) => Err(TxError::eval(format!(
                "user s-function {name}' has no evaluation rule registered"
            ))),
        }
    }

    fn attr_of(&self, name: txlog_base::Symbol) -> TxResult<(usize, usize)> {
        for d in self.schema.decls() {
            if let Some(p) = d.attrs.iter().position(|&a| a == name) {
                return Ok((d.arity(), p + 1));
            }
        }
        Err(TxError::schema(format!("unknown attribute {name}")))
    }

    /// Evaluate a state-sorted fluent at a state value — the denotation
    /// of `w ; e`.
    fn eval_state_fluent(&self, sv: StateVal, e: &FTerm, env: &Env) -> TxResult<StateVal> {
        match e {
            FTerm::Identity => Ok(sv),
            FTerm::Seq(a, b) => {
                let mid = self.eval_state_fluent(sv, a, env)?;
                self.eval_state_fluent(mid, b, env)
            }
            FTerm::Cond(p, a, b) => {
                if self.engine()?.eval_truth(&sv.db, p, env)? {
                    self.eval_state_fluent(sv, a, env)
                } else {
                    self.eval_state_fluent(sv, b, env)
                }
            }
            FTerm::Var(v) => match env.get(v) {
                Some(Binding::Label(label)) => {
                    let node = sv.node.ok_or_else(|| {
                        TxError::undefined(format!(
                            "transaction variable {v}: source state is not a graph node"
                        ))
                    })?;
                    match self.graph.successor(node, *label) {
                        Some(dst) => Ok(StateVal::node(dst, self.graph.state(dst).clone())),
                        None => Err(TxError::undefined(format!(
                            "no {label}-transition from {node}"
                        ))),
                    }
                }
                Some(Binding::Program(p)) => {
                    let p = p.clone();
                    let db = self.engine()?.execute(&sv.db, &p, env)?;
                    Ok(self.locate(db))
                }
                Some(other) => Err(TxError::sort(format!(
                    "variable {v} bound to {other} used as a transaction"
                ))),
                None => Err(TxError::eval(format!("unbound transaction variable {v}"))),
            },
            // A concrete transaction: execute it; re-attach to a node if
            // the resulting contents already exist in the graph.
            concrete => {
                let db = self.engine()?.execute(&sv.db, concrete, env)?;
                Ok(self.locate(db))
            }
        }
    }

    /// Attach a computed state to a graph node when its contents match one.
    fn locate(&self, db: DbState) -> StateVal {
        for id in self.graph.state_ids() {
            if self.graph.state(id).content_eq(&db) {
                return StateVal::node(id, db);
            }
        }
        StateVal::detached(db)
    }

    // ------------------------------------------------------------------
    // quantifier domains
    // ------------------------------------------------------------------

    fn enumerate_s(
        &self,
        vars: &[Var],
        cond: &SFormula,
        env: &Env,
        visit: &mut dyn FnMut(&Env) -> TxResult<()>,
    ) -> TxResult<()> {
        match vars.split_first() {
            None => visit(env),
            Some((&v, rest)) => {
                for b in self.quantifier_domain(v, cond, env)? {
                    let env2 = env.bind(v, b);
                    self.enumerate_s(rest, cond, &env2, visit)?;
                }
                Ok(())
            }
        }
    }

    /// The finite domain of a quantified variable.
    pub fn quantifier_domain(&self, v: Var, body: &SFormula, env: &Env) -> TxResult<Vec<Binding>> {
        match (v.sort, v.class) {
            (Sort::State, VarClass::Situational) => Ok(self
                .graph
                .state_ids()
                .map(|id| {
                    Binding::Val(Value::State(StateVal::node(
                        id,
                        self.graph.state(id).clone(),
                    )))
                })
                .collect()),
            (Sort::State, VarClass::Fluent) => Ok(self
                .graph
                .labels()
                .into_iter()
                .map(Binding::Label)
                .collect()),
            (Sort::Obj(ObjSort::Tup(n)), VarClass::Fluent) => {
                // tuple identities of arity n anywhere in the model,
                // enumerated per state by the engine's shared helper
                let mut out = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for id in self.graph.state_ids() {
                    for tv in crate::plan::active_tuples(self.graph.state(id), n) {
                        if let Some(tid) = tv.id {
                            if seen.insert(tid) {
                                out.push(Binding::FluentTuple(tv));
                            }
                        }
                    }
                }
                self.domain_budget(v, out.len())?;
                Ok(out)
            }
            (Sort::Obj(ObjSort::Tup(n)), VarClass::Situational) => {
                // Prefer a restricting membership conjunct e' ∈ <set-expr>
                if let Some(set_expr) = find_smembership(body, v) {
                    if let Some(set) = self.eval_sterm_opt(set_expr, env)? {
                        let set = set.into_set()?;
                        return Ok(set
                            .members()
                            .iter()
                            .cloned()
                            .map(|t| Binding::Val(Value::Tuple(t)))
                            .collect());
                    }
                    return Ok(Vec::new());
                }
                // fall back to every arity-n tuple value in any state,
                // via the engine's shared per-state enumeration
                let mut out = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for id in self.graph.state_ids() {
                    for tv in crate::plan::active_tuples(self.graph.state(id), n) {
                        if seen.insert((tv.id, tv.fields.clone())) {
                            out.push(Binding::Val(Value::Tuple(tv)));
                        }
                    }
                }
                self.domain_budget(v, out.len())?;
                Ok(out)
            }
            (Sort::ATOM, _) => {
                let mut seed = Vec::new();
                collect_sformula_atoms(body, &mut seed);
                let states = self.graph.state_ids().map(|id| self.graph.state(id));
                let atoms = crate::plan::atom_domain(states, seed);
                self.domain_budget(v, atoms.len())?;
                Ok(atoms
                    .into_iter()
                    .map(|a| match v.class {
                        VarClass::Fluent => Binding::FluentAtom(a),
                        VarClass::Situational => Binding::Val(Value::Atom(a)),
                    })
                    .collect())
            }
            (sort, class) => Err(TxError::sort(format!(
                "cannot enumerate domain of {class:?} variable {v} of sort {sort}"
            ))),
        }
    }

    /// The model checker's counterpart of the engine's enumeration
    /// budget: a quantifier domain larger than `max_iterations` is
    /// treated as not finitely enumerable.
    fn domain_budget(&self, v: Var, size: usize) -> TxResult<()> {
        if size > self.opts.max_iterations {
            return Err(TxError::InfiniteDomain(format!(
                "s-formula quantifier domain for {v} exceeded {} bindings",
                self.opts.max_iterations
            )));
        }
        Ok(())
    }
}

/// Find a membership conjunct `v ∈ S` restricting situational variable
/// `v`, searching positive conjuncts and implication antecedents.
fn find_smembership(p: &SFormula, v: Var) -> Option<&STerm> {
    match p {
        SFormula::Member(STerm::Var(x), set) if *x == v => Some(set),
        SFormula::And(a, b) => find_smembership(a, v).or_else(|| find_smembership(b, v)),
        SFormula::Implies(a, _) => find_smembership(a, v),
        SFormula::Forall(x, q) | SFormula::Exists(x, q) if *x != v => find_smembership(q, v),
        _ => None,
    }
}

fn collect_sformula_atoms(p: &SFormula, out: &mut Vec<Atom>) {
    fn term(t: &STerm, out: &mut Vec<Atom>) {
        match t {
            STerm::Nat(n) => out.push(Atom::Nat(*n)),
            STerm::Str(s) => out.push(Atom::Str(*s)),
            STerm::EvalObj(w, _) | STerm::EvalState(w, _) => term(w, out),
            STerm::Attr(_, t) | STerm::Select(t, _) | STerm::IdOf(t) => term(t, out),
            STerm::TupleCons(ts) | STerm::App(_, ts) | STerm::UserApp(_, ts) => {
                for t in ts {
                    term(t, out);
                }
            }
            STerm::SetFormer { head, cond, .. } => {
                term(head, out);
                collect_sformula_atoms(cond, out);
            }
            STerm::Var(_) => {}
        }
    }
    match p {
        SFormula::True | SFormula::False => {}
        SFormula::Holds(w, _) => term(w, out),
        SFormula::Cmp(_, a, b) | SFormula::Member(a, b) | SFormula::Subset(a, b) => {
            term(a, out);
            term(b, out);
        }
        SFormula::Not(q) => collect_sformula_atoms(q, out),
        SFormula::And(a, b)
        | SFormula::Or(a, b)
        | SFormula::Implies(a, b)
        | SFormula::Iff(a, b) => {
            collect_sformula_atoms(a, out);
            collect_sformula_atoms(b, out);
        }
        SFormula::Forall(_, q) | SFormula::Exists(_, q) => collect_sformula_atoms(q, out),
        SFormula::UserPred(_, ts) => {
            for t in ts {
                term(t, out);
            }
        }
    }
}

/// Incrementally build an evolution graph by executing transactions.
pub struct ModelBuilder {
    schema: Schema,
    graph: EvolutionGraph,
    opts: EvalOptions,
}

impl ModelBuilder {
    /// Start building over a schema.
    pub fn new(schema: Schema) -> ModelBuilder {
        ModelBuilder {
            schema,
            graph: EvolutionGraph::new(),
            opts: EvalOptions::default(),
        }
    }

    /// Set evaluation options for transaction execution.
    pub fn with_options(mut self, opts: EvalOptions) -> ModelBuilder {
        self.opts = opts;
        self
    }

    /// Add (or find) a state.
    pub fn add_state(&mut self, db: DbState) -> txlog_base::StateId {
        self.graph.add_state(db)
    }

    /// Execute `tx` (under `env`) at node `src`, record the resulting
    /// state and a `label`-arc, and return the destination node.
    pub fn apply(
        &mut self,
        src: txlog_base::StateId,
        label: &str,
        tx: &FTerm,
        env: &Env,
    ) -> TxResult<txlog_base::StateId> {
        let engine = Engine::builder(&self.schema).options(self.opts).build()?;
        let next = engine.execute(self.graph.state(src), tx, env)?;
        let dst = self.graph.add_state(next);
        self.graph.add_arc(src, TxLabel::new(label), dst)?;
        Ok(dst)
    }

    /// Add the `Λ` self-loops (reflexivity).
    pub fn reflexive_close(&mut self) {
        self.graph.reflexive_close();
    }

    /// Add composed witness arcs (transitivity on reachability).
    pub fn transitive_close(&mut self) {
        self.graph.transitive_close();
    }

    /// Finish, yielding the model.
    pub fn finish(self) -> Model {
        Model::new(self.schema, self.graph).with_options(self.opts)
    }

    /// Access the graph under construction.
    pub fn graph(&self) -> &EvolutionGraph {
        &self.graph
    }

    /// Mutable access to the graph under construction, for callers that
    /// need hand-built arcs (e.g. synthetic Kripke structures).
    pub fn graph_mut(&mut self) -> &mut EvolutionGraph {
        &mut self.graph
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}
