//! Operational semantics for the situational transaction logic.
//!
//! Two evaluators and a session layer:
//!
//! * [`Engine`] ([`exec`]) — the *program* semantics: evaluate f-terms
//!   (queries) and execute f-terms of state sort (transactions) against a
//!   single [`DbState`]. Programs only ever see the current state, which
//!   is the paper's executability discipline; the situational functions
//!   `w:e`, `w::p`, `w;e` are methods on this evaluator.
//! * [`Model`] ([`model`]) — the *logic* semantics: decide s-formulas in a
//!   finite model (an evolution graph), with quantifier domains as
//!   described in the module docs. [`ModelBuilder`] grows a graph by
//!   executing transactions.
//! * [`Database`] ([`db`]) — snapshot-isolated concurrent access: readers
//!   share `Arc` snapshots of an immutable committed head, and
//!   [`Session`]s commit transactions through an optimistic pipeline
//!   (execute at snapshot, detect conflicts by delta/footprint
//!   intersection, forward or retry, validate constraints in parallel).
//!
//! [`DbState`]: txlog_relational::DbState

#![warn(missing_docs)]

pub mod db;
pub mod env;
pub mod events;
pub mod exec;
pub mod explain;
mod group;
pub mod model;
pub mod plan;
pub mod sim;
pub mod value;
pub mod wal;

pub use db::{
    Commit, CommitConstraint, CommitError, CommitTicket, Database, DatabaseBuilder, Footprint,
    IsolationLevel, Prepared, RetryPolicy, Session, SessionOptions,
};
pub use env::{Binding, Env};
pub use events::{EventCallback, EventNotification, SubId};
pub use exec::{
    check_program, Engine, EngineBuilder, EvalOptions, Execution, PlanMode, ProgramKind,
};
pub use explain::{Explain, ExplainNode, ExplainStep, SourceKind};
pub use model::{Model, ModelBuilder};
pub use value::{SetVal, StateVal, Value};
pub use wal::{Durability, FileStore, LogStore, MemStore, RecoveryReport, WalError};

#[cfg(test)]
mod tests {
    use super::*;
    use txlog_base::Atom;
    use txlog_logic::{parse_fterm, parse_sformula, FTerm, ParseCtx, Var};
    use txlog_relational::Schema;

    fn schema() -> Schema {
        Schema::new()
            .relation("EMP", &["e-name", "salary"])
            .unwrap()
            .relation("LOG", &["l-name"])
            .unwrap()
    }

    fn ctx() -> ParseCtx {
        ParseCtx::with_relations(&["EMP", "LOG"])
    }

    fn populated(schema: &Schema) -> txlog_relational::DbState {
        let db = schema.initial_state();
        let emp = schema.rel_id("EMP").unwrap();
        let (db, _) = db
            .insert_fields(emp, &[Atom::str("ann"), Atom::nat(500)])
            .unwrap();
        let (db, _) = db
            .insert_fields(emp, &[Atom::str("bob"), Atom::nat(400)])
            .unwrap();
        db
    }

    #[test]
    fn execute_insert_and_query() {
        let schema = schema();
        let engine = Engine::builder(&schema).build().unwrap();
        let db = populated(&schema);
        let tx = parse_fterm("insert(tuple('carol', 300), EMP)", &ctx(), &[]).unwrap();
        let db2 = engine.execute(&db, &tx, &Env::new()).unwrap();
        assert_eq!(
            db2.relation(schema.rel_id("EMP").unwrap()).unwrap().len(),
            3
        );
        // original untouched
        assert_eq!(db.relation(schema.rel_id("EMP").unwrap()).unwrap().len(), 2);
    }

    #[test]
    fn foreach_gives_everyone_a_raise() {
        let schema = schema();
        let engine = Engine::builder(&schema).build().unwrap();
        let db = populated(&schema);
        let tx = parse_fterm(
            "foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end",
            &ctx(),
            &[],
        )
        .unwrap();
        let db2 = engine.execute(&db, &tx, &Env::new()).unwrap();
        let emp = schema.rel_id("EMP").unwrap();
        let salaries: Vec<u64> = db2
            .relation(emp)
            .unwrap()
            .iter()
            .map(|t| t.fields()[1].as_nat().unwrap())
            .collect();
        assert_eq!(salaries, vec![510, 410]);
    }

    #[test]
    fn conditional_executes_one_branch() {
        let schema = schema();
        let engine = Engine::builder(&schema).build().unwrap();
        let db = populated(&schema);
        let tx = parse_fterm(
            "if exists e: 2tup . e in EMP & salary(e) > 450
             then insert(tuple('rich'), LOG)
             else insert(tuple('poor'), LOG)",
            &ctx(),
            &[],
        )
        .unwrap();
        let db2 = engine.execute(&db, &tx, &Env::new()).unwrap();
        let log = schema.rel_id("LOG").unwrap();
        assert!(db2
            .relation(log)
            .unwrap()
            .contains_fields(&[Atom::str("rich")]));
    }

    #[test]
    fn model_checks_static_constraint() {
        let schema = schema();
        let db = populated(&schema);
        let mut b = ModelBuilder::new(schema);
        b.add_state(db);
        let model = b.finish();
        let ok = parse_sformula(
            "forall s: state, e': 2tup . e' in s:EMP -> salary(e') <= 1000",
            &ctx(),
        )
        .unwrap();
        assert!(model.check(&ok).unwrap());
        let bad = parse_sformula(
            "forall s: state, e': 2tup . e' in s:EMP -> salary(e') <= 450",
            &ctx(),
        )
        .unwrap();
        assert!(!model.check(&bad).unwrap());
    }

    #[test]
    fn transaction_variables_range_over_arcs() {
        let schema = schema();
        let db = populated(&schema);
        let raise = parse_fterm(
            "foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end",
            &ctx(),
            &[],
        )
        .unwrap();
        let mut b = ModelBuilder::new(schema);
        let s0 = b.add_state(db);
        let _s1 = b.apply(s0, "raise", &raise, &Env::new()).unwrap();
        let model = b.finish();
        // Salaries never decrease across any recorded transaction.
        let f = parse_sformula(
            "forall s: state, t: tx, e: 2tup .
               (s:e in s:EMP & (s;t):e in (s;t):EMP)
                 -> salary(s:e) <= salary((s;t):e)",
            &ctx(),
        )
        .unwrap();
        // NOTE: salary(s:e) uses attribute selection on an s-term.
        assert!(model.check(&f).unwrap());
    }

    #[test]
    fn program_check_rejects_unknown_relation() {
        let schema = schema();
        let tx = FTerm::insert(FTerm::TupleCons(vec![FTerm::nat(1)]), "NOPE");
        assert!(check_program(&schema, &tx, &[]).is_err());
    }

    #[test]
    fn program_check_classifies() {
        let schema = schema();
        let q = FTerm::rel("EMP");
        assert_eq!(check_program(&schema, &q, &[]).unwrap(), ProgramKind::Query);
        let t = FTerm::insert(
            FTerm::TupleCons(vec![FTerm::str("x"), FTerm::nat(1)]),
            "EMP",
        );
        assert_eq!(
            check_program(&schema, &t, &[]).unwrap(),
            ProgramKind::Transaction
        );
    }

    #[test]
    fn free_nonparameter_rejected() {
        let schema = schema();
        let e = Var::tup_f("e", 2);
        let t = FTerm::delete(FTerm::var(e), "EMP");
        assert!(check_program(&schema, &t, &[]).is_err());
        assert!(check_program(&schema, &t, &[e]).is_ok());
    }
}
