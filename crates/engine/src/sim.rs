//! Deterministic-simulation model checking for the commit/WAL pipeline.
//!
//! The commit protocol ([`crate::db`]) and the write-ahead log
//! ([`crate::wal`]) are concurrent, failure-prone state machines; fixed
//! interleavings and byte-offset fault sweeps exercise chosen paths but
//! never *search* the space. This module turns every nondeterministic
//! decision the real system makes — which session runs next, whether a
//! WAL append or fsync fails — into a numbered step chosen by an
//! injected [`Chooser`], runs N scripted sessions *and the group-commit
//! log writer* against a real [`Database`] over a [`MemStore`], and
//! checks each execution against three oracles:
//!
//! 1. **Serializability** — the final head must be `value_eq` to a
//!    sequential replay of the committed transactions, in commit-version
//!    order or (failing that) *some* permutation of them.
//! 2. **Snapshot consistency** — every snapshot a session pins must be
//!    exactly the committed state of its version, and versions are
//!    gapless.
//! 3. **Durability** — after *every* step the store's bytes are treated
//!    as two crash images (the fsynced prefix, i.e. what a power loss
//!    keeps, and the full bytes, i.e. unsynced data that happened to
//!    survive): the WAL's `recover_log` must recover some commit-order
//!    prefix covering at least every *acknowledged* commit and at most
//!    every *installed* one — the versions in between are the in-doubt
//!    set a mid-batch crash legitimately truncates anywhere —
//!    byte-identical to the state the live run installed at that
//!    version.
//!
//! ## Why single-threaded steps cover the real interleavings
//!
//! Execution runs outside the head lock against an immutable `Arc`
//! snapshot, and a commit's head-side work (validate → enqueue →
//! install) is one atomic section under the head lock. The group-commit
//! log writer runs behind its own pump lock and touches the store one
//! operation at a time (append a record, fsync a batch, append a
//! checkpoint). The observable behavior of any real multi-threaded run
//! is therefore determined by the order of per-session macro-steps
//! (snapshot pinning, execution, the atomic submit, observing the ack)
//! interleaved with per-operation writer micro-steps — exactly the
//! space a single-threaded scheduler choosing between actors
//! enumerates. The writer is actor index `sessions.len()`, enabled
//! whenever it has an operation pending; a session blocked on its
//! commit ticket is enabled only once the writer has decided its fate.
//! No real threads are needed, so every run is perfectly reproducible
//! from its choice sequence.
//!
//! ## Schedules, seeds, and replay
//!
//! A *schedule* is the flat sequence of choices the run consumed.
//! [`explore_exhaustive`] enumerates all of them by depth-first prefix
//! extension (with an optional prefix-state dedup that prunes subtrees
//! whose simulation state was already expanded); [`explore_random`]
//! draws them from a seeded xorshift generator — same seed, same
//! schedule, byte for byte. A failing run reports its seed, its full
//! schedule, and a greedily minimized schedule; replay either with
//! [`run_seeded`] / [`run_with_schedule`].

use crate::db::{
    CommitError, CommitTicket, Database, IsolationLevel, Prepared, Session, SessionOptions,
};
use crate::env::Env;
use crate::group::WriterOp;
use crate::wal::{recover_log, Durability, MemStore, WalError};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use txlog_base::obs::Metrics;
use txlog_base::{TxError, TxResult};
use txlog_logic::{FFormula, FTerm};
use txlog_relational::codec::{crc32, encode_db_state, fingerprint_db_state};
use txlog_relational::{DbState, Schema};

// ---------------------------------------------------------------------------
// The hook seam (implemented by the simulator, consulted by db.rs/wal.rs)
// ---------------------------------------------------------------------------

/// Which WAL record an append step carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecordKind {
    /// A per-commit delta record.
    Commit,
    /// A full-state checkpoint record.
    Checkpoint,
}

/// A nondeterministic decision point in the commit/WAL pipeline. The
/// pipeline announces each to the installed [`StepHook`] as it happens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepPoint {
    /// A session pinned (or re-pinned) its snapshot.
    Pin,
    /// A transaction is about to execute against a pinned snapshot.
    Execute,
    /// A commit attempt is about to take the head lock.
    LockAcquire,
    /// Constraint validation is about to run, under the head lock.
    Validate,
    /// The WAL is about to append a record.
    WalAppend(RecordKind),
    /// The WAL is about to flush the store.
    WalFsync,
    /// A validated (and, if durable, logged) commit is about to install.
    Install,
}

/// What the hook tells the pipeline to do at a step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepAction {
    /// Carry on normally.
    Proceed,
    /// Fail the store operation (honored at [`StepPoint::WalAppend`] and
    /// [`StepPoint::WalFsync`]; ignored elsewhere).
    FailIo,
}

/// Outcome notifications the pipeline sends the hook after the fact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimEvent {
    /// A record of the given kind was appended to the store.
    WalAppended(RecordKind),
    /// The store flushed successfully.
    WalSynced,
    /// The group committer acknowledged every commit up to and including
    /// this version (their batch is durable and the waiters are filled).
    Acked(u64),
    /// The WAL poisoned itself (durable contents in doubt).
    WalPoisoned,
}

/// A deliberately wrong protocol variant, injectable only through a
/// [`StepHook`] — the checker's own regression suite: each bug must be
/// caught by an oracle within a bounded number of schedules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolBug {
    /// Conflict detection effectively validates against the session's
    /// snapshot instead of the moved head: overlapping concurrent deltas
    /// are forwarded as if disjoint — the classic lost update. Caught by
    /// the serializability oracle.
    ValidateAgainstSnapshot,
    /// Acknowledge a commit at install time, before the group fsync
    /// makes its batch durable — the exact ack-undurable window the
    /// staged pipeline exists to close. The simulator models it by
    /// skipping the await-ack phase and counting the commit as acked
    /// the moment it installs. Caught by the durability oracle.
    AckUndurableCommits,
}

/// The simulation seam [`Database::set_step_hook`] installs: the commit
/// and WAL pipelines announce every decision point and honor the
/// returned action. Absent a hook both pipelines pay one `Option`
/// branch per point (see the `b11_sim` bench).
pub trait StepHook: Send + Sync {
    /// Announce a decision point; the return value tells the pipeline
    /// how to proceed.
    fn on_step(&self, point: StepPoint) -> StepAction;

    /// Report an outcome (default: ignored).
    fn on_event(&self, _event: SimEvent) {}

    /// The protocol bug this hook injects, if any (default: none).
    fn injected_bug(&self) -> Option<ProtocolBug> {
        None
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// One scripted step of a simulated session.
#[derive(Clone, Debug)]
pub enum SimStep {
    /// Commit a transaction (pin a fresh snapshot, prepare, submit).
    Tx(FTerm),
    /// Read `guard` on the transaction's snapshot, then commit `tx`
    /// only if the guard held — the read-then-write shape that
    /// distinguishes snapshot isolation (the guard's reads are *not*
    /// in the committed program's footprint, so write-skew can slip
    /// through) from serializable (the session's accumulated reads are
    /// certified at commit).
    Guarded {
        /// Truth-valued formula evaluated on the pinned snapshot.
        guard: FFormula,
        /// Committed only when the guard evaluated to true.
        tx: FTerm,
    },
    /// Evaluate a formula through the session *without* committing
    /// anything. Under read-committed the session re-pins to the head
    /// first, so two `Read`s of the same formula can disagree — the
    /// non-repeatable-read anomaly the explorer counts.
    Read(FFormula),
}

/// One scripted session: steps executed in program order.
#[derive(Clone, Debug)]
pub struct SessionScript {
    /// Diagnostic name, used in commit labels.
    pub name: String,
    /// Isolation level the session opens with.
    pub isolation: IsolationLevel,
    /// The steps, executed one after the other.
    pub steps: Vec<SimStep>,
}

/// Durability of the simulated database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimDurability {
    /// In-memory only: the durability oracle is vacuous.
    Off,
    /// WAL over a [`MemStore`]; every step's store bytes are checked as
    /// a crash image.
    Wal {
        /// Maximum commits the log writer batches per fsync (see
        /// [`Durability::Wal`]).
        sync_every: u64,
        /// Checkpoint cadence (see [`Durability::Wal`]).
        checkpoint_every: u64,
        /// Make WAL append/fsync failures *schedulable*: at each writer
        /// append/fsync micro-step with fault budget remaining, the
        /// schedule chooses proceed / fail (at most one fault per run).
        explore_faults: bool,
    },
}

/// A simulated workload: schema, initial state, scripted sessions, and
/// the knobs bounding a run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Schema of the simulated database.
    pub schema: Schema,
    /// Starting state (default: the schema's initial state).
    pub initial: Option<DbState>,
    /// The scripted sessions.
    pub sessions: Vec<SessionScript>,
    /// Commit attempts allowed per transaction (≥ 1) before it aborts as
    /// retries-exhausted — the simulator's analogue of
    /// [`crate::db::RetryPolicy::max_retries`].
    pub max_attempts: u32,
    /// Durability mode.
    pub durability: SimDurability,
    /// Protocol bug to inject (checker self-tests only).
    pub bug: Option<ProtocolBug>,
    /// Hard bound on scheduler steps per run; exceeding it is an error
    /// (finite scripts terminate well below it).
    pub max_steps: usize,
}

impl SimConfig {
    /// A workload over `schema` with no sessions yet.
    pub fn new(schema: Schema) -> SimConfig {
        SimConfig {
            schema,
            initial: None,
            sessions: Vec::new(),
            max_attempts: 3,
            durability: SimDurability::Off,
            bug: None,
            max_steps: 10_000,
        }
    }

    /// Start from an explicit state.
    pub fn initial(mut self, state: DbState) -> SimConfig {
        self.initial = Some(state);
        self
    }

    /// Add a scripted session of plain transactions at the default
    /// (snapshot) isolation level.
    pub fn session(self, name: &str, txs: Vec<FTerm>) -> SimConfig {
        self.session_at(
            name,
            IsolationLevel::Snapshot,
            txs.into_iter().map(SimStep::Tx).collect(),
        )
    }

    /// Add a scripted session of arbitrary [`SimStep`]s at an explicit
    /// isolation level.
    pub fn session_at(
        mut self,
        name: &str,
        isolation: IsolationLevel,
        steps: Vec<SimStep>,
    ) -> SimConfig {
        self.sessions.push(SessionScript {
            name: name.to_string(),
            isolation,
            steps,
        });
        self
    }

    /// Set the per-transaction attempt budget.
    pub fn max_attempts(mut self, n: u32) -> SimConfig {
        self.max_attempts = n.max(1);
        self
    }

    /// Set the durability mode.
    pub fn durability(mut self, d: SimDurability) -> SimConfig {
        self.durability = d;
        self
    }

    /// Inject a protocol bug.
    pub fn bug(mut self, bug: ProtocolBug) -> SimConfig {
        self.bug = Some(bug);
        self
    }
}

// ---------------------------------------------------------------------------
// Choosers
// ---------------------------------------------------------------------------

/// What a [`Chooser`] decides at a decision point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// Take alternative `i` (clamped to the available range).
    Take(usize),
    /// Stop the run here (prefix exploration).
    Halt,
}

/// The source of scheduling decisions for one run. Decision points with
/// a single alternative are *not* surfaced — schedules only record real
/// choices.
pub trait Chooser {
    /// Pick one of `alternatives` (≥ 2) options.
    fn choose(&mut self, alternatives: usize) -> Choice;
}

/// Replays a recorded schedule. Out-of-range choices clamp (keeps
/// minimization candidates runnable); past the end it either pads with
/// the first alternative or halts.
pub struct ReplaySchedule {
    choices: Vec<usize>,
    pos: usize,
    halt_when_exhausted: bool,
}

impl ReplaySchedule {
    /// Replay `choices`, then keep taking the first alternative.
    pub fn padded(choices: Vec<usize>) -> ReplaySchedule {
        ReplaySchedule {
            choices,
            pos: 0,
            halt_when_exhausted: false,
        }
    }

    /// Replay `choices`, then halt at the next decision point.
    pub fn prefix(choices: Vec<usize>) -> ReplaySchedule {
        ReplaySchedule {
            choices,
            pos: 0,
            halt_when_exhausted: true,
        }
    }
}

impl Chooser for ReplaySchedule {
    fn choose(&mut self, alternatives: usize) -> Choice {
        if self.pos < self.choices.len() {
            let c = self.choices[self.pos].min(alternatives - 1);
            self.pos += 1;
            Choice::Take(c)
        } else if self.halt_when_exhausted {
            Choice::Halt
        } else {
            Choice::Take(0)
        }
    }
}

/// Seeded pseudo-random chooser (splitmix64-initialized xorshift64*):
/// no global state, no clocks — the same seed always produces the same
/// schedule.
pub struct SeededChooser {
    state: u64,
}

impl SeededChooser {
    /// A chooser fully determined by `seed`.
    pub fn new(seed: u64) -> SeededChooser {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SeededChooser { state: z | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl Chooser for SeededChooser {
    fn choose(&mut self, alternatives: usize) -> Choice {
        Choice::Take((self.next() % alternatives as u64) as usize)
    }
}

// ---------------------------------------------------------------------------
// Traces and outcomes
// ---------------------------------------------------------------------------

/// A schedulable WAL fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The next commit-record append fails cleanly (no bytes written).
    Append,
    /// The next fsync fails (bytes written, durability in doubt).
    Fsync,
}

/// Why a scripted transaction aborted instead of committing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbortKind {
    /// Every attempt in the budget conflicted.
    RetriesExhausted,
    /// Execution failed.
    Execution,
    /// A commit constraint rejected the candidate.
    Constraint,
    /// The submission queue was full (backpressure).
    Overload,
    /// The log writer failed the commit's batch; the commit installed
    /// but was never acknowledged.
    Durability,
    /// The WAL was poisoned by an earlier failure.
    Poisoned,
    /// A serializable session's read-set certification failed at
    /// commit: something committed after its reads were taken
    /// intersected them.
    Serialization,
}

/// One entry of a run's event trace (deterministic: replaying a
/// schedule reproduces the trace exactly).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// The pipeline passed a decision point on behalf of `session`.
    Step {
        /// Index of the session driving the pipeline.
        session: usize,
        /// The decision point.
        point: StepPoint,
    },
    /// The pipeline reported an outcome.
    Event {
        /// Index of the session driving the pipeline.
        session: usize,
        /// The outcome.
        event: SimEvent,
    },
    /// The schedule armed a WAL fault for the log writer's next store
    /// operation.
    FaultArmed {
        /// Actor index of the log writer (`sessions.len()`).
        session: usize,
        /// The armed fault.
        fault: FaultKind,
    },
    /// A scripted transaction committed.
    Committed {
        /// Session index.
        session: usize,
        /// Transaction index within the session's script.
        tx: usize,
        /// Head version the commit produced.
        version: u64,
        /// Whether it installed via delta forwarding.
        forwarded: bool,
    },
    /// A scripted transaction aborted.
    Aborted {
        /// Session index.
        session: usize,
        /// Transaction index within the session's script.
        tx: usize,
        /// Why.
        reason: AbortKind,
    },
    /// A [`SimStep::Read`] observed a truth value through its session.
    Read {
        /// Session index.
        session: usize,
        /// Step index within the session's script.
        tx: usize,
        /// The observed truth value.
        value: bool,
    },
    /// A [`SimStep::Guarded`] step's guard was false on the pinned
    /// snapshot: the step completed without committing its transaction.
    GuardSkipped {
        /// Session index.
        session: usize,
        /// Step index within the session's script.
        tx: usize,
    },
}

/// A committed transaction, as the run observed it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommittedTx {
    /// Head version the commit produced (gapless from 1).
    pub version: u64,
    /// Session index.
    pub session: usize,
    /// Transaction index within the session's script.
    pub tx: usize,
    /// Commit label.
    pub label: String,
    /// Whether it installed via delta forwarding.
    pub forwarded: bool,
}

/// An aborted transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbortedTx {
    /// Session index.
    pub session: usize,
    /// Transaction index within the session's script.
    pub tx: usize,
    /// Why.
    pub reason: AbortKind,
}

/// A crash image: the store's bytes after one step, with the commit
/// bookkeeping needed to judge what recovery must reproduce.
#[derive(Clone, Debug)]
pub struct CrashImage {
    /// The store's full contents at this step (fsynced prefix plus any
    /// appended-but-unsynced tail).
    pub bytes: Vec<u8>,
    /// Length of the fsynced prefix of `bytes` — what a power loss at
    /// this step is guaranteed to keep.
    pub synced_len: usize,
    /// Commits acknowledged (group fsync completed) when the image was
    /// taken.
    pub acked: u64,
    /// Commits installed at the head when the image was taken; versions
    /// in `acked+1 ..= installed` are the in-doubt set this image may
    /// truncate anywhere within.
    pub installed: u64,
    /// The version the fsynced prefix recovers to (computed by the
    /// durability oracle; 0 when nothing recovers).
    pub durable_version: u64,
}

/// Where a prefix run stopped.
#[derive(Clone, Copy, Debug)]
pub struct HaltInfo {
    /// Alternatives available at the halted decision point.
    pub alternatives: usize,
    /// Hash of the simulation state at the halt — equal keys mean equal
    /// futures (and equal future oracle verdicts), so subtrees can be
    /// deduplicated.
    pub state_key: u64,
}

/// Everything one simulated run produced.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The choices consumed, in order — the schedule.
    pub schedule: Vec<usize>,
    /// `(chosen, alternatives)` per decision point.
    pub decisions: Vec<(usize, usize)>,
    /// The deterministic event trace.
    pub trace: Vec<TraceEvent>,
    /// Committed (installed) transactions in version order. A commit
    /// whose *acknowledgment* failed (its batch was poisoned after
    /// install) appears both here and in `aborted` — it is part of the
    /// serializable history even though its session saw an error.
    pub committed: Vec<CommittedTx>,
    /// Aborted transactions.
    pub aborted: Vec<AbortedTx>,
    /// The starting state.
    pub base: DbState,
    /// The final head state.
    pub final_state: DbState,
    /// `states[v]` is the installed state at version `v` (0 = base).
    pub states: Vec<DbState>,
    /// Versions installed but never acknowledged when the run ended
    /// (`acked+1 ..= installed`) — the multi-commit in-doubt set a
    /// crash may or may not have made durable.
    pub in_doubt: Vec<u64>,
    /// Commits acknowledged (durably fsynced) when the run ended.
    pub acked: u64,
    /// Largest installed-minus-acked gap observed at any step — how
    /// many commits were simultaneously past the head but awaiting the
    /// group fsync.
    pub max_unacked_installed: u64,
    /// Crash images, one per step (durable runs only).
    pub images: Vec<CrashImage>,
    /// A violation found *during* the run (snapshot-consistency or
    /// durability oracles run incrementally; serializability runs after
    /// completion via [`check_oracles`]).
    pub violation: Option<Violation>,
    /// `Some` when the chooser halted the run (prefix exploration);
    /// `None` when the workload ran to completion.
    pub halted: Option<HaltInfo>,
    /// Whether the WAL ended the run poisoned.
    pub poisoned: bool,
    /// Times a [`SimStep::Read`] re-observed a formula its session had
    /// already read (with no intervening own commit) and saw a
    /// *different* truth value — the non-repeatable-read anomaly,
    /// reachable only under [`IsolationLevel::ReadCommitted`].
    pub nonrepeatable: u64,
}

/// An oracle violation — the model checker found a bug (or was asked to
/// find an injected one).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// No sequential permutation of the committed transactions produces
    /// the final state.
    NotSerializable {
        /// How many transactions committed.
        committed: usize,
        /// What was compared.
        detail: String,
    },
    /// A session pinned a snapshot that is not the committed state of
    /// its version.
    SnapshotInconsistent {
        /// The offending session.
        session: usize,
        /// The pinned version.
        version: u64,
    },
    /// Commit versions were not gapless.
    VersionGap {
        /// The version the gapless sequence required.
        expected: u64,
        /// The version observed.
        got: u64,
    },
    /// A crash image did not recover to a commit-order prefix of the
    /// acknowledged commits.
    Durability {
        /// Index of the offending crash image.
        image: usize,
        /// What recovery produced vs. what was required.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotSerializable { committed, detail } => write!(
                f,
                "not serializable: no sequential order of the {committed} committed \
                 transactions produces the final state ({detail})"
            ),
            Violation::SnapshotInconsistent { session, version } => write!(
                f,
                "snapshot inconsistency: session {session} pinned version {version} \
                 but observed a different state"
            ),
            Violation::VersionGap { expected, got } => {
                write!(f, "version gap: expected {expected}, got {got}")
            }
            Violation::Durability { image, detail } => {
                write!(f, "durability violation at crash image {image}: {detail}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The simulator hook
// ---------------------------------------------------------------------------

struct HookShared {
    current: usize,
    fault: Option<FaultKind>,
    acked_through: u64,
    poisoned: bool,
    trace: Vec<TraceEvent>,
}

/// The [`StepHook`] the simulator installs: records the trace, and
/// converts armed fault directives into [`StepAction::FailIo`] at the
/// matching WAL step.
struct SimHook {
    bug: Option<ProtocolBug>,
    shared: Mutex<HookShared>,
}

impl SimHook {
    fn new(bug: Option<ProtocolBug>) -> SimHook {
        SimHook {
            bug,
            shared: Mutex::new(HookShared {
                current: 0,
                fault: None,
                acked_through: 0,
                poisoned: false,
                trace: Vec::new(),
            }),
        }
    }

    fn set_current(&self, session: usize) {
        self.shared.lock().expect("sim hook lock").current = session;
    }

    fn arm(&self, fault: FaultKind) {
        let mut s = self.shared.lock().expect("sim hook lock");
        s.fault = Some(fault);
        let current = s.current;
        s.trace.push(TraceEvent::FaultArmed {
            session: current,
            fault,
        });
    }

    /// Highest version the group committer has acknowledged (every
    /// version ≤ it is durably fsynced and its waiter filled).
    fn acked_through(&self) -> u64 {
        self.shared.lock().expect("sim hook lock").acked_through
    }

    fn poisoned(&self) -> bool {
        self.shared.lock().expect("sim hook lock").poisoned
    }

    fn note(&self, event: TraceEvent) {
        self.shared.lock().expect("sim hook lock").trace.push(event);
    }

    fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.shared.lock().expect("sim hook lock").trace)
    }
}

impl StepHook for SimHook {
    fn on_step(&self, point: StepPoint) -> StepAction {
        let mut s = self.shared.lock().expect("sim hook lock");
        let current = s.current;
        s.trace.push(TraceEvent::Step {
            session: current,
            point,
        });
        match point {
            StepPoint::WalAppend(RecordKind::Commit) if s.fault == Some(FaultKind::Append) => {
                s.fault = None;
                StepAction::FailIo
            }
            StepPoint::WalFsync if s.fault == Some(FaultKind::Fsync) => {
                s.fault = None;
                StepAction::FailIo
            }
            _ => StepAction::Proceed,
        }
    }

    fn on_event(&self, event: SimEvent) {
        let mut s = self.shared.lock().expect("sim hook lock");
        match event {
            SimEvent::Acked(v) => s.acked_through = s.acked_through.max(v),
            SimEvent::WalPoisoned => s.poisoned = true,
            _ => {}
        }
        let current = s.current;
        s.trace.push(TraceEvent::Event {
            session: current,
            event,
        });
    }

    fn injected_bug(&self) -> Option<ProtocolBug> {
        self.bug
    }
}

// ---------------------------------------------------------------------------
// Running one schedule
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Pin,
    Guard,
    Prepare,
    Submit,
    AwaitAck,
    Done,
}

struct Runner<'db> {
    session: Option<Session<'db>>,
    tx: usize,
    phase: Phase,
    attempts: u32,
    prepared: Option<Prepared>,
    ticket: Option<CommitTicket>,
    /// Truth values this session observed per formula (rendered), since
    /// its last own commit — the non-repeatable-read detector's memory.
    obs: BTreeMap<String, bool>,
}

impl Runner<'_> {
    fn next_tx(&mut self, script_len: usize) {
        self.tx += 1;
        self.attempts = 0;
        self.prepared = None;
        self.ticket = None;
        self.phase = if self.tx >= script_len {
            Phase::Done
        } else {
            Phase::Pin
        };
    }
}

fn build_db(cfg: &SimConfig) -> TxResult<(Database, Option<MemStore>)> {
    match cfg.durability {
        SimDurability::Off => {
            let initial = cfg
                .initial
                .clone()
                .unwrap_or_else(|| cfg.schema.initial_state());
            let db = Database::with_initial(cfg.schema.clone(), initial)?
                .with_metrics(Metrics::disabled());
            Ok((db, None))
        }
        SimDurability::Wal {
            sync_every,
            checkpoint_every,
            ..
        } => {
            let store = MemStore::new();
            let mut b = Database::builder(cfg.schema.clone())
                .metrics(Metrics::disabled())
                .manual_log_writer()
                .durability(Durability::Wal {
                    sync_every,
                    checkpoint_every,
                });
            if let Some(s) = &cfg.initial {
                b = b.initial(s.clone());
            }
            let (db, _) = b
                .open_store(Box::new(store.clone()))
                .map_err(|e| TxError::eval(format!("sim: opening the WAL failed: {e}")))?;
            Ok((db, Some(store)))
        }
    }
}

/// Run one schedule to completion (or until the chooser halts). All
/// nondeterminism flows through `chooser`; the run is a pure function
/// of the configuration and the choices.
pub fn run_schedule(cfg: &SimConfig, chooser: &mut dyn Chooser) -> TxResult<SimOutcome> {
    let hook = Arc::new(SimHook::new(cfg.bug));
    let (mut db, store) = build_db(cfg)?;
    db.set_step_hook(Arc::<SimHook>::clone(&hook));
    let db = db;
    let env = Env::new();
    let explore_faults = match cfg.durability {
        SimDurability::Wal { explore_faults, .. } => explore_faults,
        SimDurability::Off => false,
    };
    let base = (*db.snapshot()).clone();
    let mut out = SimOutcome {
        schedule: Vec::new(),
        decisions: Vec::new(),
        trace: Vec::new(),
        committed: Vec::new(),
        aborted: Vec::new(),
        base: base.clone(),
        final_state: base.clone(),
        states: vec![base],
        in_doubt: Vec::new(),
        acked: 0,
        max_unacked_installed: 0,
        images: Vec::new(),
        violation: None,
        halted: None,
        poisoned: false,
        nonrepeatable: 0,
    };
    let mut runners: Vec<Runner<'_>> = cfg
        .sessions
        .iter()
        .map(|s| Runner {
            session: None,
            tx: 0,
            phase: if s.steps.is_empty() {
                Phase::Done
            } else {
                Phase::Pin
            },
            attempts: 0,
            prepared: None,
            ticket: None,
            obs: BTreeMap::new(),
        })
        .collect();
    // the log writer is the extra actor after the sessions
    let writer = cfg.sessions.len();
    // AckUndurableCommits claims commits acked the moment they install
    let mut claimed_acked: u64 = 0;
    let mut fault_budget: u32 = u32::from(store.is_some() && explore_faults);
    let mut steps: usize = 0;
    loop {
        // a poisoned WAL fails every further submission: abort the
        // not-yet-submitted remainder rather than exploring schedules of
        // guaranteed-failing attempts. Runners awaiting an ack are left
        // alone — they consume their (failed) tickets normally.
        if hook.poisoned() && !out.poisoned {
            out.poisoned = true;
            for (i, r) in runners.iter_mut().enumerate() {
                if matches!(r.phase, Phase::Pin | Phase::Prepare | Phase::Submit) {
                    let reason = AbortKind::Poisoned;
                    out.aborted.push(AbortedTx {
                        session: i,
                        tx: r.tx,
                        reason,
                    });
                    hook.note(TraceEvent::Aborted {
                        session: i,
                        tx: r.tx,
                        reason,
                    });
                    r.phase = Phase::Done;
                }
            }
        }
        // enabled actors: the sessions (a runner awaiting its ack only
        // once the writer has decided its commit's fate), plus the log
        // writer whenever it has a store operation pending
        let mut enabled: Vec<usize> = runners
            .iter()
            .enumerate()
            .filter(|(_, r)| match r.phase {
                Phase::Done => false,
                Phase::AwaitAck => r.ticket.as_ref().is_some_and(CommitTicket::is_complete),
                _ => true,
            })
            .map(|(i, _)| i)
            .collect();
        if db.writer_next_op().is_some() {
            enabled.push(writer);
        }
        if enabled.is_empty() {
            break;
        }
        steps += 1;
        if steps > cfg.max_steps {
            return Err(TxError::eval(format!(
                "sim: run exceeded the {}-step bound",
                cfg.max_steps
            )));
        }
        // decision 1: which enabled actor advances
        let picked = match decide(chooser, &mut out, enabled.len()) {
            Some(k) => enabled[k],
            None => {
                out.halted = Some(HaltInfo {
                    alternatives: enabled.len(),
                    state_key: state_key(
                        &db,
                        &runners,
                        &out,
                        &store,
                        fault_budget,
                        None,
                        effective_acked(&hook, claimed_acked),
                    ),
                });
                break;
            }
        };
        hook.set_current(picked);
        if picked == writer {
            // decision 2: fail the writer's next store operation? (only
            // commit appends and batch fsyncs are faultable; checkpoint
            // appends fail only via `LogStore` errors, not the schedule)
            if fault_budget > 0 {
                let fault = match db.writer_next_op() {
                    Some(WriterOp::Append) => Some(FaultKind::Append),
                    Some(WriterOp::Sync) => Some(FaultKind::Fsync),
                    _ => None,
                };
                if let Some(fault) = fault {
                    match decide(chooser, &mut out, 2) {
                        Some(0) => {}
                        Some(1) => {
                            hook.arm(fault);
                            fault_budget -= 1;
                        }
                        Some(_) => unreachable!("decide clamps to the alternative count"),
                        None => {
                            out.halted = Some(HaltInfo {
                                alternatives: 2,
                                state_key: state_key(
                                    &db,
                                    &runners,
                                    &out,
                                    &store,
                                    fault_budget,
                                    Some(writer),
                                    effective_acked(&hook, claimed_acked),
                                ),
                            });
                            break;
                        }
                    }
                }
            }
            db.writer_micro_step();
        } else {
            advance(
                cfg,
                &db,
                &env,
                &mut runners,
                picked,
                &mut out,
                &hook,
                &mut claimed_acked,
            )?;
        }
        let installed = db.head_version();
        let acked = effective_acked(&hook, claimed_acked);
        out.max_unacked_installed = out
            .max_unacked_installed
            .max(installed.saturating_sub(acked));
        if let Some(st) = &store {
            record_image(cfg, &mut out, st, acked, installed);
        }
        if out.violation.is_some() {
            break;
        }
    }
    out.final_state = (*db.snapshot()).clone();
    out.poisoned = out.poisoned || hook.poisoned();
    out.acked = effective_acked(&hook, claimed_acked);
    out.in_doubt = (out.acked + 1..=db.head_version()).collect();
    out.trace = hook.take_trace();
    Ok(out)
}

/// The highest version the run claims acknowledged: what the group
/// committer actually acked or — under
/// [`ProtocolBug::AckUndurableCommits`] — what the buggy protocol
/// claimed at install time.
fn effective_acked(hook: &SimHook, claimed: u64) -> u64 {
    hook.acked_through().max(claimed)
}

/// Consult the chooser at a decision point with `n` alternatives,
/// recording real (n ≥ 2) decisions. `None` means halt.
fn decide(chooser: &mut dyn Chooser, out: &mut SimOutcome, n: usize) -> Option<usize> {
    if n <= 1 {
        return Some(0);
    }
    match chooser.choose(n) {
        Choice::Take(c) => {
            let c = c.min(n - 1);
            out.decisions.push((c, n));
            out.schedule.push(c);
            Some(c)
        }
        Choice::Halt => None,
    }
}

/// Advance one session by one macro-step.
#[allow(clippy::too_many_arguments)]
fn advance<'db>(
    cfg: &SimConfig,
    db: &'db Database,
    env: &Env,
    runners: &mut [Runner<'db>],
    i: usize,
    out: &mut SimOutcome,
    hook: &SimHook,
    claimed_acked: &mut u64,
) -> TxResult<()> {
    let script = &cfg.sessions[i];
    let r = &mut runners[i];
    // a standalone Read is one macro-step: it commits nothing, so the
    // pin/prepare/submit machinery below never applies to it. The
    // session is *not* refreshed — only read-committed sessions re-pin
    // (inside `Session::ask`), which is exactly what makes the
    // non-repeatable-read anomaly level-dependent.
    if let SimStep::Read(p) = &script.steps[r.tx] {
        if r.session.is_none() {
            r.session = Some(db.session_with(SessionOptions::new().isolation(script.isolation)));
        }
        let sess = r.session.as_mut().expect("session just opened");
        match sess.ask(p, env) {
            Ok(value) => {
                let key = format!("{p:?}");
                if let Some(prev) = r.obs.insert(key, value) {
                    if prev != value {
                        out.nonrepeatable += 1;
                    }
                }
                hook.note(TraceEvent::Read {
                    session: i,
                    tx: r.tx,
                    value,
                });
                r.next_tx(script.steps.len());
            }
            Err(_) => {
                abort(r, i, AbortKind::Execution, script.steps.len(), out, hook);
            }
        }
        return Ok(());
    }
    match r.phase {
        Phase::Pin => {
            match r.session.as_mut() {
                Some(s) => s.refresh(),
                None => {
                    r.session =
                        Some(db.session_with(SessionOptions::new().isolation(script.isolation)));
                }
            }
            let sess = r.session.as_ref().expect("session just pinned");
            let v = sess.version();
            // snapshot-consistency oracle: the pinned snapshot must be
            // exactly the committed state of its version
            if (v as usize) >= out.states.len() {
                out.violation.get_or_insert(Violation::VersionGap {
                    expected: out.states.len() as u64,
                    got: v,
                });
            } else if !sess.state().content_eq(&out.states[v as usize]) {
                out.violation
                    .get_or_insert(Violation::SnapshotInconsistent {
                        session: i,
                        version: v,
                    });
            }
            r.phase = match &script.steps[r.tx] {
                SimStep::Guarded { .. } => Phase::Guard,
                _ => Phase::Prepare,
            };
        }
        Phase::Guard => {
            let SimStep::Guarded { guard, .. } = &script.steps[r.tx] else {
                unreachable!("only guarded steps enter the guard phase")
            };
            let sess = r.session.as_mut().expect("pin precedes guard");
            match sess.ask(guard, env) {
                Ok(true) => r.phase = Phase::Prepare,
                Ok(false) => {
                    hook.note(TraceEvent::GuardSkipped {
                        session: i,
                        tx: r.tx,
                    });
                    r.next_tx(script.steps.len());
                }
                Err(_) => {
                    abort(r, i, AbortKind::Execution, script.steps.len(), out, hook);
                }
            }
        }
        Phase::Prepare => {
            let tx = match &script.steps[r.tx] {
                SimStep::Tx(t) => t,
                SimStep::Guarded { tx, .. } => tx,
                SimStep::Read(_) => unreachable!("reads are handled above"),
            };
            let sess = r.session.as_mut().expect("pin precedes prepare");
            match sess.prepare(tx, env) {
                Ok(p) => {
                    r.prepared = Some(p);
                    r.phase = Phase::Submit;
                }
                Err(_) => {
                    abort(r, i, AbortKind::Execution, script.steps.len(), out, hook);
                }
            }
        }
        Phase::Submit => {
            r.attempts += 1;
            let label = format!("{}-t{}", script.name, r.tx);
            let prepared = r.prepared.take().expect("prepare precedes submit");
            let sess = r.session.as_mut().expect("pin precedes submit");
            match sess.submit_prepared(&label, &prepared) {
                Ok((c, ticket)) => {
                    // installed: the commit is part of the history from
                    // here on, whatever its acknowledgment brings
                    let state = (*db.snapshot()).clone();
                    if c.version != out.states.len() as u64 {
                        out.violation.get_or_insert(Violation::VersionGap {
                            expected: out.states.len() as u64,
                            got: c.version,
                        });
                    }
                    out.states.push(state);
                    hook.note(TraceEvent::Committed {
                        session: i,
                        tx: r.tx,
                        version: c.version,
                        forwarded: c.forwarded,
                    });
                    out.committed.push(CommittedTx {
                        version: c.version,
                        session: i,
                        tx: r.tx,
                        label,
                        forwarded: c.forwarded,
                    });
                    // an own commit resets the non-repeatable-read
                    // memory: later reads legitimately see a new state
                    r.obs.clear();
                    if hook.injected_bug() == Some(ProtocolBug::AckUndurableCommits) {
                        // buggy protocol: acknowledge at install, before
                        // the group fsync — skip the await-ack phase
                        *claimed_acked = c.version;
                        r.next_tx(script.steps.len());
                    } else if ticket.is_complete() {
                        // already acknowledged (no WAL configured, so
                        // nothing is pending): consume the result here
                        // instead of spending a schedule step on an
                        // await-ack phase that could never interleave
                        // with anything
                        match ticket.try_result() {
                            Some(Ok(())) => r.next_tx(script.steps.len()),
                            Some(Err(CommitError::Durability(WalError::Poisoned { .. }))) => {
                                abort(r, i, AbortKind::Poisoned, script.steps.len(), out, hook);
                            }
                            Some(Err(_)) => {
                                abort(r, i, AbortKind::Durability, script.steps.len(), out, hook);
                            }
                            None => unreachable!("complete tickets carry a result"),
                        }
                    } else {
                        r.ticket = Some(ticket);
                        r.phase = Phase::AwaitAck;
                    }
                }
                Err(CommitError::Conflict { .. }) => {
                    if r.attempts >= cfg.max_attempts {
                        abort(
                            r,
                            i,
                            AbortKind::RetriesExhausted,
                            script.steps.len(),
                            out,
                            hook,
                        );
                    } else {
                        r.phase = Phase::Pin;
                    }
                }
                Err(CommitError::ConstraintViolation { .. }) => {
                    abort(r, i, AbortKind::Constraint, script.steps.len(), out, hook);
                }
                Err(CommitError::Execution(_)) => {
                    abort(r, i, AbortKind::Execution, script.steps.len(), out, hook);
                }
                Err(CommitError::Overload { .. }) => {
                    abort(r, i, AbortKind::Overload, script.steps.len(), out, hook);
                }
                Err(CommitError::Durability(WalError::Poisoned { .. })) => {
                    abort(r, i, AbortKind::Poisoned, script.steps.len(), out, hook);
                }
                Err(CommitError::Durability(_)) => {
                    // submission was rejected before a version was
                    // consumed: nothing installed, nothing in doubt
                    abort(r, i, AbortKind::Durability, script.steps.len(), out, hook);
                }
                Err(CommitError::SerializationFailure { .. }) => {
                    // stale reads cannot be re-taken by re-executing:
                    // the whole transaction aborts (no internal retry)
                    abort(
                        r,
                        i,
                        AbortKind::Serialization,
                        script.steps.len(),
                        out,
                        hook,
                    );
                }
                Err(CommitError::RetriesExhausted { .. }) => {
                    // submit_prepared never retries internally
                    unreachable!("single attempts do not exhaust retries")
                }
            }
        }
        Phase::AwaitAck => {
            let ticket = r.ticket.take().expect("submit precedes await-ack");
            match ticket.try_result() {
                Some(Ok(())) => r.next_tx(script.steps.len()),
                Some(Err(CommitError::Durability(WalError::Poisoned { .. }))) => {
                    // the commit installed but its batch failed: the
                    // session sees an error (recorded in `aborted`)
                    // while the commit itself stays in `committed` —
                    // durable-or-not is exactly what the in-doubt set
                    // and the crash images track
                    abort(r, i, AbortKind::Poisoned, script.steps.len(), out, hook);
                }
                Some(Err(_)) => {
                    abort(r, i, AbortKind::Durability, script.steps.len(), out, hook);
                }
                None => unreachable!("await-ack runners are scheduled only once complete"),
            }
        }
        Phase::Done => unreachable!("done sessions are never scheduled"),
    }
    Ok(())
}

fn abort(
    r: &mut Runner<'_>,
    session: usize,
    reason: AbortKind,
    script_len: usize,
    out: &mut SimOutcome,
    hook: &SimHook,
) {
    out.aborted.push(AbortedTx {
        session,
        tx: r.tx,
        reason,
    });
    hook.note(TraceEvent::Aborted {
        session,
        tx: r.tx,
        reason,
    });
    r.next_tx(script_len);
}

/// Capture a crash image and run the durability oracle over it,
/// recording the first violation in `out`. Two byte images are judged:
/// the fsynced prefix (what a power loss keeps) and the full contents
/// (unsynced appends that happened to survive); both must recover to a
/// version `v` with `acked ≤ v ≤ installed`, byte-identical to the
/// state the run installed at `v`.
fn record_image(
    cfg: &SimConfig,
    out: &mut SimOutcome,
    store: &MemStore,
    acked: u64,
    installed: u64,
) {
    let image = out.images.len();
    let bytes = store.contents();
    let synced_len = store.durable_len();
    let mut durable_version = 0;
    if out.violation.is_none() {
        let detail = check_crash_bytes(
            cfg,
            out,
            &bytes[..synced_len],
            acked,
            installed,
            Some(&mut durable_version),
        )
        .or_else(|| check_crash_bytes(cfg, out, &bytes, acked, installed, None));
        if let Some(detail) = detail {
            out.violation = Some(Violation::Durability { image, detail });
        }
    }
    out.images.push(CrashImage {
        bytes,
        synced_len,
        acked,
        installed,
        durable_version,
    });
}

/// Judge one candidate crash image; `None` means recovery lands where
/// it must. `durable_version` (when given) receives the recovered
/// version for the image's bookkeeping.
fn check_crash_bytes(
    cfg: &SimConfig,
    out: &SimOutcome,
    bytes: &[u8],
    acked: u64,
    installed: u64,
    durable_version: Option<&mut u64>,
) -> Option<String> {
    let mut store = MemStore::from_bytes(bytes.to_vec());
    match recover_log(&mut store, &cfg.schema, &Metrics::disabled()) {
        Err(e) => Some(format!("recovery failed: {e}")),
        Ok(None) => {
            if let Some(dv) = durable_version {
                *dv = 0;
            }
            (acked > 0).then(|| format!("recovered nothing but {acked} commits acked"))
        }
        Ok(Some(r)) => {
            if let Some(dv) = durable_version {
                *dv = r.version;
            }
            if r.version < acked {
                Some(format!(
                    "recovered version {} but {acked} commits were acked (acks follow the fsync)",
                    r.version
                ))
            } else if r.version > installed {
                Some(format!(
                    "recovered version {} but only {installed} commits were installed",
                    r.version
                ))
            } else if encode_db_state(&r.state) != encode_db_state(&out.states[r.version as usize])
            {
                Some(format!(
                    "recovered state at version {} differs from the installed one",
                    r.version
                ))
            } else {
                None
            }
        }
    }
}

/// Hash the complete simulation state: two prefixes with equal keys have
/// identical futures *and* identical future oracle verdicts (past
/// images were already checked incrementally), so one subtree suffices.
#[allow(clippy::too_many_arguments)]
fn state_key(
    db: &Database,
    runners: &[Runner<'_>],
    out: &SimOutcome,
    store: &Option<MemStore>,
    fault_budget: u32,
    pending_fault_for: Option<usize>,
    acked: u64,
) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for r in runners {
        r.tx.hash(&mut h);
        (r.phase as u8).hash(&mut h);
        r.attempts.hash(&mut h);
        match &r.session {
            Some(s) => s.version().hash(&mut h),
            None => u64::MAX.hash(&mut h),
        }
        r.prepared.is_some().hash(&mut h);
        r.ticket.is_some().hash(&mut h);
        // the observation memory feeds the non-repeatable-read count:
        // two states that differ only here still have different futures
        // for the explorer's anomaly stats
        r.obs.len().hash(&mut h);
        for (k, v) in &r.obs {
            k.hash(&mut h);
            v.hash(&mut h);
        }
    }
    out.nonrepeatable.hash(&mut h);
    let head = db.snapshot();
    db.head_version().hash(&mut h);
    fingerprint_db_state(&head).hash(&mut h);
    head.next_tuple_id().hash(&mut h);
    if let Some(st) = store {
        crc32(&st.contents()).hash(&mut h);
        st.durable_len().hash(&mut h);
    }
    if let Some(c) = db.group_committer() {
        let mut fp = String::new();
        c.fingerprint(&mut fp);
        fp.hash(&mut h);
    }
    acked.hash(&mut h);
    fault_budget.hash(&mut h);
    out.poisoned.hash(&mut h);
    for c in &out.committed {
        (c.version, c.session, c.tx, c.forwarded).hash(&mut h);
    }
    pending_fault_for.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Largest committed-set size for which the serializability oracle
/// searches all permutations; beyond it only version order is checked.
const PERMUTATION_CAP: usize = 6;

/// Judge a completed run against all three oracles. Snapshot
/// consistency and durability are checked incrementally during the run
/// (and surface through `out.violation`); this adds the serializability
/// check over the committed set. `None` means the run is clean.
pub fn check_oracles(cfg: &SimConfig, out: &SimOutcome) -> Option<Violation> {
    if let Some(v) = &out.violation {
        return Some(v.clone());
    }
    check_serializability(cfg, out)
}

fn check_serializability(cfg: &SimConfig, out: &SimOutcome) -> Option<Violation> {
    let n = out.committed.len();
    // version order is the pipeline's claimed serialization — try it first
    let version_order: Vec<usize> = (0..n).collect();
    if replay_matches(cfg, out, &version_order) {
        return None;
    }
    if n <= PERMUTATION_CAP {
        let mut order: Vec<usize> = (0..n).collect();
        if permutations_match(cfg, out, &mut order, 0) {
            return None;
        }
    }
    Some(Violation::NotSerializable {
        committed: n,
        detail: format!(
            "final head is value_eq to no replay (searched {})",
            if n <= PERMUTATION_CAP {
                "all permutations"
            } else {
                "version order only"
            }
        ),
    })
}

/// Heap-style recursive permutation search over `order[at..]`.
fn permutations_match(
    cfg: &SimConfig,
    out: &SimOutcome,
    order: &mut Vec<usize>,
    at: usize,
) -> bool {
    if at == order.len() {
        return replay_matches(cfg, out, order);
    }
    for i in at..order.len() {
        order.swap(at, i);
        if permutations_match(cfg, out, order, at + 1) {
            order.swap(at, i);
            return true;
        }
        order.swap(at, i);
    }
    false
}

/// Replay the committed transactions in `order` through a fresh
/// single-writer database from the base state; true when the replay
/// runs to completion and lands `value_eq` to the final head.
///
/// Guards are honored: a committed [`SimStep::Guarded`] transaction
/// only ran because its guard held on the session's snapshot, so a
/// serial order in which the guard is *false* at that position cannot
/// explain the commit — the order fails. This is what makes write-skew
/// visible to the oracle: two guarded transactions that each falsify
/// the other's guard admit no serial order at all.
fn replay_matches(cfg: &SimConfig, out: &SimOutcome, order: &[usize]) -> bool {
    let Ok(db) = Database::with_initial(cfg.schema.clone(), out.base.clone()) else {
        return false;
    };
    let db = db.with_metrics(Metrics::disabled());
    let mut sess = db.session();
    let env = Env::new();
    for &idx in order {
        let c = &out.committed[idx];
        let tx = match &cfg.sessions[c.session].steps[c.tx] {
            SimStep::Tx(t) => t,
            SimStep::Guarded { guard, tx } => {
                if !matches!(sess.ask(guard, &env), Ok(true)) {
                    return false;
                }
                tx
            }
            SimStep::Read(_) => unreachable!("reads never commit"),
        };
        if sess.commit(&c.label, tx, &env).is_err() {
            return false;
        }
    }
    db.snapshot().value_eq(&out.final_state)
}

// ---------------------------------------------------------------------------
// Explorers
// ---------------------------------------------------------------------------

/// Bounds for an exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Stop after this many completed schedules.
    pub max_schedules: u64,
    /// Prune prefixes whose simulation state was already expanded
    /// (exhaustive mode only). Coverage is preserved — equal state keys
    /// mean equal futures — but the completed-schedule count then
    /// undercounts the raw interleaving space.
    pub dedup: bool,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            max_schedules: 1_000_000,
            dedup: false,
        }
    }
}

/// Aggregates over all explored schedules.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Commits that installed by delta forwarding.
    pub forwarded_commits: u64,
    /// Transactions aborted with retries exhausted.
    pub aborted_retries: u64,
    /// Runs that ended with a poisoned WAL.
    pub poisoned_runs: u64,
    /// Runs that ended with at least one installed-but-unacknowledged
    /// commit.
    pub in_doubt_runs: u64,
    /// Largest installed-minus-acked window observed at any step of any
    /// run — evidence the exploration covered multi-commit batches.
    pub max_unacked_installed: u64,
    /// Runs in which some session re-read a formula and saw a different
    /// truth value with no intervening own commit (non-repeatable
    /// read). Must stay 0 unless a session runs read-committed.
    pub nonrepeatable_runs: u64,
    /// Transactions aborted by serializable read-set certification.
    pub serialization_aborts: u64,
}

/// What an exploration covered and found.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Completed schedules (leaves of the decision tree).
    pub schedules: u64,
    /// Decision-tree nodes executed (exhaustive mode; equals
    /// `schedules` in random mode).
    pub nodes: u64,
    /// Subtrees pruned by state dedup.
    pub pruned: u64,
    /// Longest schedule observed.
    pub max_depth: usize,
    /// True when `max_schedules` stopped the exploration early.
    pub truncated: bool,
    /// Aggregates over the explored schedules.
    pub stats: ExploreStats,
    /// The first oracle violation found, if any (exploration stops on
    /// it).
    pub failure: Option<FailureCase>,
}

/// A failing schedule, packaged for reproduction.
#[derive(Clone, Debug)]
pub struct FailureCase {
    /// The seed that produced it (random mode).
    pub seed: Option<u64>,
    /// The full schedule as run.
    pub schedule: Vec<usize>,
    /// A greedily minimized schedule that still violates an oracle.
    pub minimized: Vec<usize>,
    /// The violation, rendered.
    pub violation: String,
}

impl fmt::Display for FailureCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seed {
            Some(seed) => write!(
                f,
                "seed {seed} -> schedule {:?} (minimized {:?}): {}",
                self.schedule, self.minimized, self.violation
            ),
            None => write!(
                f,
                "schedule {:?} (minimized {:?}): {}",
                self.schedule, self.minimized, self.violation
            ),
        }
    }
}

fn tally(report: &mut ExploreReport, out: &SimOutcome) {
    report.max_depth = report.max_depth.max(out.schedule.len());
    report.stats.forwarded_commits += out.committed.iter().filter(|c| c.forwarded).count() as u64;
    report.stats.aborted_retries += out
        .aborted
        .iter()
        .filter(|a| a.reason == AbortKind::RetriesExhausted)
        .count() as u64;
    report.stats.poisoned_runs += u64::from(out.poisoned);
    report.stats.in_doubt_runs += u64::from(!out.in_doubt.is_empty());
    report.stats.nonrepeatable_runs += u64::from(out.nonrepeatable > 0);
    report.stats.serialization_aborts += out
        .aborted
        .iter()
        .filter(|a| a.reason == AbortKind::Serialization)
        .count() as u64;
    report.stats.max_unacked_installed = report
        .stats
        .max_unacked_installed
        .max(out.max_unacked_installed);
}

fn fail(cfg: &SimConfig, report: &mut ExploreReport, out: &SimOutcome, seed: Option<u64>) {
    let violation = check_oracles(cfg, out).expect("caller found a violation");
    report.failure = Some(FailureCase {
        seed,
        schedule: out.schedule.clone(),
        minimized: minimize(cfg, &out.schedule),
        violation: violation.to_string(),
    });
}

/// Exhaustively enumerate every schedule of `cfg` by depth-first prefix
/// extension, stopping at the first oracle violation. Terminates:
/// scripts are finite and every attempt consumes budget.
pub fn explore_exhaustive(cfg: &SimConfig, opts: &ExploreOptions) -> TxResult<ExploreReport> {
    let mut report = ExploreReport {
        schedules: 0,
        nodes: 0,
        pruned: 0,
        max_depth: 0,
        truncated: false,
        stats: ExploreStats::default(),
        failure: None,
    };
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if report.schedules >= opts.max_schedules {
            report.truncated = true;
            break;
        }
        report.nodes += 1;
        let mut chooser = ReplaySchedule::prefix(prefix.clone());
        let out = run_schedule(cfg, &mut chooser)?;
        match &out.halted {
            Some(h) => {
                if out.violation.is_some() {
                    // an incremental oracle failed inside the prefix
                    fail(cfg, &mut report, &out, None);
                    break;
                }
                if opts.dedup && !seen.insert(h.state_key) {
                    report.pruned += 1;
                    continue;
                }
                for alt in (0..h.alternatives).rev() {
                    let mut next = prefix.clone();
                    next.push(alt);
                    stack.push(next);
                }
            }
            None => {
                report.schedules += 1;
                tally(&mut report, &out);
                if check_oracles(cfg, &out).is_some() {
                    fail(cfg, &mut report, &out, None);
                    break;
                }
            }
        }
    }
    Ok(report)
}

/// Run `count` seeded random schedules (seeds `base_seed..`), stopping
/// at the first oracle violation. A reported failing seed replays the
/// identical schedule through [`run_seeded`].
pub fn explore_random(cfg: &SimConfig, base_seed: u64, count: u64) -> TxResult<ExploreReport> {
    let mut report = ExploreReport {
        schedules: 0,
        nodes: 0,
        pruned: 0,
        max_depth: 0,
        truncated: false,
        stats: ExploreStats::default(),
        failure: None,
    };
    for i in 0..count {
        let seed = base_seed.wrapping_add(i);
        let out = run_seeded(cfg, seed)?;
        report.schedules += 1;
        report.nodes += 1;
        tally(&mut report, &out);
        if check_oracles(cfg, &out).is_some() {
            fail(cfg, &mut report, &out, Some(seed));
            break;
        }
    }
    Ok(report)
}

/// Run the schedule the seeded chooser for `seed` produces — the replay
/// side of [`explore_random`].
pub fn run_seeded(cfg: &SimConfig, seed: u64) -> TxResult<SimOutcome> {
    let mut chooser = SeededChooser::new(seed);
    run_schedule(cfg, &mut chooser)
}

/// Run an explicit schedule, padding with first alternatives past its
/// end — the replay side of a reported (possibly minimized) schedule.
pub fn run_with_schedule(cfg: &SimConfig, schedule: &[usize]) -> TxResult<SimOutcome> {
    let mut chooser = ReplaySchedule::padded(schedule.to_vec());
    run_schedule(cfg, &mut chooser)
}

/// Budget of re-runs a minimization may spend.
const MINIMIZE_RUNS: usize = 2_000;

/// Greedily shrink a failing schedule: repeatedly drop trailing choices
/// and lower individual choices, keeping any candidate that still
/// violates an oracle.
fn minimize(cfg: &SimConfig, schedule: &[usize]) -> Vec<usize> {
    let mut budget = MINIMIZE_RUNS;
    let mut still_fails = |s: &[usize]| -> bool {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        match run_with_schedule(cfg, s) {
            Ok(out) => check_oracles(cfg, &out).is_some(),
            Err(_) => false,
        }
    };
    let mut best = schedule.to_vec();
    loop {
        let mut improved = false;
        while !best.is_empty() && still_fails(&best[..best.len() - 1]) {
            best.pop();
            improved = true;
        }
        'positions: for i in 0..best.len() {
            for lower in 0..best[i] {
                let mut candidate = best.clone();
                candidate[i] = lower;
                if still_fails(&candidate) {
                    best = candidate;
                    improved = true;
                    break 'positions;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use txlog_logic::{parse_fterm, ParseCtx};

    fn schema() -> Schema {
        Schema::new()
            .relation("EMP", &["e-name", "salary"])
            .unwrap()
            .relation("LOG", &["l-entry"])
            .unwrap()
    }

    fn tx(src: &str) -> FTerm {
        parse_fterm(src, &ParseCtx::with_relations(&["EMP", "LOG"]), &[]).unwrap()
    }

    fn seeded_base(schema: &Schema) -> DbState {
        let (s, _) = schema
            .initial_state()
            .insert_fields(
                schema.rel_id("EMP").unwrap(),
                &[txlog_base::Atom::str("ann"), txlog_base::Atom::nat(500)],
            )
            .unwrap();
        s
    }

    fn conflicting_cfg() -> SimConfig {
        let s = schema();
        let base = seeded_base(&s);
        SimConfig::new(s)
            .initial(base)
            .session(
                "a",
                vec![tx(
                    "foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 10) end",
                )],
            )
            .session(
                "b",
                vec![tx(
                    "foreach e: 2tup | e in EMP do modify(e, salary, salary(e) + 7) end",
                )],
            )
    }

    #[test]
    fn single_session_schedule_commits_and_passes_oracles() {
        let cfg = SimConfig::new(schema()).session("a", vec![tx("insert(tuple('x', 1), EMP)")]);
        let out = run_with_schedule(&cfg, &[]).unwrap();
        assert_eq!(out.committed.len(), 1);
        assert!(out.halted.is_none());
        assert_eq!(check_oracles(&cfg, &out), None);
    }

    #[test]
    fn conflicting_pair_serializes_under_every_schedule() {
        let report = explore_exhaustive(&conflicting_cfg(), &ExploreOptions::default()).unwrap();
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.schedules >= 2, "at least both orders explored");
    }

    #[test]
    fn seeded_runs_replay_identically() {
        let cfg = conflicting_cfg();
        let a = run_seeded(&cfg, 42).unwrap();
        let b = run_seeded(&cfg, 42).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.committed, b.committed);
        assert_eq!(
            encode_db_state(&a.final_state),
            encode_db_state(&b.final_state)
        );
    }

    #[test]
    fn injected_lost_update_is_caught() {
        let cfg = conflicting_cfg().bug(ProtocolBug::ValidateAgainstSnapshot);
        let report = explore_exhaustive(&cfg, &ExploreOptions::default()).unwrap();
        let failure = report.failure.expect("the lost update must be caught");
        assert!(failure.violation.contains("not serializable"), "{failure}");
        // the reported schedule reproduces the violation
        let out = run_with_schedule(&cfg, &failure.schedule).unwrap();
        assert!(check_oracles(&cfg, &out).is_some());
        let out = run_with_schedule(&cfg, &failure.minimized).unwrap();
        assert!(check_oracles(&cfg, &out).is_some());
    }

    #[test]
    fn durable_exploration_with_faults_stays_clean() {
        let cfg = conflicting_cfg().durability(SimDurability::Wal {
            sync_every: 1,
            checkpoint_every: 1,
            explore_faults: true,
        });
        // the writer actor deepens the schedule tree; dedup keeps the
        // exhaustive sweep tractable without losing coverage
        let opts = ExploreOptions {
            dedup: true,
            ..ExploreOptions::default()
        };
        let report = explore_exhaustive(&cfg, &opts).unwrap();
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(
            report.stats.poisoned_runs > 0,
            "faults must have poisoned some runs"
        );
        assert!(
            report.stats.in_doubt_runs > 0,
            "some runs must have left an installed-but-unacked commit"
        );
    }

    #[test]
    fn group_commit_batches_multiple_unacked_commits() {
        // with a batch of up to 2 and the writer schedulable, some
        // interleaving must hold two installed commits past the head
        // before the single group fsync acks them together
        let cfg = conflicting_cfg().durability(SimDurability::Wal {
            sync_every: 2,
            checkpoint_every: 0,
            explore_faults: false,
        });
        let opts = ExploreOptions {
            dedup: true,
            ..ExploreOptions::default()
        };
        let report = explore_exhaustive(&cfg, &opts).unwrap();
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(
            report.stats.max_unacked_installed >= 2,
            "some schedule must batch two unacked commits, saw {}",
            report.stats.max_unacked_installed
        );
    }

    #[test]
    fn acking_undurable_commits_is_caught() {
        let cfg = conflicting_cfg()
            .durability(SimDurability::Wal {
                sync_every: 1,
                checkpoint_every: 0,
                explore_faults: true,
            })
            .bug(ProtocolBug::AckUndurableCommits);
        let report = explore_exhaustive(&cfg, &ExploreOptions::default()).unwrap();
        let failure = report.failure.expect("the undurable ack must be caught");
        assert!(failure.violation.contains("durability"), "{failure}");
    }

    #[test]
    fn dedup_prunes_but_finds_the_same_bug() {
        let cfg = conflicting_cfg().bug(ProtocolBug::ValidateAgainstSnapshot);
        let opts = ExploreOptions {
            dedup: true,
            ..ExploreOptions::default()
        };
        let report = explore_exhaustive(&cfg, &opts).unwrap();
        assert!(report.failure.is_some());
    }
}
