//! The fluent evaluator: executable semantics of f-expressions.
//!
//! This module realizes the situational functions operationally:
//! evaluating an object-sorted f-term at a state is `w : e`, a fluent
//! formula is `w :: p`, and executing a state-sorted f-term (a
//! transaction) is `w ; e`. The linkage axioms of Section 2 hold by
//! construction:
//!
//! * `composition-linkage` — [`Engine::execute`] of `a ;; b` threads the
//!   intermediate state;
//! * `condition-linkage` — `if p then a else b` evaluates `p` at the
//!   *current* state and runs one branch;
//! * `iteration-linkage` — `foreach x | p do s` enumerates `{x | w::p}`
//!   **at the initial state** `w` and composes `s[x₁/x] ;; … ;; s[xₙ/x]`,
//!   with each composition step seeing the state its predecessors built.
//!   The result is undefined when the satisfying set cannot be enumerated
//!   or when the result depends on the enumeration order; enabling
//!   [`EvalOptions::check_order_independence`] detects the latter by
//!   executing the reversed enumeration and comparing final states (a
//!   sound rejector: a mismatch proves order dependence).
//!
//! Partiality follows the paper: expressions that fail to denote (a dead
//! tuple, a missing relation) evaluate to [`TxError::Undefined`]; atomic
//! formulas over non-denoting terms are **false** (negative free logic),
//! so `¬(deleted-tuple ∈ R)` comes out true, which is exactly what the
//! `delete-action` axiom demands.

use crate::env::{Binding, Env};
use crate::value::{SetVal, Value};
use std::collections::HashMap;
use txlog_base::obs::{Counter, Hist, Metrics};
use txlog_base::{Atom, Symbol, TxError, TxResult};
use txlog_logic::plan::{find_membership_rel, GuardMode};
use txlog_logic::{CmpOp, FFormula, FTerm, ObjSort, Op, Signature, Sort, Var, VarClass};
use txlog_relational::{DbState, Delta, Relation, Schema, TupleVal};

/// How quantifier, set-former, and `foreach` domains are enumerated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlanMode {
    /// Compile conditions to indexed query plans (membership scans,
    /// hash-index probes, residual filters). The default.
    #[default]
    Indexed,
    /// Naive nested-loop enumeration over the bounded domains — the
    /// reference semantics, kept as the differential-testing oracle.
    Naive,
}

/// Evaluation options.
#[derive(Clone, Copy)]
pub struct EvalOptions {
    /// Execute `foreach` bodies under both the canonical and the reversed
    /// enumeration and fail with [`TxError::OrderDependent`] if the final
    /// states differ. Doubles the cost of iterations.
    pub check_order_independence: bool,
    /// Upper bound on the number of iterations a single `foreach` may
    /// perform, and on the number of candidate bindings a single
    /// quantifier or set-former enumeration may visit — a guard against
    /// accidentally unbounded domains.
    pub max_iterations: usize,
    /// Domain-enumeration strategy (indexed plans vs. the naive oracle).
    pub planner: PlanMode,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            check_order_independence: false,
            max_iterations: 1_000_000,
            planner: PlanMode::Indexed,
        }
    }
}

/// Fluent constructor for [`Engine`] — the one way to configure one.
///
/// Obtained from [`Engine::builder`]; finish with
/// [`build`](EngineBuilder::build), which validates the schema:
///
/// ```ignore
/// let engine = Engine::builder(&schema)
///     .options(EvalOptions { planner: PlanMode::Indexed, ..Default::default() })
///     .metrics(metrics.clone())
///     .build()?;
/// ```
#[must_use = "an EngineBuilder does nothing until .build()"]
pub struct EngineBuilder<'a> {
    schema: &'a Schema,
    opts: EvalOptions,
    metrics: Option<Metrics>,
}

impl<'a> EngineBuilder<'a> {
    /// Replace the evaluation options (default: [`EvalOptions::default`]).
    pub fn options(mut self, opts: EvalOptions) -> EngineBuilder<'a> {
        self.opts = opts;
        self
    }

    /// Thread an explicit observability sink. Engines built without one
    /// inherit the process-global recorder ([`Metrics::current`]), which
    /// is disabled unless a binary installs one.
    pub fn metrics(mut self, metrics: Metrics) -> EngineBuilder<'a> {
        self.metrics = Some(metrics);
        self
    }

    /// Validate the schema and build the engine. Errors if the schema
    /// violates the global attribute-name uniqueness the paper's `l(t)`
    /// sugar presumes.
    pub fn build(self) -> TxResult<Engine<'a>> {
        let mut attrs = HashMap::new();
        let mut owners: HashMap<Symbol, Symbol> = HashMap::new();
        let mut sig = Signature::new();
        for d in self.schema.decls() {
            for (i, &a) in d.attrs.iter().enumerate() {
                if let Some(prev) = owners.insert(a, d.name) {
                    return Err(TxError::schema(format!(
                        "attribute {a} is declared by both {prev} and {}; attribute \
                         names must be globally unique for the l(t) sugar to denote",
                        d.name
                    )));
                }
                attrs.insert(a, (d.arity(), i + 1));
            }
            let attr_names: Vec<&str> = d.attrs.iter().map(|a| a.as_str()).collect();
            sig = sig.relation(d.name.as_str(), &attr_names);
        }
        Ok(Engine {
            schema: self.schema,
            opts: self.opts,
            attrs,
            sig,
            metrics: self.metrics.unwrap_or_else(Metrics::current),
        })
    }
}

/// The result of [`Engine::execute_traced`]: the successor state plus
/// the extensional record of how it differs from the initial state.
#[derive(Clone, Debug)]
pub struct Execution {
    /// The successor state (`w ; e`).
    pub state: DbState,
    /// The delta of the run; always equals `initial.diff(&state)`.
    pub delta: Delta,
}

/// The evaluator. Borrow a schema, evaluate many expressions.
pub struct Engine<'a> {
    pub(crate) schema: &'a Schema,
    pub(crate) opts: EvalOptions,
    /// attribute name → (relation arity, 1-based index); names must be
    /// globally unique, as the paper's `l(t)` sugar presumes.
    pub(crate) attrs: HashMap<Symbol, (usize, usize)>,
    /// The schema as a sort-checking signature, reused by the planner
    /// and for deriving empty set-former arities.
    pub(crate) sig: Signature,
    /// Observability sink; disabled (one branch per event) unless a
    /// recorder was installed globally or threaded in explicitly.
    pub(crate) metrics: Metrics,
}

impl<'a> Engine<'a> {
    /// Start configuring an engine over a schema. The builder is the
    /// only constructor; [`build`](EngineBuilder::build) validates the
    /// schema (globally unique attribute names).
    pub fn builder(schema: &'a Schema) -> EngineBuilder<'a> {
        EngineBuilder {
            schema,
            opts: EvalOptions::default(),
            metrics: None,
        }
    }

    /// The observability sink this engine reports into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The schema this engine evaluates against.
    pub fn schema(&self) -> &Schema {
        self.schema
    }

    fn attr(&self, name: Symbol) -> TxResult<(usize, usize)> {
        self.attrs.get(&name).copied().ok_or_else(|| {
            TxError::schema(format!("unknown attribute {name} (not in any relation)"))
        })
    }

    // ------------------------------------------------------------------
    // w : e — object evaluation
    // ------------------------------------------------------------------

    /// Evaluate an object-sorted f-term at a state (`w : e`).
    pub fn eval_obj(&self, db: &DbState, t: &FTerm, env: &Env) -> TxResult<Value> {
        match t {
            FTerm::Var(v) => self.eval_var(db, *v, env),
            FTerm::Nat(n) => Ok(Value::Atom(Atom::Nat(*n))),
            FTerm::Str(s) => Ok(Value::Atom(Atom::Str(*s))),
            FTerm::Rel(name) => {
                let decl = self
                    .schema
                    .by_name(*name)
                    .ok_or_else(|| TxError::schema(format!("unknown relation {name}")))?;
                match db.relation(decl.id) {
                    Some(rel) => Ok(Value::Set(SetVal::from_relation(rel))),
                    None => Err(TxError::undefined(format!(
                        "relation {name} does not exist in this state"
                    ))),
                }
            }
            FTerm::Attr(name, inner) => {
                let tuple = self.eval_obj(db, inner, env)?.into_tuple()?;
                let (arity, ix) = self.attr(*name)?;
                if tuple.arity() != arity {
                    return Err(TxError::sort(format!(
                        "attribute {name} belongs to {arity}-ary tuples, got arity {}",
                        tuple.arity()
                    )));
                }
                Ok(Value::Atom(tuple.select(ix)?))
            }
            FTerm::Select(inner, i) => {
                let tuple = self.eval_obj(db, inner, env)?.into_tuple()?;
                Ok(Value::Atom(tuple.select(*i)?))
            }
            FTerm::TupleCons(parts) => {
                let mut fields = Vec::with_capacity(parts.len());
                for p in parts {
                    fields.push(self.eval_obj(db, p, env)?.into_atom()?);
                }
                Ok(Value::Tuple(TupleVal::anonymous(fields)))
            }
            FTerm::App(op, args) => self.eval_op(db, *op, args, env),
            FTerm::SetFormer { head, vars, cond } => self.eval_setformer(db, head, vars, cond, env),
            FTerm::IdOf(inner) => match self.eval_obj(db, inner, env)? {
                Value::Tuple(t) => {
                    t.id.map(Value::TupleId)
                        .ok_or_else(|| TxError::undefined("id of an anonymous tuple"))
                }
                Value::Set(s) => s
                    .rel_id
                    .map(Value::RelId)
                    .ok_or_else(|| TxError::undefined("id of a computed set")),
                other => Err(TxError::sort(format!("id of non-identified value {other}"))),
            },
            FTerm::UserApp(name, _) => Err(TxError::eval(format!(
                "user function {name} has no evaluation rule registered"
            ))),
            _ => Err(TxError::sort(format!(
                "state-sorted term in object position: {t}"
            ))),
        }
    }

    fn eval_var(&self, db: &DbState, v: Var, env: &Env) -> TxResult<Value> {
        match env.get(&v) {
            Some(Binding::FluentTuple(tv)) => match tv.id {
                Some(id) => match db.find_tuple(id) {
                    Some((_, current)) => Ok(Value::Tuple(current)),
                    None => Err(TxError::undefined(format!(
                        "tuple {id} (variable {v}) does not exist in this state"
                    ))),
                },
                None => Ok(Value::Tuple(tv.clone())),
            },
            Some(Binding::FluentAtom(a)) => Ok(Value::Atom(*a)),
            Some(Binding::Val(val)) => Ok(val.clone()),
            Some(Binding::Label(_)) | Some(Binding::Program(_)) => Err(TxError::sort(format!(
                "transaction variable {v} used in object position"
            ))),
            None => Err(TxError::eval(format!("unbound variable {v}"))),
        }
    }

    fn eval_op(&self, db: &DbState, op: Op, args: &[FTerm], env: &Env) -> TxResult<Value> {
        // Malformed applications (programmatically-built terms with the
        // wrong argument count) must surface as typed sort errors, not
        // slice-index panics.
        let arg = |i: usize| -> TxResult<&FTerm> {
            args.get(i).ok_or_else(|| {
                TxError::sort(format!(
                    "operator {op} applied to {} argument(s); argument {} is missing",
                    args.len(),
                    i + 1
                ))
            })
        };
        match op {
            Op::Add | Op::Monus | Op::Mul | Op::Max | Op::Min => {
                let a = self.eval_obj(db, arg(0)?, env)?.into_atom()?;
                let b = self.eval_obj(db, arg(1)?, env)?.into_atom()?;
                let r = match op {
                    Op::Add => a.add(b)?,
                    Op::Monus => a.monus(b)?,
                    Op::Mul => a.mul(b)?,
                    Op::Max => a.max(b)?,
                    Op::Min => a.min(b)?,
                    _ => unreachable!(),
                };
                Ok(Value::Atom(r))
            }
            Op::Sum => {
                let s = self.eval_obj(db, arg(0)?, env)?.into_set()?;
                Ok(Value::Atom(s.sum()?))
            }
            Op::Size => {
                let s = self.eval_obj(db, arg(0)?, env)?.into_set()?;
                Ok(Value::Atom(Atom::Nat(s.len() as u64)))
            }
            Op::Union | Op::Inter | Op::Diff | Op::Product => {
                let a = self.eval_obj(db, arg(0)?, env)?.into_set()?;
                let b = self.eval_obj(db, arg(1)?, env)?.into_set()?;
                let r = match op {
                    Op::Union => a.union(&b)?,
                    Op::Inter => a.inter(&b)?,
                    Op::Diff => a.diff(&b)?,
                    Op::Product => a.product(&b)?,
                    _ => unreachable!(),
                };
                Ok(Value::Set(r))
            }
        }
    }

    fn eval_setformer(
        &self,
        db: &DbState,
        head: &FTerm,
        vars: &[Var],
        cond: &FFormula,
        env: &Env,
    ) -> TxResult<Value> {
        let mut members = Vec::new();
        self.for_each_assignment(db, vars, cond, env, GuardMode::Positive, &mut |env| {
            if self.eval_truth(db, cond, env)? {
                let v = self.eval_obj(db, head, env)?;
                members.push(v.into_tuple()?);
            }
            Ok(true)
        })?;
        let arity = match members.first() {
            // A non-empty comprehension's arity is its members'.
            Some(m) => m.arity(),
            // An empty one must derive it from the head's *sort* — a
            // guess would silently type the set wrong.
            None => match txlog_logic::sort_of_fterm(&self.sig, head) {
                Ok(Sort::Obj(ObjSort::Atom)) => 1,
                Ok(Sort::Obj(ObjSort::Tup(n))) => n,
                Ok(other) => {
                    return Err(TxError::sort(format!(
                        "set-former head {head} has sort {other}, not a tuple or atom"
                    )))
                }
                Err(e) => return Err(e),
            },
        };
        Ok(Value::Set(SetVal::from_members(arity, members)?))
    }

    /// The relation a `v ∈ R` conjunct bounds `v` to, resolved and
    /// arity-checked against `v`'s sort; `None` when the relation is
    /// absent from the state (an empty domain, not an error). Shared by
    /// the naive enumerator and the plan interpreter so both report the
    /// identical schema/sort errors.
    pub(crate) fn bounding_relation<'d>(
        &self,
        db: &'d DbState,
        v: Var,
        n: usize,
        rel: Symbol,
    ) -> TxResult<Option<&'d Relation>> {
        let decl = self
            .schema
            .by_name(rel)
            .ok_or_else(|| TxError::schema(format!("unknown relation {rel}")))?;
        if decl.arity() != n {
            return Err(TxError::sort(format!(
                "variable {v} has arity {n} but relation {rel} has arity {}",
                decl.arity()
            )));
        }
        Ok(db.relation(decl.id))
    }

    /// The finite domain a bound fluent variable ranges over at `db` —
    /// the naive (oracle) enumeration, definitional for the bounded
    /// quantification semantics.
    pub(crate) fn domain_of(
        &self,
        db: &DbState,
        v: Var,
        cond: &FFormula,
    ) -> TxResult<Vec<Binding>> {
        match v.sort {
            Sort::Obj(ObjSort::Tup(n)) => {
                // Prefer a restricting membership conjunct.
                if let Some(rel) = find_membership_rel(cond, v) {
                    return Ok(match self.bounding_relation(db, v, n, rel)? {
                        Some(r) => r.iter_vals().map(Binding::FluentTuple).collect(),
                        None => Vec::new(),
                    });
                }
                // Fall back to every arity-n tuple in the state.
                Ok(crate::plan::active_tuples(db, n)
                    .into_iter()
                    .map(Binding::FluentTuple)
                    .collect())
            }
            Sort::Obj(ObjSort::Atom) => {
                let mut seed = Vec::new();
                collect_fformula_atoms(cond, &mut seed);
                Ok(crate::plan::atom_domain([db], seed)
                    .into_iter()
                    .map(Binding::FluentAtom)
                    .collect())
            }
            other => Err(TxError::sort(format!(
                "cannot enumerate domain of sort {other} (variable {v})"
            ))),
        }
    }

    // ------------------------------------------------------------------
    // w :: p — truth evaluation
    // ------------------------------------------------------------------

    /// Evaluate a fluent formula at a state (`w :: p`). Atoms over
    /// non-denoting terms are false.
    pub fn eval_truth(&self, db: &DbState, p: &FFormula, env: &Env) -> TxResult<bool> {
        match p {
            FFormula::True => Ok(true),
            FFormula::False => Ok(false),
            FFormula::Cmp(op, a, b) => {
                let a = self.eval_obj_opt(db, a, env)?;
                let b = self.eval_obj_opt(db, b, env)?;
                match (a, b) {
                    (Some(a), Some(b)) => cmp_values(*op, &a, &b),
                    _ => Ok(false),
                }
            }
            FFormula::Member(t, set) => {
                let t = self.eval_obj_opt(db, t, env)?;
                let set = self.eval_obj_opt(db, set, env)?;
                match (t, set) {
                    (Some(t), Some(set)) => Ok(set.into_set()?.contains(&t.into_tuple()?)),
                    _ => Ok(false),
                }
            }
            FFormula::Subset(a, b) => {
                let a = self.eval_obj_opt(db, a, env)?;
                let b = self.eval_obj_opt(db, b, env)?;
                match (a, b) {
                    (Some(a), Some(b)) => a.into_set()?.subset(&b.into_set()?),
                    _ => Ok(false),
                }
            }
            FFormula::Not(q) => Ok(!self.eval_truth(db, q, env)?),
            FFormula::And(a, b) => Ok(self.eval_truth(db, a, env)? && self.eval_truth(db, b, env)?),
            FFormula::Or(a, b) => Ok(self.eval_truth(db, a, env)? || self.eval_truth(db, b, env)?),
            FFormula::Implies(a, b) => {
                Ok(!self.eval_truth(db, a, env)? || self.eval_truth(db, b, env)?)
            }
            FFormula::Iff(a, b) => Ok(self.eval_truth(db, a, env)? == self.eval_truth(db, b, env)?),
            FFormula::Exists(v, body) => {
                let mut found = false;
                self.for_each_assignment(
                    db,
                    std::slice::from_ref(v),
                    body,
                    env,
                    GuardMode::Positive,
                    &mut |env2| {
                        if self.eval_truth(db, body, env2)? {
                            found = true;
                            return Ok(false); // witness found: stop
                        }
                        Ok(true)
                    },
                )?;
                Ok(found)
            }
            FFormula::Forall(v, body) => {
                let mut holds = true;
                self.for_each_assignment(
                    db,
                    std::slice::from_ref(v),
                    body,
                    env,
                    GuardMode::Guarded,
                    &mut |env2| {
                        if !self.eval_truth(db, body, env2)? {
                            holds = false;
                            return Ok(false); // counterexample: stop
                        }
                        Ok(true)
                    },
                )?;
                Ok(holds)
            }
            FFormula::UserPred(name, _) => Err(TxError::eval(format!(
                "user predicate {name} has no evaluation rule registered"
            ))),
        }
    }

    /// Evaluate, mapping [`TxError::Undefined`] to `None`.
    pub fn eval_obj_opt(&self, db: &DbState, t: &FTerm, env: &Env) -> TxResult<Option<Value>> {
        match self.eval_obj(db, t, env) {
            Ok(v) => Ok(Some(v)),
            Err(e) if e.is_undefined() => Ok(None),
            Err(e) => Err(e),
        }
    }

    // ------------------------------------------------------------------
    // w ; e — execution
    // ------------------------------------------------------------------

    /// Execute a transaction at a state (`w ; e`), yielding the successor
    /// state. Object-sorted terms are rejected: they are queries, not
    /// transactions (Definition 3).
    ///
    /// This is a thin wrapper over [`Engine::execute_traced`] that drops
    /// the recorded delta: there is exactly one execution path, and it is
    /// delta-native.
    pub fn execute(&self, db: &DbState, t: &FTerm, env: &Env) -> TxResult<DbState> {
        self.exec_node(db, t, env).map(|(next, _)| next)
    }

    /// Execute a transaction and record the [`Delta`] of the run — the
    /// extensional content of the arc `w ; e` adds to the evolution
    /// graph. This is **the primary entry point**: the [`Execution`] it
    /// returns carries both the successor state and the delta that the
    /// incremental checker and the commit pipeline consume;
    /// [`Engine::execute`] is the delta-dropping convenience.
    ///
    /// Internally there is exactly one executor (the sole match over
    /// state-sorted [`FTerm`]s): each primitive step uses its `*_traced`
    /// counterpart on [`DbState`] (O(change) accumulation, not O(state)
    /// differencing), `;;` composes the step deltas through
    /// [`Delta::compose`], `if` traces the branch taken, and `foreach`
    /// composes one delta per iteration. The delta always equals
    /// `db.diff(&execution.state)`.
    pub fn execute_traced(&self, db: &DbState, t: &FTerm, env: &Env) -> TxResult<Execution> {
        self.exec_node(db, t, env)
            .map(|(state, delta)| Execution { state, delta })
    }

    fn exec_node(&self, db: &DbState, t: &FTerm, env: &Env) -> TxResult<(DbState, Delta)> {
        self.metrics.bump(Counter::ExecSteps);
        match t {
            FTerm::Identity => Ok((db.clone(), Delta::empty())),
            FTerm::Seq(a, b) => {
                self.metrics.bump(Counter::ExecSeq);
                let (mid, d1) = self.exec_node(db, a, env)?;
                let (end, d2) = self.exec_node(&mid, b, env)?;
                Ok((end, d1.compose(&d2)))
            }
            FTerm::Cond(p, a, b) => {
                self.metrics.bump(Counter::ExecCond);
                if self.eval_truth(db, p, env)? {
                    self.exec_node(db, a, env)
                } else {
                    self.exec_node(db, b, env)
                }
            }
            FTerm::Foreach(v, p, body) => {
                self.metrics.bump(Counter::ExecForeach);
                self.execute_foreach_traced(db, *v, p, body, env)
            }
            FTerm::Insert(tup, rel) => {
                self.metrics.bump(Counter::ExecInsert);
                let decl = self.rel_decl(*rel)?;
                let tv = self.eval_obj(db, tup, env)?.into_tuple()?;
                if tv.arity() != decl.arity() {
                    return Err(TxError::sort(format!(
                        "insert of {}-ary tuple into {}-ary relation {rel}",
                        tv.arity(),
                        decl.arity()
                    )));
                }
                let (next, _, delta) = db.insert_traced(decl.id, &tv)?;
                Ok((next, delta))
            }
            FTerm::Delete(tup, rel) => {
                self.metrics.bump(Counter::ExecDelete);
                let decl = self.rel_decl(*rel)?;
                match self.eval_obj_opt(db, tup, env)? {
                    Some(v) => db.delete_traced(decl.id, &v.into_tuple()?),
                    None => Ok((db.clone(), Delta::empty())),
                }
            }
            FTerm::Modify(tup, i, val) => {
                self.metrics.bump(Counter::ExecModify);
                let tv = self.eval_obj(db, tup, env)?.into_tuple()?;
                let v = self.eval_obj(db, val, env)?.into_atom()?;
                db.modify_traced(&tv, *i, v)
            }
            FTerm::ModifyAttr(tup, attr, val) => {
                self.metrics.bump(Counter::ExecModify);
                let tv = self.eval_obj(db, tup, env)?.into_tuple()?;
                let (arity, ix) = self.attr(*attr)?;
                if tv.arity() != arity {
                    return Err(TxError::sort(format!(
                        "attribute {attr} belongs to {arity}-ary tuples, got arity {}",
                        tv.arity()
                    )));
                }
                let v = self.eval_obj(db, val, env)?.into_atom()?;
                db.modify_traced(&tv, ix, v)
            }
            FTerm::Assign(rel, set) => {
                self.metrics.bump(Counter::ExecAssign);
                let decl = self.rel_decl(*rel)?;
                let sv = self.eval_obj(db, set, env)?.into_set()?;
                if sv.arity != decl.arity() {
                    return Err(TxError::sort(format!(
                        "assign of {}-ary set to {}-ary relation {rel}",
                        sv.arity,
                        decl.arity()
                    )));
                }
                db.assign_traced(decl.id, decl.arity(), sv.members())
            }
            FTerm::Var(v) => match env.get(v) {
                Some(Binding::Program(p)) => {
                    let p = p.clone();
                    self.exec_node(db, &p, env)
                }
                Some(Binding::Label(l)) => Err(TxError::not_executable(format!(
                    "transaction variable {v} is bound to graph label {l}; \
                     labels are only meaningful during model checking"
                ))),
                Some(_) => Err(TxError::sort(format!(
                    "variable {v} is not bound to a transaction"
                ))),
                None => Err(TxError::eval(format!("unbound transaction variable {v}"))),
            },
            other => Err(TxError::not_executable(format!(
                "object-sorted term used as a transaction: {other}"
            ))),
        }
    }

    fn execute_foreach_traced(
        &self,
        db: &DbState,
        v: Var,
        p: &FFormula,
        body: &FTerm,
        env: &Env,
    ) -> TxResult<(DbState, Delta)> {
        // Iteration-linkage: matches fixed at the initial state, bodies
        // composed sequentially, with the per-iteration deltas composed
        // alongside. A foreach over an empty satisfying set composes
        // zero deltas — the Λ delta.
        let mut matches: Vec<Binding> = Vec::new();
        self.for_each_assignment(
            db,
            std::slice::from_ref(&v),
            p,
            env,
            GuardMode::Positive,
            &mut |env2| {
                if self.eval_truth(db, p, env2)? {
                    let b = env2.get(&v).cloned().ok_or_else(|| {
                        TxError::eval(format!(
                            "foreach variable {v} was not bound by its own enumeration"
                        ))
                    })?;
                    matches.push(b);
                    if matches.len() > self.opts.max_iterations {
                        return Err(TxError::InfiniteDomain(format!(
                            "foreach over {v} exceeded {} iterations",
                            self.opts.max_iterations
                        )));
                    }
                }
                Ok(true)
            },
        )?;
        self.metrics
            .observe(Hist::ForeachMatches, matches.len() as u64);
        self.metrics
            .add(Counter::ForeachIterations, matches.len() as u64);
        let mut cur = db.clone();
        let mut delta = Delta::empty();
        for b in &matches {
            let env2 = env.bind(v, b.clone());
            let (next, d) = self.exec_node(&cur, body, &env2)?;
            cur = next;
            delta = delta.compose(&d);
        }
        if self.opts.check_order_independence && matches.len() > 1 {
            let mut back = db.clone();
            for b in matches.iter().rev() {
                let env2 = env.bind(v, b.clone());
                back = self.exec_node(&back, body, &env2)?.0;
            }
            if !cur.content_eq(&back) {
                return Err(TxError::OrderDependent(format!(
                    "foreach over {v} yields different states under different \
                     enumeration orders"
                )));
            }
        }
        Ok((cur, delta))
    }

    fn rel_decl(&self, name: Symbol) -> TxResult<&txlog_relational::RelDecl> {
        self.schema
            .by_name(name)
            .ok_or_else(|| TxError::schema(format!("unknown relation {name}")))
    }
}

/// Compare two values under a comparison operator. Order comparisons
/// require atoms; equality is semantic at any sort.
pub fn cmp_values(op: CmpOp, a: &Value, b: &Value) -> TxResult<bool> {
    match op {
        CmpOp::Eq => Ok(a.sem_eq(b)),
        CmpOp::Ne => Ok(!a.sem_eq(b)),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let x = a.clone().into_atom()?;
            let y = b.clone().into_atom()?;
            match op {
                CmpOp::Lt => x.lt(y),
                CmpOp::Le => x.le(y),
                CmpOp::Gt => y.lt(x),
                CmpOp::Ge => y.le(x),
                _ => unreachable!(),
            }
        }
    }
}

/// All atoms occurring in any relation of the state, in enumeration order.
pub fn active_atoms(db: &DbState) -> Vec<Atom> {
    let mut out = Vec::new();
    for (_, rel) in db.relations() {
        for t in rel.iter() {
            out.extend_from_slice(t.fields());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Collect numeric/symbolic constants mentioned in a formula (used to seed
/// atom-sorted quantifier domains).
pub(crate) fn collect_fformula_atoms(p: &FFormula, out: &mut Vec<Atom>) {
    fn term(t: &FTerm, out: &mut Vec<Atom>) {
        match t {
            FTerm::Nat(n) => out.push(Atom::Nat(*n)),
            FTerm::Str(s) => out.push(Atom::Str(*s)),
            FTerm::Attr(_, t) | FTerm::Select(t, _) | FTerm::IdOf(t) => term(t, out),
            FTerm::TupleCons(ts) | FTerm::App(_, ts) | FTerm::UserApp(_, ts) => {
                for t in ts {
                    term(t, out);
                }
            }
            FTerm::SetFormer { head, cond, .. } => {
                term(head, out);
                collect_fformula_atoms(cond, out);
            }
            _ => {}
        }
    }
    match p {
        FFormula::Cmp(_, a, b) | FFormula::Member(a, b) | FFormula::Subset(a, b) => {
            term(a, out);
            term(b, out);
        }
        FFormula::Not(q) => collect_fformula_atoms(q, out),
        FFormula::And(a, b)
        | FFormula::Or(a, b)
        | FFormula::Implies(a, b)
        | FFormula::Iff(a, b) => {
            collect_fformula_atoms(a, out);
            collect_fformula_atoms(b, out);
        }
        FFormula::Exists(_, q) | FFormula::Forall(_, q) => collect_fformula_atoms(q, out),
        FFormula::UserPred(_, ts) => {
            for t in ts {
                term(t, out);
            }
        }
        FFormula::True | FFormula::False => {}
    }
}

/// Check that an f-term is a well-formed database program over `schema`
/// with parameters `params` (Definition 3): every free variable is a
/// parameter, every relation and attribute is declared. Returns whether
/// the program is a transaction (state sort) or a query.
pub fn check_program(schema: &Schema, t: &FTerm, params: &[Var]) -> TxResult<ProgramKind> {
    let free = txlog_logic::subst::fterm_free_vars(t);
    for v in &free {
        if !params.contains(v) {
            return Err(TxError::not_executable(format!(
                "free variable {v} is not a declared parameter"
            )));
        }
        if v.class == VarClass::Situational && v.sort != Sort::ATOM {
            return Err(TxError::not_executable(format!(
                "situational parameter {v} cannot appear in a program"
            )));
        }
    }
    check_names(schema, t)?;
    Ok(if t.is_transaction_shaped() {
        ProgramKind::Transaction
    } else {
        ProgramKind::Query
    })
}

/// Definition 3's dichotomy of database programs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgramKind {
    /// An f-term of state sort.
    Transaction,
    /// An f-term of object sort.
    Query,
}

fn check_names(schema: &Schema, t: &FTerm) -> TxResult<()> {
    let check_rel = |name: Symbol| -> TxResult<()> {
        schema
            .by_name(name)
            .map(|_| ())
            .ok_or_else(|| TxError::schema(format!("unknown relation {name}")))
    };
    match t {
        FTerm::Rel(r) => check_rel(*r),
        FTerm::Attr(_, inner) | FTerm::Select(inner, _) | FTerm::IdOf(inner) => {
            check_names(schema, inner)
        }
        FTerm::TupleCons(ts) | FTerm::App(_, ts) | FTerm::UserApp(_, ts) => {
            ts.iter().try_for_each(|t| check_names(schema, t))
        }
        FTerm::SetFormer { head, cond, .. } => {
            check_names(schema, head)?;
            check_formula_names(schema, cond)
        }
        FTerm::Seq(a, b) => {
            check_names(schema, a)?;
            check_names(schema, b)
        }
        FTerm::Cond(p, a, b) => {
            check_formula_names(schema, p)?;
            check_names(schema, a)?;
            check_names(schema, b)
        }
        FTerm::Foreach(_, p, body) => {
            check_formula_names(schema, p)?;
            check_names(schema, body)
        }
        FTerm::Insert(tup, r) | FTerm::Delete(tup, r) => {
            check_rel(*r)?;
            check_names(schema, tup)
        }
        FTerm::Modify(tup, _, v) | FTerm::ModifyAttr(tup, _, v) => {
            check_names(schema, tup)?;
            check_names(schema, v)
        }
        FTerm::Assign(r, set) => {
            check_rel(*r)?;
            check_names(schema, set)
        }
        FTerm::Var(_) | FTerm::Nat(_) | FTerm::Str(_) | FTerm::Identity => Ok(()),
    }
}

fn check_formula_names(schema: &Schema, p: &FFormula) -> TxResult<()> {
    match p {
        FFormula::True | FFormula::False => Ok(()),
        FFormula::Cmp(_, a, b) | FFormula::Member(a, b) | FFormula::Subset(a, b) => {
            check_names(schema, a)?;
            check_names(schema, b)
        }
        FFormula::Not(q) => check_formula_names(schema, q),
        FFormula::And(a, b)
        | FFormula::Or(a, b)
        | FFormula::Implies(a, b)
        | FFormula::Iff(a, b) => {
            check_formula_names(schema, a)?;
            check_formula_names(schema, b)
        }
        FFormula::Exists(_, q) | FFormula::Forall(_, q) => check_formula_names(schema, q),
        FFormula::UserPred(_, ts) => ts.iter().try_for_each(|t| check_names(schema, t)),
    }
}
