//! Evaluation environments.
//!
//! An [`Env`] maps variables to their runtime bindings. The binding kind
//! reflects the variable's class:
//!
//! * situational variables bind to [`Value`]s (a state, a tuple value, an
//!   atom, a set…);
//! * fluent **tuple** variables bind to a [`TupleVal`] whose identity (if
//!   any) is re-resolved at each state of evaluation — this is how `s:e`
//!   and `s;t:e` track "the same employee" across states;
//! * fluent **state** variables (transactions) bind to an arc label
//!   ([`TxLabel`]) during model checking, or to a concrete transaction
//!   program when executing parameterized programs;
//! * fluent **atom** variables bind to rigid atoms.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use txlog_base::Atom;
use txlog_logic::{FTerm, Var};
use txlog_relational::{TupleVal, TxLabel};

/// A runtime binding for one variable.
#[derive(Clone, PartialEq)]
pub enum Binding {
    /// A situational value.
    Val(Value),
    /// A fluent tuple: identity tracked across states.
    FluentTuple(TupleVal),
    /// A fluent atom (rigid).
    FluentAtom(Atom),
    /// A transaction, as an evolution-graph arc label.
    Label(TxLabel),
    /// A transaction, as a concrete program (used when executing
    /// parameterized transactions whose parameters are themselves
    /// transactions).
    Program(FTerm),
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binding::Val(v) => write!(f, "{v}"),
            Binding::FluentTuple(t) => write!(f, "{t}"),
            Binding::FluentAtom(a) => write!(f, "{a}"),
            Binding::Label(l) => write!(f, "{l}"),
            Binding::Program(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An immutable-by-convention evaluation environment. Extension clones;
/// environments are small (bounded by quantifier nesting depth plus
/// program parameters), so cloning is cheap.
#[derive(Clone, Default)]
pub struct Env {
    map: HashMap<Var, Binding>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Look up a variable.
    pub fn get(&self, v: &Var) -> Option<&Binding> {
        self.map.get(v)
    }

    /// Extend with one binding, returning the extended environment.
    pub fn bind(&self, v: Var, b: Binding) -> Env {
        let mut next = self.clone();
        next.map.insert(v, b);
        next
    }

    /// Extend in place.
    pub fn bind_mut(&mut self, v: Var, b: Binding) {
        self.map.insert(v, b);
    }

    /// Convenience: bind a fluent tuple variable.
    pub fn bind_tuple(&self, v: Var, t: TupleVal) -> Env {
        self.bind(v, Binding::FluentTuple(t))
    }

    /// Convenience: bind a fluent atom variable.
    pub fn bind_atom(&self, v: Var, a: Atom) -> Env {
        self.bind(v, Binding::FluentAtom(a))
    }

    /// Convenience: bind a situational value.
    pub fn bind_val(&self, v: Var, val: Value) -> Env {
        self.bind(v, Binding::Val(val))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(v, _)| (v.name.index(), v.sort, v.class));
        write!(f, "{{")?;
        for (i, (v, b)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_is_persistent() {
        let env = Env::new();
        let v = Var::atom_f("v");
        let env2 = env.bind_atom(v, Atom::nat(7));
        assert!(env.get(&v).is_none());
        assert!(matches!(
            env2.get(&v),
            Some(Binding::FluentAtom(a)) if *a == Atom::nat(7)
        ));
    }

    #[test]
    fn rebinding_shadows() {
        let v = Var::atom_f("v");
        let env = Env::new()
            .bind_atom(v, Atom::nat(1))
            .bind_atom(v, Atom::nat(2));
        assert!(matches!(
            env.get(&v),
            Some(Binding::FluentAtom(a)) if *a == Atom::nat(2)
        ));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn distinct_sorts_do_not_collide() {
        let a = Var::tup_f("x", 2);
        let b = Var::tup_f("x", 3);
        let env = Env::new()
            .bind_tuple(a, TupleVal::anonymous(vec![Atom::nat(1), Atom::nat(2)]))
            .bind_tuple(
                b,
                TupleVal::anonymous(vec![Atom::nat(1), Atom::nat(2), Atom::nat(3)]),
            );
        assert_eq!(env.len(), 2);
    }
}
