//! Group commit: the staged log-writer behind durable databases.
//!
//! PR 5's pipeline issued append+fsync inline, inside the head lock —
//! every commit paid a full flush and the lock serialized them. This
//! module splits the write path into stages: `Session::commit` validates
//! and installs under the head lock but only *enqueues* its already
//! encoded commit record into a bounded submission queue, then blocks on
//! a per-commit [`Slot`]; a dedicated log-writer thread drains the queue
//! into batches of up to `sync_every` records, appends them as one
//! sequence of frames, issues a **single** fsync, and acknowledges the
//! whole batch together.
//!
//! ## The ack-after-fsync invariant
//!
//! `sync_every` used to be an fsync *cadence*: with `sync_every > 1` a
//! commit could return success before any flush covered its record, and
//! a crash would silently lose an acknowledged commit. Under group
//! commit the knob is a max *batch size* and the invariant is strict:
//! **no commit is acknowledged before the fsync covering its record
//! returns.** What changed shape is the other side: a commit now
//! *installs* before its record is durable, so between install and ack
//! the commit is *in doubt* — visible to new snapshots, absent from the
//! log until the batch flushes. Crash recovery may land on any point of
//! the in-doubt suffix; it never loses an acknowledged commit.
//!
//! ## Batch poisoning
//!
//! Because install precedes the append, a failed commit-record append —
//! even a clean one whose torn bytes were rolled back — strands an
//! installed version that will now never reach the log: the version
//! sequence on disk would gap and recovery would truncate every later
//! commit. The committer therefore poisons the [`Wal`] on *any* batch
//! write failure ([`Wal::poison_external`] for clean failures, the
//! wal's own poisoning for fsync/rollback failures), fails every waiter
//! in the batch with the real error, and fails all queued-but-undrained
//! waiters with `Poisoned`. A failed *checkpoint* append is the one
//! forgiving case: checkpoints only summarize already-acked commits, so
//! a cleanly rolled-back checkpoint is skipped and retried at the next
//! batch boundary.

use crate::sim::{RecordKind, SimEvent, StepHook};
use crate::wal::{Wal, WalError};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use txlog_base::obs::{Counter, Hist, Metrics};
use txlog_relational::{DbState, Schema};

/// A cloneable projection of [`WalError`] for fan-out to batch waiters
/// (the wal error itself owns non-cloneable payloads).
#[derive(Clone, Debug)]
pub(crate) enum AckError {
    /// The store operation for this batch failed.
    Io { op: &'static str, detail: String },
    /// The log was poisoned before this commit's record was written.
    Poisoned { detail: String },
}

impl AckError {
    fn from_wal(e: &WalError) -> AckError {
        match e {
            WalError::Io { op, detail } => AckError::Io {
                op,
                detail: detail.clone(),
            },
            WalError::Poisoned { detail } => AckError::Poisoned {
                detail: detail.clone(),
            },
            other => AckError::Poisoned {
                detail: other.to_string(),
            },
        }
    }

    pub(crate) fn into_wal(self) -> WalError {
        match self {
            AckError::Io { op, detail } => WalError::Io { op, detail },
            AckError::Poisoned { detail } => WalError::Poisoned { detail },
        }
    }
}

/// The per-commit completion handle: filled exactly once by the log
/// writer after the commit's batch fsyncs (or fails).
pub(crate) struct Slot {
    result: Mutex<Option<Result<(), AckError>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, r: Result<(), AckError>) {
        let mut slot = self.result.lock().expect("slot lock");
        if slot.is_none() {
            *slot = Some(r);
            self.cv.notify_all();
        }
    }

    /// Block until the log writer acks or fails this commit.
    pub(crate) fn wait(&self) -> Result<(), AckError> {
        let mut slot = self.result.lock().expect("slot lock");
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = self.cv.wait(slot).expect("slot lock");
        }
    }

    /// The result if the writer has already filled it (non-blocking).
    pub(crate) fn try_result(&self) -> Option<Result<(), AckError>> {
        self.result.lock().expect("slot lock").clone()
    }
}

/// One enqueued commit: its already-encoded record plus everything the
/// writer needs to ack it and checkpoint after it.
struct Submission {
    version: u64,
    payload: Vec<u8>,
    state: Arc<DbState>,
    slot: Arc<Slot>,
}

/// Why a submission was rejected at the head lock (before the commit
/// consumed a version).
pub(crate) enum SubmitError {
    /// The bounded submission queue is full.
    Overload {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The log is poisoned; no further commits until recovery.
    Poisoned { detail: String },
}

/// Submission side: what `Session::commit` touches under the head lock.
struct Queue {
    items: VecDeque<Submission>,
    /// Mirror of the wal's poisoned state, set when a batch fails, so
    /// submitters fail fast without taking the pump lock.
    poisoned: Option<String>,
    shutdown: bool,
}

/// Writer side: everything only the log-writer (or a manual pump)
/// touches. One lock for the whole drain-append-sync-ack cycle.
struct PumpState {
    wal: Wal,
    /// The batch being written: drained from the queue, appended one
    /// record per micro-step, then fsynced and acked together.
    inflight: VecDeque<Submission>,
    /// How many of `inflight` have been appended so far.
    appended: usize,
    /// A checkpoint is due at the next batch boundary.
    pending_checkpoint: bool,
    commits_since_checkpoint: u64,
    /// Version and state of the newest acknowledged commit — what the
    /// next cadence checkpoint snapshots.
    last_acked: Option<(u64, Arc<DbState>)>,
    /// Simulation seam: also installed into `wal`; held here to fire
    /// [`SimEvent::Acked`] at batch-ack time.
    hook: Option<Arc<dyn StepHook>>,
}

/// The next store operation the writer will perform, surfaced so the
/// simulator can schedule (and fail) the writer like any other actor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum WriterOp {
    /// Append one commit record of the current batch.
    Append,
    /// Fsync the fully-appended batch and ack its waiters.
    Sync,
    /// Append a cadence checkpoint at a batch boundary.
    Checkpoint,
}

/// The group-commit stage: a bounded submission queue feeding a
/// batched log writer. See the module docs for the protocol.
pub(crate) struct GroupCommitter {
    queue: Mutex<Queue>,
    /// Signaled on submit and shutdown; the writer waits here when idle.
    work: Condvar,
    pump: Mutex<PumpState>,
    /// Max records per batch (the old `sync_every` knob, re-purposed).
    max_batch: usize,
    /// Submission-queue bound; submits beyond it fail with overload.
    queue_cap: usize,
    /// Checkpoint after this many commits (0 = never).
    checkpoint_every: u64,
    schema: Schema,
    metrics: Metrics,
}

impl GroupCommitter {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        wal: Wal,
        schema: Schema,
        sync_every: u64,
        checkpoint_every: u64,
        queue_cap: usize,
        commits_since_checkpoint: u64,
        last_acked: Option<(u64, Arc<DbState>)>,
        metrics: Metrics,
    ) -> GroupCommitter {
        GroupCommitter {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                poisoned: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            pump: Mutex::new(PumpState {
                wal,
                inflight: VecDeque::new(),
                appended: 0,
                pending_checkpoint: false,
                commits_since_checkpoint,
                last_acked,
                hook: None,
            }),
            max_batch: sync_every.max(1).try_into().unwrap_or(usize::MAX),
            queue_cap: queue_cap.max(1),
            checkpoint_every,
            schema,
            metrics,
        }
    }

    /// Install the simulation seam into both the wal and the ack path.
    pub(crate) fn set_hook(&self, hook: Arc<dyn StepHook>) {
        let mut pump = self.pump.lock().expect("pump lock");
        pump.wal.set_hook(hook.clone());
        pump.hook = Some(hook);
    }

    /// Enqueue one encoded commit record. Called under the head lock,
    /// *before* the commit installs, so a rejection here costs nothing:
    /// the version has not been consumed. On `Ok` the caller must
    /// install — the writer may already be appending the record.
    pub(crate) fn submit(
        &self,
        version: u64,
        payload: Vec<u8>,
        state: Arc<DbState>,
    ) -> Result<Arc<Slot>, SubmitError> {
        let mut q = self.queue.lock().expect("queue lock");
        if let Some(detail) = &q.poisoned {
            return Err(SubmitError::Poisoned {
                detail: detail.clone(),
            });
        }
        if q.items.len() >= self.queue_cap {
            return Err(SubmitError::Overload {
                capacity: self.queue_cap,
            });
        }
        let slot = Slot::new();
        q.items.push_back(Submission {
            version,
            payload,
            state,
            slot: slot.clone(),
        });
        self.work.notify_all();
        Ok(slot)
    }

    /// The store operation the next [`GroupCommitter::micro_step`] will
    /// perform, or `None` when the writer is idle. The simulator uses
    /// this to decide whether the writer actor is schedulable and which
    /// fault (append vs fsync) can be armed against its next step.
    pub(crate) fn next_op(&self) -> Option<WriterOp> {
        let pump = self.pump.lock().expect("pump lock");
        if pump.inflight.is_empty() {
            if pump.pending_checkpoint {
                return Some(WriterOp::Checkpoint);
            }
            let q = self.queue.lock().expect("queue lock");
            if q.items.is_empty() {
                None
            } else {
                Some(WriterOp::Append)
            }
        } else if pump.appended == pump.inflight.len() {
            Some(WriterOp::Sync)
        } else {
            Some(WriterOp::Append)
        }
    }

    /// Perform one store operation of the writer cycle: a cadence
    /// checkpoint, one record append of the current batch, or the batch
    /// fsync + group ack. Returns false when there was nothing to do.
    /// The writer thread loops this; the simulator calls it one
    /// schedulable step at a time.
    pub(crate) fn micro_step(&self) -> bool {
        let mut guard = self.pump.lock().expect("pump lock");
        let pump = &mut *guard;
        if pump.inflight.is_empty() {
            if pump.pending_checkpoint {
                self.write_checkpoint(pump);
                return true;
            }
            // drain the next batch; the queue lock is held only for the
            // drain, never across store operations
            {
                let mut q = self.queue.lock().expect("queue lock");
                while pump.inflight.len() < self.max_batch {
                    match q.items.pop_front() {
                        Some(sub) => pump.inflight.push_back(sub),
                        None => break,
                    }
                }
            }
            pump.appended = 0;
            if pump.inflight.is_empty() {
                return false;
            }
        }
        if pump.appended < pump.inflight.len() {
            let idx = pump.appended;
            let payload = std::mem::take(&mut pump.inflight[idx].payload);
            match pump.wal.append_record(&payload, RecordKind::Commit) {
                Ok(()) => pump.appended += 1,
                Err(e) => self.fail_batch(pump, &e),
            }
            return true;
        }
        // the whole batch is appended: one fsync covers it, then every
        // waiter learns its fate together
        match pump.wal.sync() {
            Ok(()) => {
                let n = pump.inflight.len() as u64;
                self.metrics.bump(Counter::WalGroupBatches);
                self.metrics.observe(Hist::WalGroupBatchSize, n);
                pump.commits_since_checkpoint += n;
                let (last_version, last_state) = {
                    let last = pump.inflight.back().expect("non-empty batch");
                    (last.version, last.state.clone())
                };
                pump.last_acked = Some((last_version, last_state));
                for sub in pump.inflight.drain(..) {
                    sub.slot.fill(Ok(()));
                }
                pump.appended = 0;
                if let Some(h) = &pump.hook {
                    h.on_event(SimEvent::Acked(last_version));
                }
                if self.checkpoint_every > 0
                    && pump.commits_since_checkpoint >= self.checkpoint_every
                {
                    pump.pending_checkpoint = true;
                }
            }
            Err(e) => self.fail_batch(pump, &e),
        }
        true
    }

    /// Drain every queued submission until the writer goes idle. Used by
    /// manual pumping ([`crate::db::Database::pump_log_writer`]) and at
    /// shutdown.
    pub(crate) fn pump_all(&self) {
        while self.micro_step() {}
    }

    /// The dedicated writer thread's loop: micro-step while there is
    /// work, sleep on the condvar when idle, exit once shut down and
    /// fully drained.
    pub(crate) fn run(&self) {
        loop {
            if self.micro_step() {
                continue;
            }
            let q = self.queue.lock().expect("queue lock");
            if !q.items.is_empty() {
                continue;
            }
            if q.shutdown {
                return;
            }
            drop(self.work.wait(q).expect("queue lock"));
        }
    }

    /// Ask the writer to exit once it has drained everything. Safe to
    /// call more than once.
    pub(crate) fn shutdown(&self) {
        let mut q = self.queue.lock().expect("queue lock");
        q.shutdown = true;
        self.work.notify_all();
    }

    /// Fail every waiter still queued or inflight (manual mode only: a
    /// database closing with no writer thread must not strand blocked
    /// `wait` calls).
    pub(crate) fn fail_pending(&self, detail: &str) {
        let mut pump = self.pump.lock().expect("pump lock");
        for sub in pump.inflight.drain(..) {
            sub.slot.fill(Err(AckError::Poisoned {
                detail: detail.to_string(),
            }));
        }
        pump.appended = 0;
        let mut q = self.queue.lock().expect("queue lock");
        for sub in q.items.drain(..) {
            sub.slot.fill(Err(AckError::Poisoned {
                detail: detail.to_string(),
            }));
        }
    }

    /// A stable digest of the committer's scheduling-relevant state, for
    /// the explorer's visited-set key.
    pub(crate) fn fingerprint(&self, out: &mut String) {
        use std::fmt::Write;
        let pump = self.pump.lock().expect("pump lock");
        let q = self.queue.lock().expect("queue lock");
        out.push_str("|gq:");
        for sub in &q.items {
            let _ = write!(out, "{},", sub.version);
        }
        let _ = write!(out, ";qp:{}", u8::from(q.poisoned.is_some()));
        out.push_str("|gf:");
        for sub in &pump.inflight {
            let _ = write!(out, "{},", sub.version);
        }
        let _ = write!(
            out,
            ";a:{};pc:{};csc:{};la:{};wp:{}",
            pump.appended,
            u8::from(pump.pending_checkpoint),
            pump.commits_since_checkpoint,
            pump.last_acked.as_ref().map_or(0, |(v, _)| *v),
            u8::from(pump.wal.is_poisoned()),
        );
    }

    /// A batch (or checkpoint) write failed with the wal poisoned or an
    /// installed version stranded: poison everything. Inflight waiters
    /// get the real error; queued-but-undrained waiters get `Poisoned`
    /// (their records were never written).
    fn fail_batch(&self, pump: &mut PumpState, e: &WalError) {
        let detail = e.to_string();
        if !pump.wal.is_poisoned() {
            pump.wal
                .poison_external(format!("group batch write failed: {detail}"));
        }
        let ack = AckError::from_wal(e);
        for sub in pump.inflight.drain(..) {
            sub.slot.fill(Err(ack.clone()));
        }
        pump.appended = 0;
        pump.pending_checkpoint = false;
        let mut q = self.queue.lock().expect("queue lock");
        q.poisoned = Some(detail.clone());
        for sub in q.items.drain(..) {
            sub.slot.fill(Err(AckError::Poisoned {
                detail: detail.clone(),
            }));
        }
    }

    /// Append the cadence checkpoint due at this batch boundary. A clean
    /// append failure (torn bytes rolled back) is *skipped*, not
    /// poisonous: the checkpoint only summarizes already-acked commits
    /// and the cadence counter stays high, so it is retried after the
    /// next batch. A poisoning failure fails everything queued.
    fn write_checkpoint(&self, pump: &mut PumpState) {
        pump.pending_checkpoint = false;
        let Some((version, state)) = pump.last_acked.clone() else {
            return;
        };
        match pump.wal.log_checkpoint(version, &self.schema, &state) {
            Ok(()) => pump.commits_since_checkpoint = 0,
            Err(e) => {
                if pump.wal.is_poisoned() {
                    self.fail_batch(pump, &e);
                }
                // else: cleanly rolled back — skip, retry next boundary
            }
        }
    }
}
