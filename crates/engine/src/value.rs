//! Runtime values — the semantic domain of evaluation.
//!
//! Evaluating an expression yields a [`Value`]: an atom, a tuple value, a
//! finite set of tuples, a state (a node of the evolution graph or a
//! detached state computed by executing a transaction), or an identifier.
//! Set values are kept sorted and deduplicated so value equality is
//! structural equality.

use std::fmt;
use std::sync::Arc;
use txlog_base::{Atom, RelId, StateId, TupleId, TxError, TxResult};
use txlog_relational::{DbState, Relation, TupleVal};

/// A finite set of n-ary tuples, as a value (the paper's `nset` sorts).
#[derive(Clone, PartialEq, Eq)]
pub struct SetVal {
    /// The member arity.
    pub arity: usize,
    /// The originating relation's identity, when the set *is* a relation
    /// value (needed for `id(R)`); `None` for computed sets.
    pub rel_id: Option<RelId>,
    members: Vec<TupleVal>,
}

impl SetVal {
    /// An empty set of the given arity.
    pub fn empty(arity: usize) -> SetVal {
        SetVal {
            arity,
            rel_id: None,
            members: Vec::new(),
        }
    }

    /// Build from members, normalizing (sort + dedup by fields-and-id).
    pub fn from_members(arity: usize, mut members: Vec<TupleVal>) -> TxResult<SetVal> {
        for m in &members {
            if m.arity() != arity {
                return Err(TxError::sort(format!(
                    "{}-ary member in {arity}-ary set",
                    m.arity()
                )));
            }
        }
        members.sort_by(|a, b| a.fields.cmp(&b.fields).then(a.id.cmp(&b.id)));
        members.dedup();
        Ok(SetVal {
            arity,
            rel_id: None,
            members,
        })
    }

    /// The value of a stored relation.
    pub fn from_relation(rel: &Relation) -> SetVal {
        let members: Vec<TupleVal> = rel.iter_vals().collect();
        let mut sv = SetVal::from_members(rel.arity(), members)
            .expect("relation members are arity-checked on insert");
        sv.rel_id = Some(rel.id());
        sv
    }

    /// Members in normalized order.
    pub fn members(&self) -> &[TupleVal] {
        &self.members
    }

    /// Cardinality (the paper's `size_n`). Counts *distinct tuples*; two
    /// identified tuples with equal fields are distinct tuples, but an
    /// anonymous duplicate of an identified value is not re-counted when
    /// comparing by value — `value_len` gives the pure value count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Cardinality by pure field values.
    pub fn value_len(&self) -> usize {
        let mut fields: Vec<&Arc<[Atom]>> = self.members.iter().map(|m| &m.fields).collect();
        fields.sort();
        fields.dedup();
        fields.len()
    }

    /// Membership by the paper's convention: identified values must match
    /// an identified member; anonymous values match on fields.
    pub fn contains(&self, t: &TupleVal) -> bool {
        match t.id {
            Some(id) => self
                .members
                .iter()
                .any(|m| m.id == Some(id) && m.fields == t.fields),
            None => self.members.iter().any(|m| m.fields == t.fields),
        }
    }

    /// Membership by field values only.
    pub fn contains_fields(&self, fields: &[Atom]) -> bool {
        self.members.iter().any(|m| &*m.fields == fields)
    }

    /// Set union (by value; identified members are kept distinct by id).
    pub fn union(&self, other: &SetVal) -> TxResult<SetVal> {
        self.check_arity(other, "union")?;
        let mut members = self.members.clone();
        members.extend(other.members.iter().cloned());
        SetVal::from_members(self.arity, members)
    }

    /// Set intersection by field values.
    pub fn inter(&self, other: &SetVal) -> TxResult<SetVal> {
        self.check_arity(other, "inter")?;
        let members = self
            .members
            .iter()
            .filter(|m| other.contains_fields(&m.fields))
            .cloned()
            .collect();
        SetVal::from_members(self.arity, members)
    }

    /// Set difference by field values.
    pub fn diff(&self, other: &SetVal) -> TxResult<SetVal> {
        self.check_arity(other, "diff")?;
        let members = self
            .members
            .iter()
            .filter(|m| !other.contains_fields(&m.fields))
            .cloned()
            .collect();
        SetVal::from_members(self.arity, members)
    }

    /// Cartesian product: an (m+n)-ary set of anonymous tuples.
    pub fn product(&self, other: &SetVal) -> TxResult<SetVal> {
        let mut members = Vec::with_capacity(self.members.len() * other.members.len());
        for a in &self.members {
            for b in &other.members {
                let mut fields: Vec<Atom> = a.fields.to_vec();
                fields.extend_from_slice(&b.fields);
                members.push(TupleVal::anonymous(fields));
            }
        }
        SetVal::from_members(self.arity + other.arity, members)
    }

    /// Subset by field values (the paper's `⊆_n`).
    pub fn subset(&self, other: &SetVal) -> TxResult<bool> {
        self.check_arity(other, "subset")?;
        Ok(self
            .members
            .iter()
            .all(|m| other.contains_fields(&m.fields)))
    }

    /// Sum of the single attribute of a 1-ary set (the paper's `sum`).
    pub fn sum(&self) -> TxResult<Atom> {
        if self.arity != 1 {
            return Err(TxError::sort(format!(
                "sum requires a 1-ary set, got arity {}",
                self.arity
            )));
        }
        let mut total: u64 = 0;
        for m in &self.members {
            total = total
                .checked_add(m.fields[0].as_nat()?)
                .ok_or_else(|| TxError::eval("sum overflow"))?;
        }
        Ok(Atom::Nat(total))
    }

    /// Value equality by field multiplicity-free comparison (two sets are
    /// equal iff they contain the same field vectors).
    pub fn value_eq(&self, other: &SetVal) -> bool {
        if self.arity != other.arity {
            return false;
        }
        let norm = |s: &SetVal| {
            let mut v: Vec<Arc<[Atom]>> = s.members.iter().map(|m| m.fields.clone()).collect();
            v.sort();
            v.dedup();
            v
        };
        norm(self) == norm(other)
    }

    fn check_arity(&self, other: &SetVal, op: &str) -> TxResult<()> {
        if self.arity != other.arity {
            return Err(TxError::sort(format!(
                "{op} of sets with arities {} and {}",
                self.arity, other.arity
            )));
        }
        Ok(())
    }
}

impl fmt::Display for SetVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for SetVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A state value during model checking: a node of the evolution graph, or
/// a detached state computed by executing a transaction (the result of
/// `s ; tx` need not be a recorded node).
#[derive(Clone)]
pub struct StateVal {
    /// The state's contents.
    pub db: DbState,
    /// The graph node, when this state is one.
    pub node: Option<StateId>,
}

impl StateVal {
    /// A node state.
    pub fn node(id: StateId, db: DbState) -> StateVal {
        StateVal { db, node: Some(id) }
    }

    /// A detached state.
    pub fn detached(db: DbState) -> StateVal {
        StateVal { db, node: None }
    }
}

impl PartialEq for StateVal {
    fn eq(&self, other: &StateVal) -> bool {
        // State equality is content equality — two routes to the same
        // contents are the same state (Example 4 compares s = s;t1;t2).
        self.db.content_eq(&other.db)
    }
}

impl Eq for StateVal {}

impl fmt::Display for StateVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(id) => write!(f, "{id}"),
            None => write!(f, "<detached state>"),
        }
    }
}

impl fmt::Debug for StateVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Any runtime value.
#[derive(Clone, PartialEq, Eq)]
pub enum Value {
    /// An attribute value.
    Atom(Atom),
    /// An n-ary tuple value.
    Tuple(TupleVal),
    /// A finite n-ary set value.
    Set(SetVal),
    /// A state.
    State(StateVal),
    /// A tuple identifier (result of `id(t)`).
    TupleId(TupleId),
    /// A relation identifier (result of `id(R)`).
    RelId(RelId),
}

impl Value {
    /// Extract an atom, or a sort error.
    pub fn into_atom(self) -> TxResult<Atom> {
        match self {
            Value::Atom(a) => Ok(a),
            other => Err(TxError::sort(format!("expected atom, got {other}"))),
        }
    }

    /// Extract a tuple, or a sort error.
    pub fn into_tuple(self) -> TxResult<TupleVal> {
        match self {
            Value::Tuple(t) => Ok(t),
            // An atom coerces to a 1-tuple where a tuple is demanded —
            // the paper freely writes sets of attribute values.
            Value::Atom(a) => Ok(TupleVal::anonymous(vec![a])),
            other => Err(TxError::sort(format!("expected tuple, got {other}"))),
        }
    }

    /// Extract a set, or a sort error.
    pub fn into_set(self) -> TxResult<SetVal> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(TxError::sort(format!("expected set, got {other}"))),
        }
    }

    /// Extract a state, or a sort error.
    pub fn into_state(self) -> TxResult<StateVal> {
        match self {
            Value::State(s) => Ok(s),
            other => Err(TxError::sort(format!("expected state, got {other}"))),
        }
    }

    /// Semantic equality for the `=` predicate: sets compare by value,
    /// tuples by fields-and-identity-if-both-identified, atoms directly.
    pub fn sem_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Set(a), Value::Set(b)) => a.value_eq(b),
            (Value::Tuple(a), Value::Tuple(b)) => match (a.id, b.id) {
                (Some(x), Some(y)) => x == y && a.fields == b.fields,
                _ => a.fields == b.fields,
            },
            (Value::Atom(a), Value::Tuple(t)) | (Value::Tuple(t), Value::Atom(a)) => {
                t.arity() == 1 && t.fields[0] == *a
            }
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::Tuple(t) => write!(f, "{t}"),
            Value::Set(s) => write!(f, "{s}"),
            Value::State(s) => write!(f, "{s}"),
            Value::TupleId(id) => write!(f, "{id}"),
            Value::RelId(id) => write!(f, "{id}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(ns: &[u64]) -> TupleVal {
        TupleVal::anonymous(ns.iter().map(|&n| Atom::nat(n)).collect::<Vec<_>>())
    }

    #[test]
    fn set_normalization_dedups() {
        let s = SetVal::from_members(1, vec![tv(&[2]), tv(&[1]), tv(&[2])]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&tv(&[1])));
    }

    #[test]
    fn set_ops() {
        let a = SetVal::from_members(1, vec![tv(&[1]), tv(&[2])]).unwrap();
        let b = SetVal::from_members(1, vec![tv(&[2]), tv(&[3])]).unwrap();
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.inter(&b).unwrap().len(), 1);
        assert_eq!(a.diff(&b).unwrap().len(), 1);
        assert!(a.diff(&b).unwrap().contains(&tv(&[1])));
        let p = a.product(&b).unwrap();
        assert_eq!(p.arity, 2);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let a = SetVal::from_members(1, vec![tv(&[1])]).unwrap();
        let b = SetVal::from_members(2, vec![tv(&[1, 2])]).unwrap();
        assert!(a.union(&b).is_err());
        assert!(SetVal::from_members(1, vec![tv(&[1, 2])]).is_err());
    }

    #[test]
    fn subset_and_sum() {
        let a = SetVal::from_members(1, vec![tv(&[10]), tv(&[20])]).unwrap();
        let b = SetVal::from_members(1, vec![tv(&[10]), tv(&[20]), tv(&[30])]).unwrap();
        assert!(a.subset(&b).unwrap());
        assert!(!b.subset(&a).unwrap());
        assert_eq!(b.sum().unwrap(), Atom::nat(60));
    }

    #[test]
    fn sum_requires_unary() {
        let p = SetVal::from_members(2, vec![tv(&[1, 2])]).unwrap();
        assert!(p.sum().is_err());
    }

    #[test]
    fn value_eq_ignores_identity() {
        let a = SetVal::from_members(
            1,
            vec![TupleVal::identified(TupleId(1), vec![Atom::nat(5)])],
        )
        .unwrap();
        let b = SetVal::from_members(1, vec![tv(&[5])]).unwrap();
        assert!(a.value_eq(&b));
    }

    #[test]
    fn semantic_equality_of_values() {
        assert!(Value::Atom(Atom::nat(5)).sem_eq(&Value::Tuple(tv(&[5]))));
        assert!(!Value::Atom(Atom::nat(5)).sem_eq(&Value::Atom(Atom::nat(6))));
    }

    #[test]
    fn state_values_compare_by_content() {
        let db = DbState::new();
        let a = StateVal::node(StateId(0), db.clone());
        let b = StateVal::detached(db);
        assert_eq!(a, b);
    }

    #[test]
    fn into_conversions() {
        assert!(Value::Atom(Atom::nat(1)).into_atom().is_ok());
        assert!(Value::Atom(Atom::nat(1)).into_set().is_err());
        assert!(Value::Atom(Atom::nat(1)).into_tuple().is_ok()); // coercion
        assert!(Value::Tuple(tv(&[1])).into_state().is_err());
    }
}
