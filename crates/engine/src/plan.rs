//! Interpreting compiled quantifier plans against database states.
//!
//! The planner in `txlog_logic::plan` is purely syntactic; this module
//! is its runtime half: `Engine::for_each_assignment` enumerates the
//! satisfying candidate bindings of a quantifier prefix either naively
//! (the oracle semantics) or through a compiled
//! [`QuantPlan`](txlog_logic::plan::QuantPlan) — index probes,
//! membership scans, and residual filters.
//!
//! Two invariants keep the planned path observationally equivalent to
//! the naive one wherever the naive one is defined:
//!
//! * **Order preservation** — every source enumerates tuples in the same
//!   ascending identity order a full scan would, and filters/probes only
//!   *drop* candidates, so the surviving sequence is a subsequence of
//!   the naive enumeration. `foreach` match order and quantifier
//!   short-circuiting are therefore unchanged.
//! * **Error tolerance** — a probe key or filter that fails to evaluate
//!   never discards a candidate (the full condition, re-evaluated by the
//!   caller's visitor, decides); a filter may only skip a binding on a
//!   definite `false`, which under the plan's [`GuardMode`] proves the
//!   binding irrelevant. Planned evaluation may thus be *more defined*
//!   than naive evaluation (it can skip bindings whose condition would
//!   error), but whenever the naive path returns `Ok`, the planned path
//!   returns the same `Ok`.

use crate::env::{Binding, Env};
use crate::exec::{active_atoms, collect_fformula_atoms, Engine, PlanMode};
use crate::value::Value;
use txlog_base::obs::{Counter, Hist};
use txlog_base::{Atom, TxError, TxResult};
use txlog_logic::plan::{plan_quantifiers, DomainSource, GuardMode, PlanStep};
use txlog_logic::{FFormula, Var};
use txlog_relational::{DbState, TupleVal};

/// Every tuple value of arity `n` in the state, in (relation, identity)
/// order — the active-domain fallback shared by the planner runtime, the
/// naive enumerator, and the model checker.
pub(crate) fn active_tuples(db: &DbState, n: usize) -> Vec<TupleVal> {
    let mut out = Vec::new();
    for (_, rel) in db.relations() {
        if rel.arity() == n {
            out.extend(rel.iter_vals());
        }
    }
    out
}

/// Sorted, deduplicated atom domain: the states' active atoms plus
/// `seed` (a formula's own constants). Shared by the engine's atom
/// fallback (one state) and the model checker (all graph states).
pub(crate) fn atom_domain<'a>(
    states: impl IntoIterator<Item = &'a DbState>,
    mut seed: Vec<Atom>,
) -> Vec<Atom> {
    for db in states {
        seed.extend(active_atoms(db));
    }
    seed.sort();
    seed.dedup();
    seed
}

/// If `v` is usable as an index-probe key — an atom, or the 1-tuple the
/// engine's semantic equality coerces to one — return the atom.
fn atom_key(v: &Value) -> Option<Atom> {
    match v {
        Value::Atom(a) => Some(*a),
        Value::Tuple(t) if t.arity() == 1 => Some(t.fields[0]),
        _ => None,
    }
}

/// A per-enumeration candidate budget (the quantifier/set-former
/// counterpart of the `foreach` iteration guard).
struct Budget {
    left: usize,
    max: usize,
}

impl Budget {
    fn new(max: usize) -> Budget {
        Budget { left: max, max }
    }

    fn take(&mut self, v: Var) -> TxResult<()> {
        if self.left == 0 {
            return Err(TxError::InfiniteDomain(format!(
                "quantifier/set-former enumeration over {v} exceeded {} candidate bindings",
                self.max
            )));
        }
        self.left -= 1;
        Ok(())
    }
}

impl Engine<'_> {
    /// Enumerate the candidate assignments of `vars` under `cond`,
    /// calling `visit` for each extension of `env` in deterministic
    /// order. `visit` returns `Ok(true)` to continue and `Ok(false)` to
    /// stop the whole enumeration (quantifier short-circuit).
    ///
    /// With [`PlanMode::Naive`] this is the definitional bounded-domain
    /// cross product; with [`PlanMode::Indexed`] the condition is
    /// compiled to a [`txlog_logic::plan::QuantPlan`] under `mode` and
    /// interpreted. Candidates the plan skips are exactly ones whose
    /// condition is definitely `false` in a position `mode` proves
    /// irrelevant, so visitors re-checking the full condition see the
    /// same satisfying assignments either way.
    pub(crate) fn for_each_assignment(
        &self,
        db: &DbState,
        vars: &[Var],
        cond: &FFormula,
        env: &Env,
        mode: GuardMode,
        visit: &mut dyn FnMut(&Env) -> TxResult<bool>,
    ) -> TxResult<()> {
        let mut budget = Budget::new(self.opts.max_iterations);
        let out = match self.opts.planner {
            PlanMode::Naive => {
                self.metrics.bump(Counter::NaiveSteps);
                self.naive_walk(db, vars, cond, env, &mut budget, visit)
                    .map(|_| ())
            }
            PlanMode::Indexed => {
                let plan = plan_quantifiers(&self.sig, vars, cond, mode);
                self.metrics.bump(Counter::PlansCompiled);
                let mut cut = false;
                for pf in &plan.prefilters {
                    // A definitely-false plan-variable-free conjunct
                    // empties (∃) or vacuously satisfies (∀) the whole
                    // enumeration; evaluation failures are tolerated.
                    if let Ok(false) = self.eval_truth(db, pf, env) {
                        self.metrics.bump(Counter::PrefilterCuts);
                        cut = true;
                        break;
                    }
                }
                if cut {
                    Ok(())
                } else {
                    self.plan_walk(db, &plan.steps, cond, env, &mut budget, visit)
                        .map(|_| ())
                }
            }
        };
        self.metrics
            .observe(Hist::EnumBudget, (budget.max - budget.left) as u64);
        out
    }

    /// Naive nested-loop enumeration (the oracle). Returns `false` when
    /// the visitor stopped early.
    fn naive_walk(
        &self,
        db: &DbState,
        vars: &[Var],
        cond: &FFormula,
        env: &Env,
        budget: &mut Budget,
        visit: &mut dyn FnMut(&Env) -> TxResult<bool>,
    ) -> TxResult<bool> {
        let Some((&v, rest)) = vars.split_first() else {
            self.metrics.bump(Counter::AssignmentsEmitted);
            return visit(env);
        };
        let domain = self.domain_of(db, v, cond)?;
        self.metrics.add(Counter::NaiveRows, domain.len() as u64);
        for b in domain {
            budget.take(v)?;
            let env2 = env.bind(v, b);
            if !self.naive_walk(db, rest, cond, &env2, budget, visit)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Interpret the compiled steps. Returns `false` when the visitor
    /// stopped early.
    fn plan_walk(
        &self,
        db: &DbState,
        steps: &[PlanStep],
        cond: &FFormula,
        env: &Env,
        budget: &mut Budget,
        visit: &mut dyn FnMut(&Env) -> TxResult<bool>,
    ) -> TxResult<bool> {
        let Some((step, rest)) = steps.split_first() else {
            self.metrics.bump(Counter::AssignmentsEmitted);
            return visit(env);
        };
        let v = step.var;
        'candidates: for b in self.step_candidates(db, step, cond, env)? {
            budget.take(v)?;
            let env2 = env.bind(v, b);
            for f in &step.filters {
                // Only a definite false skips; an error leaves the
                // decision to the full condition.
                if let Ok(false) = self.eval_truth(db, f, &env2) {
                    self.metrics.bump(Counter::FilterDrops);
                    continue 'candidates;
                }
            }
            if !self.plan_walk(db, rest, cond, &env2, budget, visit)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The candidate bindings one plan step enumerates at `db` under the
    /// bindings accumulated so far.
    fn step_candidates(
        &self,
        db: &DbState,
        step: &PlanStep,
        cond: &FFormula,
        env: &Env,
    ) -> TxResult<Vec<Binding>> {
        let v = step.var;
        let m = &self.metrics;
        match &step.source {
            DomainSource::Scan(rel) => {
                m.bump(Counter::ScanSteps);
                Ok(match self.bounding_relation(db, v, tup_arity(v), *rel)? {
                    Some(r) => {
                        let out: Vec<Binding> = r.iter_vals().map(Binding::FluentTuple).collect();
                        m.add(Counter::ScanRows, out.len() as u64);
                        out
                    }
                    None => Vec::new(),
                })
            }
            DomainSource::IndexProbe { rel, col, key } => {
                let Some(r) = self.bounding_relation(db, v, tup_arity(v), *rel)? else {
                    return Ok(Vec::new());
                };
                match self.eval_obj(db, key, env) {
                    // A non-denoting key makes the equality conjunct
                    // false at every candidate: empty.
                    Err(e) if e.is_undefined() => {
                        m.bump(Counter::ProbeSteps);
                        Ok(Vec::new())
                    }
                    // Any other failure: fall back to the full scan and
                    // let the condition surface the error.
                    Err(_) => {
                        m.bump(Counter::ProbeFallbackScans);
                        let out: Vec<Binding> = r.iter_vals().map(Binding::FluentTuple).collect();
                        m.add(Counter::ScanRows, out.len() as u64);
                        Ok(out)
                    }
                    Ok(val) => match atom_key(&val) {
                        Some(k) => {
                            m.bump(Counter::ProbeSteps);
                            if !r.index_built() {
                                m.bump(Counter::IndexBuilds);
                            }
                            let ids = r.probe(*col, &k);
                            let mut out = Vec::with_capacity(ids.len());
                            for &id in ids.iter() {
                                // Dead ids in the index would silently
                                // corrupt results; surface them as a
                                // typed error naming the relation.
                                let fields = r.get(id).ok_or_else(|| {
                                    TxError::eval(format!(
                                        "index probe on relation {rel} (column {col}) \
                                         returned dead tuple id {id}"
                                    ))
                                })?;
                                out.push(Binding::FluentTuple(TupleVal::identified(
                                    id,
                                    std::sync::Arc::clone(fields),
                                )));
                            }
                            m.add(Counter::ProbeRows, out.len() as u64);
                            Ok(out)
                        }
                        // A set/state-valued key cannot equal a column
                        // atom under semantic equality, but scanning is
                        // the conservative choice either way.
                        None => {
                            m.bump(Counter::ProbeFallbackScans);
                            let out: Vec<Binding> =
                                r.iter_vals().map(Binding::FluentTuple).collect();
                            m.add(Counter::ScanRows, out.len() as u64);
                            Ok(out)
                        }
                    },
                }
            }
            DomainSource::ActiveTuples(n) => {
                m.bump(Counter::ActiveSteps);
                let out: Vec<Binding> = active_tuples(db, *n)
                    .into_iter()
                    .map(Binding::FluentTuple)
                    .collect();
                m.add(Counter::ActiveRows, out.len() as u64);
                Ok(out)
            }
            DomainSource::Atoms => {
                m.bump(Counter::AtomSteps);
                let mut seed = Vec::new();
                collect_fformula_atoms(cond, &mut seed);
                let out: Vec<Binding> = atom_domain([db], seed)
                    .into_iter()
                    .map(Binding::FluentAtom)
                    .collect();
                m.add(Counter::AtomRows, out.len() as u64);
                Ok(out)
            }
            DomainSource::Unenumerable(sort) => Err(TxError::sort(format!(
                "cannot enumerate domain of sort {sort} (variable {v})"
            ))),
        }
    }
}

/// The tuple arity of a plan variable. Scan/probe sources only arise for
/// tuple-sorted variables, so this cannot fail for well-formed plans.
fn tup_arity(v: Var) -> usize {
    match v.sort {
        txlog_logic::Sort::Obj(txlog_logic::ObjSort::Tup(n)) => n,
        _ => 0,
    }
}
