//! Concrete syntax for the transaction logic.
//!
//! The paper's notation, rendered in ASCII. Two entry points:
//!
//! * [`parse_sformula`] — integrity constraints and axioms (closed
//!   s-formulas, possibly with caller-supplied free parameters);
//! * [`parse_fterm`] — transactions and queries (f-terms with parameters).
//!
//! # Syntax overview
//!
//! ```text
//! -- quantifiers bind sorted variables; primes mark situational class
//! forall s: state, e: 5tup .
//!   s:e in s:EMP -> exists a': 2tup . a' in s:ALLOC
//!
//! -- situational functions
//! s:expr      object value of fluent expr at state s
//! s;tx        state after executing tx at s        (";;" composes fluents)
//! s::(p)      truth of fluent formula p at s
//!
//! -- transactions
//! assign(E, { a-emp(a) | a: 3tup . a in ALLOC }) ;;
//! foreach a: 3tup | a in ALLOC do delete(a, ALLOC) end ;;
//! if p then modify(e, salary, salary(e) - v) else delete(e, EMP)
//! ```
//!
//! Binder sorts: `state` (a situational state variable), `tx` (a fluent
//! state variable — a transaction), `atom`/`nat`, `Ntup` (e.g. `5tup`),
//! `Nset`. A primed *name* (`e'`) declares a situational object variable;
//! unprimed object names are fluent. Atom-sorted variables are rigid and
//! may be used at either level.

use crate::fluent::{CmpOp, FFormula, FTerm, Op};
use crate::situational::{SFormula, STerm};
use crate::sort::{Sort, Var, VarClass};
use std::collections::{HashMap, HashSet};
use txlog_base::{Symbol, TxError, TxResult};

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String), // may end with a prime: e'
    Int(u64),
    Quoted(String), // 'S'
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Colon,      // :
    ColonColon, // ::
    Semi,       // ;
    SemiSemi,   // ;;
    Bar,        // |
    Amp,        // &
    Arrow,      // ->
    DArrow,     // <->
    Bang,       // !
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Eof,
}

#[derive(Clone)]
struct SpannedTok {
    tok: Tok,
    line: u32,
    col: u32,
}

fn lex(src: &str) -> TxResult<Vec<SpannedTok>> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(SpannedTok {
                tok: $tok,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '-' if chars.get(i + 1) == Some(&'-') => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            ',' => push!(Tok::Comma, 1),
            '.' => push!(Tok::Dot, 1),
            '&' => push!(Tok::Amp, 1),
            '|' => push!(Tok::Bar, 1),
            '+' => push!(Tok::Plus, 1),
            '*' => push!(Tok::Star, 1),
            ':' if chars.get(i + 1) == Some(&':') => push!(Tok::ColonColon, 2),
            ':' => push!(Tok::Colon, 1),
            ';' if chars.get(i + 1) == Some(&';') => push!(Tok::SemiSemi, 2),
            ';' => push!(Tok::Semi, 1),
            '-' if chars.get(i + 1) == Some(&'>') => push!(Tok::Arrow, 2),
            '-' => push!(Tok::Minus, 1),
            '<' if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) == Some(&'>') => {
                push!(Tok::DArrow, 3)
            }
            '<' if chars.get(i + 1) == Some(&'=') => push!(Tok::Le, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if chars.get(i + 1) == Some(&'=') => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '=' => push!(Tok::Eq, 1),
            '!' if chars.get(i + 1) == Some(&'=') => push!(Tok::Ne, 2),
            '!' => push!(Tok::Bang, 1),
            '\'' => {
                // quoted symbolic atom: 'S'
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    if chars[j] == '\n' {
                        return Err(TxError::parse(line, col, "unterminated quoted atom"));
                    }
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(TxError::parse(line, col, "unterminated quoted atom"));
                }
                let text: String = chars[start..j].iter().collect();
                let len = j + 1 - i;
                out.push(SpannedTok {
                    tok: Tok::Quoted(text),
                    line,
                    col,
                });
                i += len;
                col += len as u32;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                // A digit run followed by letters is an identifier like
                // `5tup` (sort names).
                if j < chars.len() && (chars[j].is_ascii_alphabetic() || chars[j] == '_') {
                    let mut k = j;
                    while k < chars.len()
                        && (chars[k].is_ascii_alphanumeric()
                            || chars[k] == '_'
                            || chars[k] == '-'
                                && chars.get(k + 1).is_some_and(|c| c.is_ascii_alphanumeric()))
                    {
                        k += 1;
                    }
                    if k < chars.len() && chars[k] == '\'' {
                        k += 1;
                    }
                    let text: String = chars[i..k].iter().collect();
                    let len = k - i;
                    out.push(SpannedTok {
                        tok: Tok::Ident(text),
                        line,
                        col,
                    });
                    i += len;
                    col += len as u32;
                } else {
                    let text: String = chars[i..j].iter().collect();
                    let n: u64 = text
                        .parse()
                        .map_err(|_| TxError::parse(line, col, "integer literal overflow"))?;
                    let len = j - i;
                    out.push(SpannedTok {
                        tok: Tok::Int(n),
                        line,
                        col,
                    });
                    i += len;
                    col += len as u32;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == 'Λ' => {
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_ascii_alphanumeric()
                        || chars[j] == '_'
                        || chars[j] == 'Λ'
                        // hyphen joins identifier parts when followed by
                        // an alphanumeric (e-name, cancel-project)
                        || (chars[j] == '-'
                            && chars.get(j + 1).is_some_and(|c| c.is_ascii_alphanumeric())))
                {
                    j += 1;
                }
                // optional trailing prime marks situational class
                if j < chars.len() && chars[j] == '\'' {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                let len = j - i;
                out.push(SpannedTok {
                    tok: Tok::Ident(text),
                    line,
                    col,
                });
                i += len;
                col += len as u32;
            }
            other => {
                return Err(TxError::parse(
                    line,
                    col,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parser configuration: the relation names the source may mention.
pub struct ParseCtx {
    relations: HashSet<Symbol>,
}

impl ParseCtx {
    /// A context knowing the given relation names.
    pub fn new(relations: impl IntoIterator<Item = Symbol>) -> ParseCtx {
        ParseCtx {
            relations: relations.into_iter().collect(),
        }
    }

    /// A context from string names.
    pub fn with_relations(names: &[&str]) -> ParseCtx {
        ParseCtx::new(names.iter().map(|n| Symbol::new(n)))
    }
}

struct Parser<'a> {
    toks: Vec<SpannedTok>,
    pos: usize,
    ctx: &'a ParseCtx,
    scope: HashMap<String, Var>,
    /// Set when a `::(...)` truth evaluation was consumed during term
    /// parsing; picked up by `parse_s_atom`.
    pending_holds: Option<SFormula>,
}

impl<'a> Parser<'a> {
    fn new(src: &str, ctx: &'a ParseCtx) -> TxResult<Parser<'a>> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            ctx,
            scope: HashMap::new(),
            pending_holds: None,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> TxResult<T> {
        let (line, col) = self.here();
        Err(TxError::parse(line, col, msg))
    }

    fn expect(&mut self, tok: Tok, what: &str) -> TxResult<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn is_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // ---------- binders ----------

    /// `name ':' sort` — primed names are situational, unprimed fluent;
    /// `state` is situational, `tx` is fluent state.
    fn parse_binder(&mut self) -> TxResult<Var> {
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return self.err(format!("expected variable name, found {other:?}")),
        };
        self.expect(Tok::Colon, "':' in binder")?;
        let sort_name = match self.bump() {
            Tok::Ident(s) => s,
            other => return self.err(format!("expected sort name, found {other:?}")),
        };
        let (primed, base) = match name.strip_suffix('\'') {
            Some(b) => (true, b.to_string()),
            None => (false, name.clone()),
        };
        // A trailing prime on the sort (e.g. `5tup'`) also marks
        // situational class, mirroring the paper's subscripts.
        let sort_name = sort_name.trim_end_matches('\'');
        let (sort, class) = match sort_name {
            "state" => (Sort::State, VarClass::Situational),
            "tx" | "trans" | "transaction" => (Sort::State, VarClass::Fluent),
            "atom" | "nat" => (
                Sort::ATOM,
                if primed {
                    VarClass::Situational
                } else {
                    VarClass::Fluent
                },
            ),
            s => {
                let class = if primed {
                    VarClass::Situational
                } else {
                    VarClass::Fluent
                };
                if let Some(n) = s.strip_suffix("tup") {
                    let n: usize = n
                        .parse()
                        .map_err(|_| TxError::parse(0, 0, format!("bad tuple sort {s}")))?;
                    (Sort::tup(n), class)
                } else if let Some(n) = s.strip_suffix("set") {
                    let n: usize = n
                        .parse()
                        .map_err(|_| TxError::parse(0, 0, format!("bad set sort {s}")))?;
                    (Sort::set(n), class)
                } else {
                    return self.err(format!("unknown sort {s}"));
                }
            }
        };
        Ok(Var {
            name: Symbol::new(&base),
            sort,
            class,
        })
    }

    /// Pre-scan a set former `{ head | binders . cond }` from just after
    /// the `{`: locate the top-level `|`, parse the binder list, and
    /// return `(binders, bar_pos, after_dot_pos)` with the cursor restored
    /// to the start. The head mentions the binders, so they must be in
    /// scope *before* the head is parsed even though they appear after it.
    fn setformer_binders(&mut self) -> TxResult<(Vec<Var>, usize, usize)> {
        let start = self.pos;
        let mut depth = 0usize;
        let mut k = self.pos;
        let bar = loop {
            match &self.toks[k].tok {
                Tok::LParen | Tok::LBrace => depth += 1,
                Tok::RParen | Tok::RBrace => {
                    if depth == 0 {
                        return self.err("missing '|' in set former");
                    }
                    depth -= 1;
                }
                Tok::Bar if depth == 0 => break k,
                Tok::Eof => return self.err("missing '|' in set former"),
                _ => {}
            }
            k += 1;
        };
        self.pos = bar + 1;
        let mut binders = vec![self.parse_binder()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            binders.push(self.parse_binder()?);
        }
        self.expect(Tok::Dot, "'.' after set-former binders")?;
        let after_dot = self.pos;
        self.pos = start;
        Ok((binders, bar, after_dot))
    }

    fn scope_key(v: Var) -> String {
        // situational object vars are referred to with their prime
        if v.class == VarClass::Situational && v.sort != Sort::State {
            format!("{}'", v.name)
        } else {
            v.name.to_string()
        }
    }

    fn with_binders<T>(
        &mut self,
        vars: &[Var],
        f: impl FnOnce(&mut Self) -> TxResult<T>,
    ) -> TxResult<T> {
        let mut saved = Vec::new();
        for v in vars {
            let key = Self::scope_key(*v);
            saved.push((key.clone(), self.scope.insert(key, *v)));
        }
        let out = f(self);
        for (key, old) in saved.into_iter().rev() {
            match old {
                Some(v) => {
                    self.scope.insert(key, v);
                }
                None => {
                    self.scope.remove(&key);
                }
            }
        }
        out
    }

    // ---------- s-formulas ----------

    fn parse_sformula(&mut self) -> TxResult<SFormula> {
        if self.is_ident("forall") || self.is_ident("exists") {
            let is_forall = self.is_ident("forall");
            self.bump();
            let mut binders = vec![self.parse_binder()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                binders.push(self.parse_binder()?);
            }
            self.expect(Tok::Dot, "'.' after binders")?;
            let body = self.with_binders(&binders.clone(), |p| p.parse_sformula())?;
            let mut out = body;
            for v in binders.into_iter().rev() {
                out = if is_forall {
                    SFormula::Forall(v, Box::new(out))
                } else {
                    SFormula::Exists(v, Box::new(out))
                };
            }
            return Ok(out);
        }
        self.parse_s_iff()
    }

    fn parse_s_iff(&mut self) -> TxResult<SFormula> {
        let lhs = self.parse_s_implies()?;
        if *self.peek() == Tok::DArrow {
            self.bump();
            let rhs = self.parse_s_iff()?;
            return Ok(SFormula::Iff(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_s_implies(&mut self) -> TxResult<SFormula> {
        let lhs = self.parse_s_or()?;
        if *self.peek() == Tok::Arrow {
            self.bump();
            let rhs = self.parse_s_implies()?;
            return Ok(SFormula::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_s_or(&mut self) -> TxResult<SFormula> {
        let mut lhs = self.parse_s_and()?;
        while *self.peek() == Tok::Bar || self.is_ident("or") {
            self.bump();
            let rhs = self.parse_s_and()?;
            lhs = SFormula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_s_and(&mut self) -> TxResult<SFormula> {
        let mut lhs = self.parse_s_unary()?;
        while *self.peek() == Tok::Amp || self.is_ident("and") {
            self.bump();
            let rhs = self.parse_s_unary()?;
            lhs = SFormula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_s_unary(&mut self) -> TxResult<SFormula> {
        if *self.peek() == Tok::Bang || self.is_ident("not") {
            self.bump();
            let inner = self.parse_s_unary()?;
            return Ok(SFormula::Not(Box::new(inner)));
        }
        if self.is_ident("forall") || self.is_ident("exists") {
            return self.parse_sformula();
        }
        if self.is_ident("true") {
            self.bump();
            return Ok(SFormula::True);
        }
        if self.is_ident("false") {
            self.bump();
            return Ok(SFormula::False);
        }
        // Parenthesized formula vs parenthesized term: try formula first
        // by lookahead — cheapest is backtracking on position.
        if *self.peek() == Tok::LParen {
            let save = self.pos;
            self.bump();
            if let Ok(f) = self.parse_sformula() {
                if *self.peek() == Tok::RParen {
                    self.bump();
                    // Could still be the start of a comparison like
                    // "(a) = b" — only accept as formula if no cmp follows.
                    if !self.starts_cmp() {
                        return Ok(f);
                    }
                }
            }
            self.pos = save;
            self.pending_holds = None;
        }
        self.parse_s_atom()
    }

    fn starts_cmp(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge
        ) || self.is_ident("in")
            || self.is_ident("subset")
    }

    fn parse_s_atom(&mut self) -> TxResult<SFormula> {
        let lhs = self.parse_sterm()?;
        // `s::(p)` — truth evaluation — is handled in parse_sterm's
        // postfix loop, which returns a marker via SHolds; see below.
        if let Some(f) = self.pending_holds.take() {
            // `::` was consumed during term parsing
            return Ok(f);
        }
        match self.peek().clone() {
            Tok::Eq => {
                self.bump();
                Ok(SFormula::Cmp(CmpOp::Eq, lhs, self.parse_sterm()?))
            }
            Tok::Ne => {
                self.bump();
                Ok(SFormula::Cmp(CmpOp::Ne, lhs, self.parse_sterm()?))
            }
            Tok::Lt => {
                self.bump();
                Ok(SFormula::Cmp(CmpOp::Lt, lhs, self.parse_sterm()?))
            }
            Tok::Le => {
                self.bump();
                Ok(SFormula::Cmp(CmpOp::Le, lhs, self.parse_sterm()?))
            }
            Tok::Gt => {
                self.bump();
                Ok(SFormula::Cmp(CmpOp::Gt, lhs, self.parse_sterm()?))
            }
            Tok::Ge => {
                self.bump();
                Ok(SFormula::Cmp(CmpOp::Ge, lhs, self.parse_sterm()?))
            }
            Tok::Ident(ref s) if s == "in" => {
                self.bump();
                Ok(SFormula::Member(lhs, self.parse_sterm()?))
            }
            Tok::Ident(ref s) if s == "subset" => {
                self.bump();
                Ok(SFormula::Subset(lhs, self.parse_sterm()?))
            }
            _ => self.err("expected a comparison, 'in', 'subset', or '::' after term"),
        }
    }

    // ---------- s-terms ----------

    fn parse_sterm(&mut self) -> TxResult<STerm> {
        let mut lhs = self.parse_sterm_mul()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    let rhs = self.parse_sterm_mul()?;
                    lhs = STerm::App(Op::Add, vec![lhs, rhs]);
                }
                Tok::Minus => {
                    self.bump();
                    let rhs = self.parse_sterm_mul()?;
                    lhs = STerm::App(Op::Monus, vec![lhs, rhs]);
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn parse_sterm_mul(&mut self) -> TxResult<STerm> {
        let mut lhs = self.parse_sterm_postfix()?;
        while *self.peek() == Tok::Star {
            self.bump();
            let rhs = self.parse_sterm_postfix()?;
            lhs = STerm::App(Op::Mul, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    /// Postfix situational functions: `:` (eval-object), `;` (eval-state),
    /// `::` (holds; recorded in `pending_holds`).
    fn parse_sterm_postfix(&mut self) -> TxResult<STerm> {
        let mut t = self.parse_sterm_primary()?;
        loop {
            match self.peek() {
                Tok::Colon => {
                    self.bump();
                    let e = self.parse_fterm_postfixless()?;
                    t = STerm::EvalObj(Box::new(t), Box::new(e));
                }
                Tok::Semi => {
                    self.bump();
                    let e = self.parse_fterm_postfixless()?;
                    t = STerm::EvalState(Box::new(t), Box::new(e));
                }
                Tok::ColonColon => {
                    self.bump();
                    self.expect(Tok::LParen, "'(' after '::'")?;
                    let p = self.parse_fformula()?;
                    self.expect(Tok::RParen, "')' closing '::(...)'")?;
                    self.pending_holds = Some(SFormula::Holds(t.clone(), p));
                    return Ok(t);
                }
                _ => break,
            }
        }
        Ok(t)
    }

    fn parse_sterm_primary(&mut self) -> TxResult<STerm> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(STerm::Nat(n))
            }
            Tok::Quoted(s) => {
                self.bump();
                Ok(STerm::Str(Symbol::new(&s)))
            }
            Tok::LParen => {
                self.bump();
                let t = self.parse_sterm()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(t)
            }
            Tok::LBrace => {
                self.bump();
                let (binders, bar_pos, after_dot) = self.setformer_binders()?;
                let (head, cond) = self.with_binders(&binders.clone(), |p| {
                    let head = p.parse_sterm()?;
                    if p.pos != bar_pos {
                        return p.err("unexpected tokens before '|' in set former");
                    }
                    p.pos = after_dot;
                    let cond = p.parse_sformula()?;
                    Ok((head, cond))
                })?;
                self.expect(Tok::RBrace, "'}' closing set former")?;
                Ok(STerm::SetFormer {
                    head: Box::new(head),
                    vars: binders,
                    cond: Box::new(cond),
                })
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "sum" | "size" | "max" | "min" | "union" | "inter" | "diff" | "product" => {
                        let op = match name.as_str() {
                            "sum" => Op::Sum,
                            "size" => Op::Size,
                            "max" => Op::Max,
                            "min" => Op::Min,
                            "union" => Op::Union,
                            "inter" => Op::Inter,
                            "diff" => Op::Diff,
                            _ => Op::Product,
                        };
                        self.expect(Tok::LParen, "'(' after operator")?;
                        let mut args = vec![self.parse_sterm()?];
                        while *self.peek() == Tok::Comma {
                            self.bump();
                            args.push(self.parse_sterm()?);
                        }
                        self.expect(Tok::RParen, "')'")?;
                        if args.len() != op.arity() {
                            return self.err(format!(
                                "{op} takes {} arguments, got {}",
                                op.arity(),
                                args.len()
                            ));
                        }
                        Ok(STerm::App(op, args))
                    }
                    "tuple" => {
                        self.expect(Tok::LParen, "'(' after tuple")?;
                        let mut args = Vec::new();
                        if *self.peek() != Tok::RParen {
                            args.push(self.parse_sterm()?);
                            while *self.peek() == Tok::Comma {
                                self.bump();
                                args.push(self.parse_sterm()?);
                            }
                        }
                        self.expect(Tok::RParen, "')'")?;
                        Ok(STerm::TupleCons(args))
                    }
                    "id" => {
                        self.expect(Tok::LParen, "'(' after id")?;
                        let t = self.parse_sterm()?;
                        self.expect(Tok::RParen, "')'")?;
                        Ok(STerm::IdOf(Box::new(t)))
                    }
                    "select" => {
                        self.expect(Tok::LParen, "'(' after select")?;
                        let t = self.parse_sterm()?;
                        self.expect(Tok::Comma, "','")?;
                        let i = match self.bump() {
                            Tok::Int(n) => n as usize,
                            other => return self.err(format!("expected index, found {other:?}")),
                        };
                        self.expect(Tok::RParen, "')'")?;
                        Ok(STerm::Select(Box::new(t), i))
                    }
                    _ => {
                        if let Some(&v) = self.scope.get(&name) {
                            // Fluent atom variables are rigid and usable
                            // at the s-level; other fluent variables are
                            // not s-terms.
                            if v.class == VarClass::Fluent
                                && v.sort != Sort::ATOM
                                && v.sort != Sort::State
                            {
                                return self.err(format!(
                                    "fluent variable {name} must be evaluated at a state \
                                     (write s:{name})"
                                ));
                            }
                            if v.class == VarClass::Fluent && v.sort == Sort::State {
                                return self.err(format!(
                                    "transaction variable {name} must be applied to a state \
                                     (write s;{name})"
                                ));
                            }
                            return Ok(STerm::Var(v));
                        }
                        if *self.peek() == Tok::LParen {
                            // attribute selection or user function
                            self.bump();
                            let mut args = vec![self.parse_sterm()?];
                            while *self.peek() == Tok::Comma {
                                self.bump();
                                args.push(self.parse_sterm()?);
                            }
                            self.expect(Tok::RParen, "')'")?;
                            if args.len() == 1 {
                                let arg = args.pop().expect("one arg");
                                return Ok(STerm::Attr(Symbol::new(&name), Box::new(arg)));
                            }
                            return Ok(STerm::UserApp(Symbol::new(&name), args));
                        }
                        self.err(format!("unknown identifier {name} in s-term position"))
                    }
                }
            }
            other => self.err(format!("unexpected {other:?} in s-term position")),
        }
    }

    // ---------- f-formulas ----------

    fn parse_fformula(&mut self) -> TxResult<FFormula> {
        if self.is_ident("forall") || self.is_ident("exists") {
            let is_forall = self.is_ident("forall");
            self.bump();
            let mut binders = vec![self.parse_binder()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                binders.push(self.parse_binder()?);
            }
            self.expect(Tok::Dot, "'.' after binders")?;
            let body = self.with_binders(&binders.clone(), |p| p.parse_fformula())?;
            let mut out = body;
            for v in binders.into_iter().rev() {
                out = if is_forall {
                    FFormula::Forall(v, Box::new(out))
                } else {
                    FFormula::Exists(v, Box::new(out))
                };
            }
            return Ok(out);
        }
        self.parse_f_iff()
    }

    fn parse_f_iff(&mut self) -> TxResult<FFormula> {
        let lhs = self.parse_f_implies()?;
        if *self.peek() == Tok::DArrow {
            self.bump();
            let rhs = self.parse_f_iff()?;
            return Ok(FFormula::Iff(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_f_implies(&mut self) -> TxResult<FFormula> {
        let lhs = self.parse_f_or()?;
        if *self.peek() == Tok::Arrow {
            self.bump();
            let rhs = self.parse_f_implies()?;
            return Ok(FFormula::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_f_or(&mut self) -> TxResult<FFormula> {
        let mut lhs = self.parse_f_and()?;
        while *self.peek() == Tok::Bar || self.is_ident("or") {
            // inside foreach/setformer, '|' only appears as a separator
            // *before* a binder list; disjunction always sits between two
            // formulas, so this is unambiguous where we call it.
            self.bump();
            let rhs = self.parse_f_and()?;
            lhs = FFormula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_f_and(&mut self) -> TxResult<FFormula> {
        let mut lhs = self.parse_f_unary()?;
        while *self.peek() == Tok::Amp || self.is_ident("and") {
            self.bump();
            let rhs = self.parse_f_unary()?;
            lhs = FFormula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_f_unary(&mut self) -> TxResult<FFormula> {
        if *self.peek() == Tok::Bang || self.is_ident("not") {
            self.bump();
            let inner = self.parse_f_unary()?;
            return Ok(FFormula::Not(Box::new(inner)));
        }
        if self.is_ident("forall") || self.is_ident("exists") {
            return self.parse_fformula();
        }
        if self.is_ident("true") {
            self.bump();
            return Ok(FFormula::True);
        }
        if self.is_ident("false") {
            self.bump();
            return Ok(FFormula::False);
        }
        if *self.peek() == Tok::LParen {
            let save = self.pos;
            self.bump();
            if let Ok(f) = self.parse_fformula() {
                if *self.peek() == Tok::RParen {
                    self.bump();
                    if !self.starts_cmp() {
                        return Ok(f);
                    }
                }
            }
            self.pos = save;
        }
        self.parse_f_atom()
    }

    fn parse_f_atom(&mut self) -> TxResult<FFormula> {
        let lhs = self.parse_fterm()?;
        match self.peek().clone() {
            Tok::Eq => {
                self.bump();
                Ok(FFormula::Cmp(CmpOp::Eq, lhs, self.parse_fterm()?))
            }
            Tok::Ne => {
                self.bump();
                Ok(FFormula::Cmp(CmpOp::Ne, lhs, self.parse_fterm()?))
            }
            Tok::Lt => {
                self.bump();
                Ok(FFormula::Cmp(CmpOp::Lt, lhs, self.parse_fterm()?))
            }
            Tok::Le => {
                self.bump();
                Ok(FFormula::Cmp(CmpOp::Le, lhs, self.parse_fterm()?))
            }
            Tok::Gt => {
                self.bump();
                Ok(FFormula::Cmp(CmpOp::Gt, lhs, self.parse_fterm()?))
            }
            Tok::Ge => {
                self.bump();
                Ok(FFormula::Cmp(CmpOp::Ge, lhs, self.parse_fterm()?))
            }
            Tok::Ident(ref s) if s == "in" => {
                self.bump();
                Ok(FFormula::Member(lhs, self.parse_fterm()?))
            }
            Tok::Ident(ref s) if s == "subset" => {
                self.bump();
                Ok(FFormula::Subset(lhs, self.parse_fterm()?))
            }
            _ => self.err("expected a comparison, 'in', or 'subset' in fluent formula"),
        }
    }

    // ---------- f-terms ----------

    /// Full f-term including `;;` composition at lowest precedence.
    fn parse_fterm_seq(&mut self) -> TxResult<FTerm> {
        let mut lhs = self.parse_fterm()?;
        while *self.peek() == Tok::SemiSemi {
            self.bump();
            let rhs = self.parse_fterm()?;
            lhs = FTerm::Seq(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_fterm(&mut self) -> TxResult<FTerm> {
        let mut lhs = self.parse_fterm_mul()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    let rhs = self.parse_fterm_mul()?;
                    lhs = FTerm::App(Op::Add, vec![lhs, rhs]);
                }
                Tok::Minus => {
                    self.bump();
                    let rhs = self.parse_fterm_mul()?;
                    lhs = FTerm::App(Op::Monus, vec![lhs, rhs]);
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn parse_fterm_mul(&mut self) -> TxResult<FTerm> {
        let mut lhs = self.parse_fterm_primary()?;
        while *self.peek() == Tok::Star {
            self.bump();
            let rhs = self.parse_fterm_primary()?;
            lhs = FTerm::App(Op::Mul, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    /// An f-term without trailing arithmetic — used directly after
    /// `:` / `;` so that `s:salary(e) - 100` parses as `(s:salary(e)) - 100`
    /// at the s-level rather than swallowing `- 100` into the fluent.
    fn parse_fterm_postfixless(&mut self) -> TxResult<FTerm> {
        self.parse_fterm_primary()
    }

    fn parse_fterm_primary(&mut self) -> TxResult<FTerm> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(FTerm::Nat(n))
            }
            Tok::Quoted(s) => {
                self.bump();
                Ok(FTerm::Str(Symbol::new(&s)))
            }
            Tok::LParen => {
                self.bump();
                let t = self.parse_fterm_seq()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(t)
            }
            Tok::LBrace => {
                self.bump();
                let (binders, bar_pos, after_dot) = self.setformer_binders()?;
                let (head, cond) = self.with_binders(&binders.clone(), |p| {
                    let head = p.parse_fterm()?;
                    if p.pos != bar_pos {
                        return p.err("unexpected tokens before '|' in set former");
                    }
                    p.pos = after_dot;
                    let cond = p.parse_fformula()?;
                    Ok((head, cond))
                })?;
                self.expect(Tok::RBrace, "'}' closing set former")?;
                Ok(FTerm::SetFormer {
                    head: Box::new(head),
                    vars: binders,
                    cond: Box::new(cond),
                })
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "skip" | "Λ" | "nil" => Ok(FTerm::Identity),
                    "if" => {
                        let p = self.parse_fformula()?;
                        if !self.eat_ident("then") {
                            return self.err("expected 'then'");
                        }
                        let a = self.parse_fterm_seq()?;
                        if !self.eat_ident("else") {
                            return self.err("expected 'else'");
                        }
                        let b = self.parse_fterm_seq()?;
                        Ok(FTerm::Cond(Box::new(p), Box::new(a), Box::new(b)))
                    }
                    "foreach" => {
                        let binder = self.parse_binder()?;
                        self.expect(Tok::Bar, "'|' after foreach binder")?;
                        let (p, body) = self.with_binders(&[binder], |pr| {
                            let p = pr.parse_fformula()?;
                            if !pr.eat_ident("do") {
                                return pr.err("expected 'do'");
                            }
                            let body = pr.parse_fterm_seq()?;
                            Ok((p, body))
                        })?;
                        if !self.eat_ident("end") {
                            return self.err("expected 'end' closing foreach");
                        }
                        Ok(FTerm::Foreach(binder, Box::new(p), Box::new(body)))
                    }
                    "insert" | "delete" => {
                        self.expect(Tok::LParen, "'('")?;
                        let t = self.parse_fterm()?;
                        self.expect(Tok::Comma, "','")?;
                        let rel = match self.bump() {
                            Tok::Ident(r) => r,
                            other => {
                                return self.err(format!("expected relation name, found {other:?}"))
                            }
                        };
                        self.expect(Tok::RParen, "')'")?;
                        let rel = Symbol::new(&rel);
                        if name == "insert" {
                            Ok(FTerm::Insert(Box::new(t), rel))
                        } else {
                            Ok(FTerm::Delete(Box::new(t), rel))
                        }
                    }
                    "modify" => {
                        self.expect(Tok::LParen, "'('")?;
                        let t = self.parse_fterm()?;
                        self.expect(Tok::Comma, "','")?;
                        let attr = self.bump();
                        self.expect(Tok::Comma, "','")?;
                        let v = self.parse_fterm()?;
                        self.expect(Tok::RParen, "')'")?;
                        match attr {
                            Tok::Int(i) => Ok(FTerm::Modify(Box::new(t), i as usize, Box::new(v))),
                            Tok::Ident(a) => {
                                Ok(FTerm::ModifyAttr(Box::new(t), Symbol::new(&a), Box::new(v)))
                            }
                            other => self.err(format!("expected attribute, found {other:?}")),
                        }
                    }
                    "assign" => {
                        self.expect(Tok::LParen, "'('")?;
                        let rel = match self.bump() {
                            Tok::Ident(r) => r,
                            other => {
                                return self.err(format!("expected relation name, found {other:?}"))
                            }
                        };
                        self.expect(Tok::Comma, "','")?;
                        let set = self.parse_fterm()?;
                        self.expect(Tok::RParen, "')'")?;
                        Ok(FTerm::Assign(Symbol::new(&rel), Box::new(set)))
                    }
                    "sum" | "size" | "max" | "min" | "union" | "inter" | "diff" | "product" => {
                        let op = match name.as_str() {
                            "sum" => Op::Sum,
                            "size" => Op::Size,
                            "max" => Op::Max,
                            "min" => Op::Min,
                            "union" => Op::Union,
                            "inter" => Op::Inter,
                            "diff" => Op::Diff,
                            _ => Op::Product,
                        };
                        self.expect(Tok::LParen, "'(' after operator")?;
                        let mut args = vec![self.parse_fterm()?];
                        while *self.peek() == Tok::Comma {
                            self.bump();
                            args.push(self.parse_fterm()?);
                        }
                        self.expect(Tok::RParen, "')'")?;
                        if args.len() != op.arity() {
                            return self.err(format!(
                                "{op} takes {} arguments, got {}",
                                op.arity(),
                                args.len()
                            ));
                        }
                        Ok(FTerm::App(op, args))
                    }
                    "tuple" => {
                        self.expect(Tok::LParen, "'(' after tuple")?;
                        let mut args = Vec::new();
                        if *self.peek() != Tok::RParen {
                            args.push(self.parse_fterm()?);
                            while *self.peek() == Tok::Comma {
                                self.bump();
                                args.push(self.parse_fterm()?);
                            }
                        }
                        self.expect(Tok::RParen, "')'")?;
                        Ok(FTerm::TupleCons(args))
                    }
                    "id" => {
                        self.expect(Tok::LParen, "'(' after id")?;
                        let t = self.parse_fterm()?;
                        self.expect(Tok::RParen, "')'")?;
                        Ok(FTerm::IdOf(Box::new(t)))
                    }
                    "select" => {
                        self.expect(Tok::LParen, "'(' after select")?;
                        let t = self.parse_fterm()?;
                        self.expect(Tok::Comma, "','")?;
                        let i = match self.bump() {
                            Tok::Int(n) => n as usize,
                            other => return self.err(format!("expected index, found {other:?}")),
                        };
                        self.expect(Tok::RParen, "')'")?;
                        Ok(FTerm::Select(Box::new(t), i))
                    }
                    _ => {
                        let sym = Symbol::new(&name);
                        if let Some(&v) = self.scope.get(&name) {
                            if v.class == VarClass::Situational && v.sort != Sort::ATOM {
                                return self.err(format!(
                                    "situational variable {name} cannot occur inside a fluent"
                                ));
                            }
                            return Ok(FTerm::Var(v));
                        }
                        if self.ctx.relations.contains(&sym) {
                            return Ok(FTerm::Rel(sym));
                        }
                        if *self.peek() == Tok::LParen {
                            self.bump();
                            let mut args = vec![self.parse_fterm()?];
                            while *self.peek() == Tok::Comma {
                                self.bump();
                                args.push(self.parse_fterm()?);
                            }
                            self.expect(Tok::RParen, "')'")?;
                            if args.len() == 1 {
                                let arg = args.pop().expect("one arg");
                                return Ok(FTerm::Attr(sym, Box::new(arg)));
                            }
                            return Ok(FTerm::UserApp(sym, args));
                        }
                        self.err(format!("unknown identifier {name} in f-term position"))
                    }
                }
            }
            other => self.err(format!("unexpected {other:?} in f-term position")),
        }
    }
}

impl Parser<'_> {
    fn finish(&mut self) -> TxResult<()> {
        if *self.peek() != Tok::Eof {
            return self.err(format!("trailing input: {:?}", self.peek()));
        }
        Ok(())
    }
}

/// Parse a closed s-formula (an integrity constraint or axiom).
pub fn parse_sformula(src: &str, ctx: &ParseCtx) -> TxResult<SFormula> {
    let mut p = Parser::new(src, ctx)?;
    let f = p.parse_sformula()?;
    p.finish()?;
    Ok(f)
}

/// Parse an s-formula with free parameters already in scope.
pub fn parse_sformula_with_params(src: &str, ctx: &ParseCtx, params: &[Var]) -> TxResult<SFormula> {
    let mut p = Parser::new(src, ctx)?;
    for v in params {
        p.scope.insert(Parser::scope_key(*v), *v);
    }
    let f = p.parse_sformula()?;
    p.finish()?;
    Ok(f)
}

/// Parse an f-term (a transaction or query) with the given parameters in
/// scope — Definition 3's database program `Tr(x̄)`.
pub fn parse_fterm(src: &str, ctx: &ParseCtx, params: &[Var]) -> TxResult<FTerm> {
    let mut p = Parser::new(src, ctx)?;
    for v in params {
        p.scope.insert(Parser::scope_key(*v), *v);
    }
    let t = p.parse_fterm_seq()?;
    p.finish()?;
    Ok(t)
}

/// Parse an f-formula with parameters (used for conditions in isolation).
pub fn parse_fformula(src: &str, ctx: &ParseCtx, params: &[Var]) -> TxResult<FFormula> {
    let mut p = Parser::new(src, ctx)?;
    for v in params {
        p.scope.insert(Parser::scope_key(*v), *v);
    }
    let f = p.parse_fformula()?;
    p.finish()?;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ParseCtx {
        ParseCtx::with_relations(&["EMP", "DEPT", "PROJ", "ALLOC", "SKILL", "E", "R", "S"])
    }

    #[test]
    fn parse_static_constraint_example1() {
        let src = "forall s: state, e': 5tup .
            e' in s:EMP -> exists a': 3tup .
              a' in s:ALLOC & e-name(e') = a-emp(a')";
        let f = parse_sformula(src, &ctx()).unwrap();
        let text = f.to_string();
        assert!(text.contains("s:EMP"));
        assert!(text.contains("e-name(e')"));
    }

    #[test]
    fn parse_sum_constraint() {
        let src = "forall s: state, e': 5tup .
            e' in s:EMP ->
              sum({ perc(a') | a': 3tup . a' in s:ALLOC & a-emp(a') = e-name(e') }) <= 100";
        let f = parse_sformula(src, &ctx()).unwrap();
        assert!(f.to_string().contains("sum("));
    }

    #[test]
    fn parse_transaction_constraint_with_eval() {
        // Example 3's skill-retention shape
        let src = "forall s: state, t: tx, e: 5tup, k: 2tup .
            (s:e in s:EMP & (s;t):e in (s;t):EMP & s:k in s:SKILL)
              -> (s;t):k in (s;t):SKILL";
        let f = parse_sformula(src, &ctx()).unwrap();
        let text = f.to_string();
        assert!(text.contains("(s;t):e"));
        assert!(text.contains("(s;t):SKILL"));
    }

    #[test]
    fn parse_holds() {
        let src = "forall s: state . s::(exists e: 5tup . e in EMP)";
        let f = parse_sformula(src, &ctx()).unwrap();
        assert!(matches!(
            f,
            SFormula::Forall(_, ref body) if matches!(**body, SFormula::Holds(..))
        ));
    }

    #[test]
    fn parse_cancel_project_transaction() {
        let p = Var::tup_f("p", 2);
        let v = Var::atom_f("v");
        let src = "
            assign(E, { a-emp(a) | a: 3tup . a in ALLOC & a-proj(a) = p-name(p) }) ;;
            foreach a: 3tup | a in ALLOC & a-proj(a) = p-name(p) do
              delete(a, ALLOC)
            end ;;
            delete(p, PROJ) ;;
            foreach e: 5tup | e in EMP & tuple(e-name(e)) in E do
              if exists a: 3tup . a in ALLOC & a-emp(a) = e-name(e)
              then modify(e, 3, salary(e) - v)
              else delete(e, EMP)
            end";
        let t = parse_fterm(src, &ctx(), &[p, v]).unwrap();
        let text = t.to_string();
        assert!(text.contains("assign(E"));
        assert!(text.contains("delete(p, PROJ)"));
        assert!(text.contains("modify(e, 3, (salary(e) - v))"));
    }

    #[test]
    fn parse_if_and_identity() {
        let t = parse_fterm("if true then skip else skip", &ctx(), &[]).unwrap();
        assert!(matches!(t, FTerm::Cond(..)));
        let t = parse_fterm("skip ;; skip", &ctx(), &[]).unwrap();
        assert!(matches!(t, FTerm::Seq(..)));
    }

    #[test]
    fn quoted_atoms_and_primes_coexist() {
        let src = "forall s: state, e': 5tup .
            e' in s:EMP -> m-status(e') != 'S'";
        let f = parse_sformula(src, &ctx()).unwrap();
        assert!(f.to_string().contains("'S'"));
    }

    #[test]
    fn state_equality_example4() {
        let src = "forall s: state, t1: tx . exists t2: tx . s = (s;t1);t2";
        let f = parse_sformula(src, &ctx()).unwrap();
        assert!(f.to_string().contains("(s;t1);t2"));
    }

    #[test]
    fn reject_fluent_tuple_var_at_s_level() {
        let src = "forall s: state, e: 5tup . e in s:EMP";
        assert!(parse_sformula(src, &ctx()).is_err());
    }

    #[test]
    fn reject_situational_var_in_fluent() {
        let src = "forall s: state, e': 5tup . s::(e' in EMP)";
        assert!(parse_sformula(src, &ctx()).is_err());
    }

    #[test]
    fn reject_unknown_identifier() {
        assert!(parse_fterm("mystery", &ctx(), &[]).is_err());
    }

    #[test]
    fn parse_error_carries_position() {
        let err = parse_sformula("forall s: state .\n  s ???", &ctx()).unwrap_err();
        match err {
            TxError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_fterm("skip skip", &ctx(), &[]).is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let src = "-- a comment\nskip -- another\n;; skip";
        let t = parse_fterm(src, &ctx(), &[]).unwrap();
        assert!(matches!(t, FTerm::Seq(..)));
    }

    #[test]
    fn arithmetic_precedence() {
        let v = Var::atom_f("v");
        let t = parse_fterm("1 + 2 * v", &ctx(), &[v]).unwrap();
        assert_eq!(t.to_string(), "(1 + (2 * v))");
    }

    #[test]
    fn atom_param_usable_both_levels() {
        let v = Var::atom_f("v");
        // f-level
        assert!(parse_fterm("v + 1", &ctx(), &[v]).is_ok());
        // s-level
        let f = parse_sformula_with_params("v = 3", &ctx(), &[v]).unwrap();
        assert_eq!(f.to_string(), "v = 3");
    }
}
