//! The many-sorted sort system.
//!
//! Section 2 distinguishes two *classes* of sorts — situational and fluent —
//! each with five *types*: the state sort, the atom sort (naturals), n-ary
//! tuple sorts, finite n-ary set sorts, and the identifier sorts (n-ary
//! tuple identifiers and n-ary set identifiers). Every fluent sort has an
//! associated situational sort and vice versa; we therefore represent the
//! *type* once ([`Sort`]) and record the *class* on variables
//! ([`VarClass`]).
//!
//! The class distinction matters semantically:
//!
//! * A **situational** variable (written primed in the paper: `e'`, `a'`)
//!   denotes a particular value — a tuple value, a state, a number.
//! * A **fluent** variable (unprimed: `e`, `t`) denotes a mapping from
//!   states to values and must be evaluated at a state (`s : e`) to yield
//!   one. In finite models, a tuple-sorted fluent variable ranges over
//!   tuple *identities* (so `s:e` and `s;t:e` track "the same employee"
//!   across states — exactly how Examples 2–4 use them), and a state-sorted
//!   fluent variable ranges over *transactions* (arc labels), so `s ; t` is
//!   a reachability step.

use std::fmt;
use txlog_base::Symbol;

/// The object sorts (everything except the state sort).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjSort {
    /// The atom sort: natural numbers (and their readable symbolic coding).
    Atom,
    /// The n-ary tuple sort `ntup`.
    Tup(usize),
    /// The finite n-ary set sort `nset`.
    Set(usize),
    /// The n-ary tuple identifier sort `nt-id`.
    TupId(usize),
    /// The n-ary set identifier sort `ns-id`.
    SetId(usize),
    /// The truth-value sort (used internally for formula sorting; the
    /// paper keeps formulas separate from terms, as do we — this sort
    /// never appears on a variable).
    Bool,
}

impl fmt::Display for ObjSort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjSort::Atom => write!(f, "atom"),
            ObjSort::Tup(n) => write!(f, "{n}tup"),
            ObjSort::Set(n) => write!(f, "{n}set"),
            ObjSort::TupId(n) => write!(f, "{n}t-id"),
            ObjSort::SetId(n) => write!(f, "{n}s-id"),
            ObjSort::Bool => write!(f, "bool"),
        }
    }
}

impl fmt::Debug for ObjSort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The sort of a term: the state sort or an object sort.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// The state sort.
    State,
    /// An object sort.
    Obj(ObjSort),
}

impl Sort {
    /// The atom sort, for brevity.
    pub const ATOM: Sort = Sort::Obj(ObjSort::Atom);

    /// The n-ary tuple sort.
    pub fn tup(n: usize) -> Sort {
        Sort::Obj(ObjSort::Tup(n))
    }

    /// The n-ary set sort.
    pub fn set(n: usize) -> Sort {
        Sort::Obj(ObjSort::Set(n))
    }

    /// True iff this is the state sort.
    pub fn is_state(self) -> bool {
        matches!(self, Sort::State)
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::State => write!(f, "state"),
            Sort::Obj(o) => write!(f, "{o}"),
        }
    }
}

impl fmt::Debug for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Whether a variable is situational (denotes a value) or fluent (denotes
/// a mapping from states to values).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum VarClass {
    /// A situational variable — written primed in the paper (`e'`).
    Situational,
    /// A fluent variable — written unprimed (`e`, `t`).
    Fluent,
}

/// A sorted, classed variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var {
    /// The variable's name (without the prime; the prime is the display
    /// convention for situational class).
    pub name: Symbol,
    /// The sort of values this variable ranges over.
    pub sort: Sort,
    /// Situational or fluent.
    pub class: VarClass,
}

impl Var {
    /// A situational state variable (e.g. the `s` of `∀_state' s`).
    ///
    /// Note the paper's state quantifiers `(∀_state' s)` are situational:
    /// they range over *states*. State-sorted *fluent* variables (the `t`
    /// of `s ; t`) range over *transactions*.
    pub fn state(name: &str) -> Var {
        Var {
            name: Symbol::new(name),
            sort: Sort::State,
            class: VarClass::Situational,
        }
    }

    /// A state-sorted fluent variable — ranges over transactions.
    pub fn transaction(name: &str) -> Var {
        Var {
            name: Symbol::new(name),
            sort: Sort::State,
            class: VarClass::Fluent,
        }
    }

    /// A situational tuple variable of the given arity (the paper's
    /// primed `e'`).
    pub fn tup_s(name: &str, arity: usize) -> Var {
        Var {
            name: Symbol::new(name),
            sort: Sort::tup(arity),
            class: VarClass::Situational,
        }
    }

    /// A fluent tuple variable of the given arity (the paper's unprimed
    /// `e` in `s : e`) — ranges over tuple identities.
    pub fn tup_f(name: &str, arity: usize) -> Var {
        Var {
            name: Symbol::new(name),
            sort: Sort::tup(arity),
            class: VarClass::Fluent,
        }
    }

    /// A situational atom variable.
    pub fn atom_s(name: &str) -> Var {
        Var {
            name: Symbol::new(name),
            sort: Sort::ATOM,
            class: VarClass::Situational,
        }
    }

    /// A fluent atom variable (rigid: atoms do not vary with state, but
    /// the class still governs where the variable may occur).
    pub fn atom_f(name: &str) -> Var {
        Var {
            name: Symbol::new(name),
            sort: Sort::ATOM,
            class: VarClass::Fluent,
        }
    }

    /// True for situational class.
    pub fn is_situational(self) -> bool {
        self.class == VarClass::Situational
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            VarClass::Situational if self.sort != Sort::State => write!(f, "{}'", self.name),
            _ => write!(f, "{}", self.name),
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self, self.sort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_display() {
        assert_eq!(Sort::State.to_string(), "state");
        assert_eq!(Sort::ATOM.to_string(), "atom");
        assert_eq!(Sort::tup(5).to_string(), "5tup");
        assert_eq!(Sort::set(2).to_string(), "2set");
        assert_eq!(Sort::Obj(ObjSort::TupId(3)).to_string(), "3t-id");
        assert_eq!(Sort::Obj(ObjSort::SetId(2)).to_string(), "2s-id");
    }

    #[test]
    fn situational_tuple_vars_display_primed() {
        assert_eq!(Var::tup_s("e", 5).to_string(), "e'");
        assert_eq!(Var::tup_f("e", 5).to_string(), "e");
        // state variables are conventionally unprimed even when situational
        assert_eq!(Var::state("s").to_string(), "s");
        assert_eq!(Var::transaction("t").to_string(), "t");
    }

    #[test]
    fn variables_distinguish_class_and_sort() {
        let a = Var::tup_s("e", 5);
        let b = Var::tup_f("e", 5);
        let c = Var::tup_s("e", 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Var::tup_s("e", 5));
    }

    #[test]
    fn state_sort_predicate() {
        assert!(Sort::State.is_state());
        assert!(!Sort::ATOM.is_state());
        assert!(Var::state("s").is_situational());
        assert!(!Var::transaction("t").is_situational());
    }
}
