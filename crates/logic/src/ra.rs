//! Relational-algebra sugar: derived query builders.
//!
//! Definition 3 splits database programs into transactions (state sort)
//! and **queries** (object sort). The paper's query vocabulary is set
//! formers plus the set functions; classical relational algebra is
//! definable from it, and this module provides the definitions as
//! f-term builders, so downstream code can write `select`/`project`/
//! `join` instead of spelling the set formers out:
//!
//! * `σ_p(R)`   = `{ x | x ∈ R ∧ p(x) }`
//! * `π_attrs(R)` = `{ tuple(a₁(x), …, aₖ(x)) | x ∈ R }`
//! * `R ⋈_{a=b} S` = `{ tuple(…x…, …y…) | x ∈ R ∧ y ∈ S ∧ a(x) = b(y) }`
//! * semijoin, count, aggregate sums over a selected column.
//!
//! Everything returned is an ordinary [`FTerm`]; the engine evaluates it
//! with no special cases, and `sortck` checks it like any other query.

use crate::fluent::{FFormula, FTerm, Op};
use crate::sort::Var;
use txlog_base::Symbol;

/// Fresh bound-variable maker so nested operators do not capture.
fn bound(base: &str, arity: usize, depth: usize) -> Var {
    Var::tup_f(&format!("{base}{depth}"), arity)
}

/// σ: tuples of `rel` (arity `n`) satisfying `pred(x)` for the bound
/// variable handed to `pred`.
pub fn select<F>(rel: &str, n: usize, pred: F) -> FTerm
where
    F: FnOnce(Var) -> FFormula,
{
    let x = bound("σx", n, n);
    let cond = FFormula::member(FTerm::var(x), FTerm::rel(rel)).and(pred(x));
    FTerm::SetFormer {
        head: Box::new(FTerm::var(x)),
        vars: vec![x],
        cond: Box::new(cond),
    }
}

/// π: project `rel` (arity `n`) onto the named attributes.
pub fn project(rel: &str, n: usize, attrs: &[&str]) -> FTerm {
    let x = bound("πx", n, n);
    let head = FTerm::TupleCons(
        attrs
            .iter()
            .map(|a| FTerm::Attr(Symbol::new(a), Box::new(FTerm::var(x))))
            .collect(),
    );
    FTerm::SetFormer {
        head: Box::new(head),
        vars: vec![x],
        cond: Box::new(FFormula::member(FTerm::var(x), FTerm::rel(rel))),
    }
}

/// ⋈: equi-join of `left` (arity `ln`) and `right` (arity `rn`) on
/// `left_attr = right_attr`, projecting the given output attributes
/// (looked up on whichever side declares them — attribute names are
/// globally unique, as the paper's selection sugar presumes).
pub fn equi_join(
    left: &str,
    ln: usize,
    right: &str,
    rn: usize,
    left_attr: &str,
    right_attr: &str,
    output: &[(&str, Side)],
) -> FTerm {
    let x = bound("jx", ln, ln);
    let y = bound("jy", rn, rn);
    let cond = FFormula::member(FTerm::var(x), FTerm::rel(left))
        .and(FFormula::member(FTerm::var(y), FTerm::rel(right)))
        .and(FFormula::eq(
            FTerm::Attr(Symbol::new(left_attr), Box::new(FTerm::var(x))),
            FTerm::Attr(Symbol::new(right_attr), Box::new(FTerm::var(y))),
        ));
    let head = FTerm::TupleCons(
        output
            .iter()
            .map(|(a, side)| {
                let v = match side {
                    Side::Left => x,
                    Side::Right => y,
                };
                FTerm::Attr(Symbol::new(a), Box::new(FTerm::var(v)))
            })
            .collect(),
    );
    FTerm::SetFormer {
        head: Box::new(head),
        vars: vec![x, y],
        cond: Box::new(cond),
    }
}

/// Which join operand an output attribute is read from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The left operand.
    Left,
    /// The right operand.
    Right,
}

/// Semijoin `left ⋉ right` on `left_attr = right_attr`: left tuples with
/// at least one partner.
pub fn semijoin(
    left: &str,
    ln: usize,
    right: &str,
    rn: usize,
    left_attr: &str,
    right_attr: &str,
) -> FTerm {
    let x = bound("sx", ln, ln);
    let y = bound("sy", rn, rn);
    let has_partner = FFormula::exists(
        y,
        FFormula::member(FTerm::var(y), FTerm::rel(right)).and(FFormula::eq(
            FTerm::Attr(Symbol::new(left_attr), Box::new(FTerm::var(x))),
            FTerm::Attr(Symbol::new(right_attr), Box::new(FTerm::var(y))),
        )),
    );
    FTerm::SetFormer {
        head: Box::new(FTerm::var(x)),
        vars: vec![x],
        cond: Box::new(FFormula::member(FTerm::var(x), FTerm::rel(left)).and(has_partner)),
    }
}

/// `size(R)` — cardinality of a relation or any set-valued query.
pub fn count(set: FTerm) -> FTerm {
    FTerm::App(Op::Size, vec![set])
}

/// `sum` of one attribute over the tuples of `rel` satisfying `pred`.
pub fn sum_where<F>(rel: &str, n: usize, attr: &str, pred: F) -> FTerm
where
    F: FnOnce(Var) -> FFormula,
{
    let x = bound("Σx", n, n);
    let cond = FFormula::member(FTerm::var(x), FTerm::rel(rel)).and(pred(x));
    let former = FTerm::SetFormer {
        head: Box::new(FTerm::Attr(Symbol::new(attr), Box::new(FTerm::var(x)))),
        vars: vec![x],
        cond: Box::new(cond),
    };
    FTerm::App(Op::Sum, vec![former])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_shape() {
        let q = select("EMP", 5, |e| {
            FFormula::lt(FTerm::nat(500), FTerm::attr("salary", FTerm::var(e)))
        });
        let text = q.to_string();
        assert!(text.contains("in EMP"), "{text}");
        assert!(text.contains("500 < salary"), "{text}");
    }

    #[test]
    fn project_builds_tuple_head() {
        let q = project("EMP", 5, &["e-name", "salary"]);
        let text = q.to_string();
        assert!(text.starts_with("{ tuple(e-name("), "{text}");
    }

    #[test]
    fn join_mentions_both_relations() {
        let q = equi_join(
            "EMP",
            5,
            "ALLOC",
            3,
            "e-name",
            "a-emp",
            &[("e-name", Side::Left), ("a-proj", Side::Right)],
        );
        let text = q.to_string();
        assert!(text.contains("in EMP"), "{text}");
        assert!(text.contains("in ALLOC"), "{text}");
        assert!(text.contains("e-name(jx5) = a-emp(jy3)"), "{text}");
    }

    #[test]
    fn derived_queries_are_object_sorted() {
        for q in [
            select("EMP", 5, |_| FFormula::True),
            project("EMP", 5, &["salary"]),
            semijoin("EMP", 5, "ALLOC", 3, "e-name", "a-emp"),
            count(FTerm::rel("EMP")),
            sum_where("ALLOC", 3, "perc", |_| FFormula::True),
        ] {
            assert!(!q.is_transaction_shaped(), "{q}");
        }
    }
}
