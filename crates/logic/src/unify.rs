//! Many-sorted first-order unification over s-terms.
//!
//! Used by the deductive-tableau prover's nonclausal resolution rule:
//! two rows resolve on subformulas whose atoms unify. Unification binds
//! **situational variables** to s-terms of the same sort; embedded fluent
//! expressions are treated as rigid structure except that a fluent
//! *variable* unifies with an identical fluent variable only (fluent
//! higher-order unification is deliberately out of scope — the paper's
//! proofs never need it).

use crate::fluent::FTerm;
use crate::situational::STerm;
use crate::sort::{Sort, Var};
use crate::subst::{subst_sterm, SSubst};
use std::collections::HashSet;

/// Attempt to unify `a` and `b` under the pre-existing bindings `sub`,
/// extending `sub` on success. Variables in `frozen` act as constants
/// (used for universally-quantified variables of the goal side).
pub fn unify_sterms(a: &STerm, b: &STerm, sub: &mut SSubst, frozen: &HashSet<Var>) -> bool {
    let a = resolve(a, sub);
    let b = resolve(b, sub);
    match (&a, &b) {
        (STerm::Var(x), STerm::Var(y)) if x == y => true,
        (STerm::Var(x), t) if !frozen.contains(x) => bind(*x, t, sub),
        (t, STerm::Var(y)) if !frozen.contains(y) => bind(*y, t, sub),
        (STerm::Var(_), _) | (_, STerm::Var(_)) => false,
        (STerm::Nat(m), STerm::Nat(n)) => m == n,
        (STerm::Str(p), STerm::Str(q)) => p == q,
        (STerm::EvalObj(w1, e1), STerm::EvalObj(w2, e2))
        | (STerm::EvalState(w1, e1), STerm::EvalState(w2, e2)) => {
            fterm_rigid_eq(e1, e2) && unify_sterms(w1, w2, sub, frozen)
        }
        (STerm::Attr(a1, t1), STerm::Attr(a2, t2)) => a1 == a2 && unify_sterms(t1, t2, sub, frozen),
        (STerm::Select(t1, i1), STerm::Select(t2, i2)) => {
            i1 == i2 && unify_sterms(t1, t2, sub, frozen)
        }
        (STerm::IdOf(t1), STerm::IdOf(t2)) => unify_sterms(t1, t2, sub, frozen),
        (STerm::TupleCons(xs), STerm::TupleCons(ys)) => unify_seq(xs, ys, sub, frozen),
        (STerm::App(o1, xs), STerm::App(o2, ys)) => o1 == o2 && unify_seq(xs, ys, sub, frozen),
        (STerm::UserApp(f1, xs), STerm::UserApp(f2, ys)) => {
            f1 == f2 && unify_seq(xs, ys, sub, frozen)
        }
        // Set formers unify only when syntactically equal (α-equivalence
        // would require renaming machinery the prover does not need).
        (STerm::SetFormer { .. }, STerm::SetFormer { .. }) => a == b,
        _ => false,
    }
}

fn unify_seq(xs: &[STerm], ys: &[STerm], sub: &mut SSubst, frozen: &HashSet<Var>) -> bool {
    xs.len() == ys.len()
        && xs
            .iter()
            .zip(ys)
            .all(|(x, y)| unify_sterms(x, y, sub, frozen))
}

/// Rigid equality on embedded fluent expressions.
fn fterm_rigid_eq(a: &FTerm, b: &FTerm) -> bool {
    a == b
}

/// Walk a term through the current bindings (one level of variable at a
/// time, applying the substitution fully at variable positions).
fn resolve(t: &STerm, sub: &SSubst) -> STerm {
    match t {
        STerm::Var(v) => match sub.get(v) {
            Some(bound) => resolve(&bound.clone(), sub),
            None => t.clone(),
        },
        _ => t.clone(),
    }
}

fn bind(v: Var, t: &STerm, sub: &mut SSubst) -> bool {
    if sort_of(t).is_some_and(|s| s != v.sort) {
        return false;
    }
    if occurs(v, t, sub) {
        return false;
    }
    sub.insert(v, t.clone());
    true
}

/// Occurs check through the current bindings.
fn occurs(v: Var, t: &STerm, sub: &SSubst) -> bool {
    match t {
        STerm::Var(x) => {
            if *x == v {
                return true;
            }
            match sub.get(x) {
                Some(bound) => occurs(v, &bound.clone(), sub),
                None => false,
            }
        }
        STerm::Nat(_) | STerm::Str(_) => false,
        STerm::EvalObj(w, _) | STerm::EvalState(w, _) => occurs(v, w, sub),
        STerm::Attr(_, t) | STerm::Select(t, _) | STerm::IdOf(t) => occurs(v, t, sub),
        STerm::TupleCons(ts) | STerm::App(_, ts) | STerm::UserApp(_, ts) => {
            ts.iter().any(|t| occurs(v, t, sub))
        }
        STerm::SetFormer { head, cond: _, .. } => occurs(v, head, sub),
    }
}

/// Best-effort sort computation for unification's sort discipline. `None`
/// means "unknown" (schema-dependent), which unifies with anything.
pub fn sort_of(t: &STerm) -> Option<Sort> {
    match t {
        STerm::Var(v) => Some(v.sort),
        STerm::Nat(_) | STerm::Str(_) => Some(Sort::ATOM),
        STerm::EvalState(..) => Some(Sort::State),
        STerm::EvalObj(_, e) => e.sort_hint(),
        STerm::Attr(..) | STerm::Select(..) => Some(Sort::ATOM),
        STerm::TupleCons(ts) => Some(Sort::tup(ts.len())),
        STerm::App(op, _) => {
            use crate::fluent::Op;
            match op {
                Op::Add | Op::Monus | Op::Mul | Op::Max | Op::Min | Op::Sum | Op::Size => {
                    Some(Sort::ATOM)
                }
                _ => None,
            }
        }
        STerm::SetFormer { .. } | STerm::IdOf(_) | STerm::UserApp(..) => None,
    }
}

/// Apply the final substitution to a term (full normalization).
pub fn apply(t: &STerm, sub: &SSubst) -> STerm {
    subst_sterm(t, sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluent::FTerm;

    fn s() -> Var {
        Var::state("s")
    }

    fn w() -> Var {
        Var::state("w")
    }

    #[test]
    fn unify_variable_with_term() {
        let mut sub = SSubst::new();
        let frozen = HashSet::new();
        let lhs = STerm::var(s());
        let rhs = STerm::var(w()).eval_state(FTerm::Identity);
        assert!(unify_sterms(&lhs, &rhs, &mut sub, &frozen));
        assert_eq!(apply(&lhs, &sub).to_string(), "w;Λ");
    }

    #[test]
    fn frozen_variables_act_as_constants() {
        let mut sub = SSubst::new();
        let mut frozen = HashSet::new();
        frozen.insert(s());
        let lhs = STerm::var(s());
        let rhs = STerm::var(w());
        // s is frozen but w is not: w binds to s
        assert!(unify_sterms(&lhs, &rhs, &mut sub, &frozen));
        assert_eq!(sub.get(&w()), Some(&STerm::var(s())));
    }

    #[test]
    fn occurs_check_blocks_cyclic_binding() {
        let mut sub = SSubst::new();
        let frozen = HashSet::new();
        let lhs = STerm::var(s());
        let rhs = STerm::var(s()).eval_state(FTerm::Identity);
        assert!(!unify_sterms(&lhs, &rhs, &mut sub, &frozen));
    }

    #[test]
    fn sort_discipline_enforced() {
        let mut sub = SSubst::new();
        let frozen = HashSet::new();
        // state variable cannot bind a natural
        assert!(!unify_sterms(
            &STerm::var(s()),
            &STerm::nat(3),
            &mut sub,
            &frozen
        ));
        // atom variable can
        let x = Var::atom_s("x");
        assert!(unify_sterms(
            &STerm::var(x),
            &STerm::nat(3),
            &mut sub,
            &frozen
        ));
    }

    #[test]
    fn structural_unification_descends() {
        let mut sub = SSubst::new();
        let frozen = HashSet::new();
        let e = Var::tup_s("e", 5);
        let lhs = STerm::attr("salary", STerm::var(e));
        let f = Var::tup_s("f", 5);
        let rhs = STerm::attr("salary", STerm::var(f));
        assert!(unify_sterms(&lhs, &rhs, &mut sub, &frozen));
        // mismatched attribute names fail
        let rhs_bad = STerm::attr("age", STerm::var(f));
        let mut sub2 = SSubst::new();
        assert!(!unify_sterms(&lhs, &rhs_bad, &mut sub2, &frozen));
    }

    #[test]
    fn rigid_fluents_must_match_exactly() {
        let mut sub = SSubst::new();
        let frozen = HashSet::new();
        let a = STerm::var(s()).eval_obj(FTerm::rel("EMP"));
        let b = STerm::var(w()).eval_obj(FTerm::rel("EMP"));
        assert!(unify_sterms(&a, &b, &mut sub, &frozen));
        let c = STerm::var(w()).eval_obj(FTerm::rel("DEPT"));
        let mut sub2 = SSubst::new();
        assert!(!unify_sterms(&a, &c, &mut sub2, &frozen));
    }

    #[test]
    fn transitive_binding_resolution() {
        let mut sub = SSubst::new();
        let frozen = HashSet::new();
        let u = Var::state("u");
        assert!(unify_sterms(
            &STerm::var(s()),
            &STerm::var(w()),
            &mut sub,
            &frozen
        ));
        assert!(unify_sterms(
            &STerm::var(w()),
            &STerm::var(u),
            &mut sub,
            &frozen
        ));
        // all three now co-refer
        let a = apply(&STerm::var(s()), &sub);
        let b = apply(&STerm::var(w()), &sub);
        // both resolve through chains to u (possibly in one step)
        assert_eq!(apply(&a, &sub), apply(&b, &sub));
    }
}
