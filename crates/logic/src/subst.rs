//! Free variables and capture-avoiding substitution.
//!
//! Substitution is the engine of the paper's iteration-fluent semantics
//! (`foreach x | p do s` is `s[x₁/x] ;; … ;; s[xₙ/x]`), of quantifier
//! instantiation during model checking, and of the prover's unification
//! steps. Fluent variables are substituted by f-terms; situational
//! variables by s-terms. Both substitutions are capture-avoiding: bound
//! variables are renamed when they would capture a free variable of the
//! replacement.

use crate::fluent::{FFormula, FTerm};
use crate::situational::{SFormula, STerm};
use crate::sort::Var;
use std::collections::{HashMap, HashSet};
use txlog_base::Symbol;

/// Collect the free variables of an f-term into `out`.
pub fn free_vars_fterm(t: &FTerm, out: &mut HashSet<Var>) {
    match t {
        FTerm::Var(v) => {
            out.insert(*v);
        }
        FTerm::Nat(_) | FTerm::Str(_) | FTerm::Rel(_) | FTerm::Identity => {}
        FTerm::Attr(_, t) | FTerm::Select(t, _) | FTerm::IdOf(t) => free_vars_fterm(t, out),
        FTerm::TupleCons(ts) | FTerm::App(_, ts) | FTerm::UserApp(_, ts) => {
            for t in ts {
                free_vars_fterm(t, out);
            }
        }
        FTerm::SetFormer { head, vars, cond } => {
            let mut inner = HashSet::new();
            free_vars_fterm(head, &mut inner);
            free_vars_fformula(cond, &mut inner);
            for v in vars {
                inner.remove(v);
            }
            out.extend(inner);
        }
        FTerm::Seq(a, b) => {
            free_vars_fterm(a, out);
            free_vars_fterm(b, out);
        }
        FTerm::Cond(p, a, b) => {
            free_vars_fformula(p, out);
            free_vars_fterm(a, out);
            free_vars_fterm(b, out);
        }
        FTerm::Foreach(v, p, body) => {
            let mut inner = HashSet::new();
            free_vars_fformula(p, &mut inner);
            free_vars_fterm(body, &mut inner);
            inner.remove(v);
            out.extend(inner);
        }
        FTerm::Insert(t, _) | FTerm::Delete(t, _) | FTerm::Assign(_, t) => free_vars_fterm(t, out),
        FTerm::Modify(t, _, v) | FTerm::ModifyAttr(t, _, v) => {
            free_vars_fterm(t, out);
            free_vars_fterm(v, out);
        }
    }
}

/// Collect the free variables of an f-formula into `out`.
pub fn free_vars_fformula(p: &FFormula, out: &mut HashSet<Var>) {
    match p {
        FFormula::True | FFormula::False => {}
        FFormula::Cmp(_, a, b) | FFormula::Member(a, b) | FFormula::Subset(a, b) => {
            free_vars_fterm(a, out);
            free_vars_fterm(b, out);
        }
        FFormula::Not(q) => free_vars_fformula(q, out),
        FFormula::And(a, b)
        | FFormula::Or(a, b)
        | FFormula::Implies(a, b)
        | FFormula::Iff(a, b) => {
            free_vars_fformula(a, out);
            free_vars_fformula(b, out);
        }
        FFormula::Exists(v, q) | FFormula::Forall(v, q) => {
            let mut inner = HashSet::new();
            free_vars_fformula(q, &mut inner);
            inner.remove(v);
            out.extend(inner);
        }
        FFormula::UserPred(_, ts) => {
            for t in ts {
                free_vars_fterm(t, out);
            }
        }
    }
}

/// Collect the free variables of an s-term into `out`.
pub fn free_vars_sterm(t: &STerm, out: &mut HashSet<Var>) {
    match t {
        STerm::Var(v) => {
            out.insert(*v);
        }
        STerm::Nat(_) | STerm::Str(_) => {}
        STerm::EvalObj(w, e) | STerm::EvalState(w, e) => {
            free_vars_sterm(w, out);
            free_vars_fterm(e, out);
        }
        STerm::Attr(_, t) | STerm::Select(t, _) | STerm::IdOf(t) => free_vars_sterm(t, out),
        STerm::TupleCons(ts) | STerm::App(_, ts) | STerm::UserApp(_, ts) => {
            for t in ts {
                free_vars_sterm(t, out);
            }
        }
        STerm::SetFormer { head, vars, cond } => {
            let mut inner = HashSet::new();
            free_vars_sterm(head, &mut inner);
            free_vars_sformula(cond, &mut inner);
            for v in vars {
                inner.remove(v);
            }
            out.extend(inner);
        }
    }
}

/// Collect the free variables of an s-formula into `out`.
pub fn free_vars_sformula(p: &SFormula, out: &mut HashSet<Var>) {
    match p {
        SFormula::True | SFormula::False => {}
        SFormula::Holds(w, q) => {
            free_vars_sterm(w, out);
            free_vars_fformula(q, out);
        }
        SFormula::Cmp(_, a, b) | SFormula::Member(a, b) | SFormula::Subset(a, b) => {
            free_vars_sterm(a, out);
            free_vars_sterm(b, out);
        }
        SFormula::Not(q) => free_vars_sformula(q, out),
        SFormula::And(a, b)
        | SFormula::Or(a, b)
        | SFormula::Implies(a, b)
        | SFormula::Iff(a, b) => {
            free_vars_sformula(a, out);
            free_vars_sformula(b, out);
        }
        SFormula::Forall(v, q) | SFormula::Exists(v, q) => {
            let mut inner = HashSet::new();
            free_vars_sformula(q, &mut inner);
            inner.remove(v);
            out.extend(inner);
        }
        SFormula::UserPred(_, ts) => {
            for t in ts {
                free_vars_sterm(t, out);
            }
        }
    }
}

/// The free variables of an s-formula.
pub fn sformula_free_vars(p: &SFormula) -> HashSet<Var> {
    let mut out = HashSet::new();
    free_vars_sformula(p, &mut out);
    out
}

/// The free variables of an f-term.
pub fn fterm_free_vars(t: &FTerm) -> HashSet<Var> {
    let mut out = HashSet::new();
    free_vars_fterm(t, &mut out);
    out
}

/// A substitution mapping fluent variables to f-terms.
pub type FSubst = HashMap<Var, FTerm>;

/// A substitution mapping situational variables to s-terms.
pub type SSubst = HashMap<Var, STerm>;

/// Generate a variable not occurring in `avoid`, based on `v`'s name.
pub fn fresh_var(v: Var, avoid: &HashSet<Var>) -> Var {
    if !avoid.contains(&v) {
        return v;
    }
    for i in 1.. {
        let candidate = Var {
            name: Symbol::new(&format!("{}_{i}", v.name)),
            ..v
        };
        if !avoid.contains(&candidate) {
            return candidate;
        }
    }
    unreachable!("fresh variable search is unbounded")
}

fn fsubst_without(sub: &FSubst, v: Var) -> FSubst {
    let mut s = sub.clone();
    s.remove(&v);
    s
}

fn replacement_fvs(sub: &FSubst) -> HashSet<Var> {
    let mut out = HashSet::new();
    for t in sub.values() {
        free_vars_fterm(t, &mut out);
    }
    out
}

/// Apply a fluent substitution to an f-term (capture-avoiding).
pub fn subst_fterm(t: &FTerm, sub: &FSubst) -> FTerm {
    if sub.is_empty() {
        return t.clone();
    }
    match t {
        FTerm::Var(v) => sub.get(v).cloned().unwrap_or_else(|| t.clone()),
        FTerm::Nat(_) | FTerm::Str(_) | FTerm::Rel(_) | FTerm::Identity => t.clone(),
        FTerm::Attr(a, inner) => FTerm::Attr(*a, Box::new(subst_fterm(inner, sub))),
        FTerm::Select(inner, i) => FTerm::Select(Box::new(subst_fterm(inner, sub)), *i),
        FTerm::IdOf(inner) => FTerm::IdOf(Box::new(subst_fterm(inner, sub))),
        FTerm::TupleCons(ts) => FTerm::TupleCons(ts.iter().map(|t| subst_fterm(t, sub)).collect()),
        FTerm::App(op, ts) => FTerm::App(*op, ts.iter().map(|t| subst_fterm(t, sub)).collect()),
        FTerm::UserApp(f, ts) => {
            FTerm::UserApp(*f, ts.iter().map(|t| subst_fterm(t, sub)).collect())
        }
        FTerm::SetFormer { head, vars, cond } => {
            let mut sub = sub.clone();
            for v in vars {
                sub.remove(v);
            }
            let clash = replacement_fvs(&sub);
            let mut vars = vars.clone();
            let mut renames = FSubst::new();
            for v in vars.iter_mut() {
                if clash.contains(v) {
                    let mut avoid = clash.clone();
                    avoid.insert(*v);
                    let nv = fresh_var(*v, &avoid);
                    renames.insert(*v, FTerm::Var(nv));
                    *v = nv;
                }
            }
            let (head2, cond2) = if renames.is_empty() {
                ((**head).clone(), (**cond).clone())
            } else {
                (subst_fterm(head, &renames), subst_fformula(cond, &renames))
            };
            FTerm::SetFormer {
                head: Box::new(subst_fterm(&head2, &sub)),
                vars,
                cond: Box::new(subst_fformula(&cond2, &sub)),
            }
        }
        FTerm::Seq(a, b) => {
            FTerm::Seq(Box::new(subst_fterm(a, sub)), Box::new(subst_fterm(b, sub)))
        }
        FTerm::Cond(p, a, b) => FTerm::Cond(
            Box::new(subst_fformula(p, sub)),
            Box::new(subst_fterm(a, sub)),
            Box::new(subst_fterm(b, sub)),
        ),
        FTerm::Foreach(v, p, body) => {
            let sub2 = fsubst_without(sub, *v);
            let clash = replacement_fvs(&sub2);
            if clash.contains(v) {
                let mut avoid = clash.clone();
                avoid.insert(*v);
                let nv = fresh_var(*v, &avoid);
                let mut rename = FSubst::new();
                rename.insert(*v, FTerm::Var(nv));
                let p2 = subst_fformula(p, &rename);
                let body2 = subst_fterm(body, &rename);
                FTerm::Foreach(
                    nv,
                    Box::new(subst_fformula(&p2, &sub2)),
                    Box::new(subst_fterm(&body2, &sub2)),
                )
            } else {
                FTerm::Foreach(
                    *v,
                    Box::new(subst_fformula(p, &sub2)),
                    Box::new(subst_fterm(body, &sub2)),
                )
            }
        }
        FTerm::Insert(t, r) => FTerm::Insert(Box::new(subst_fterm(t, sub)), *r),
        FTerm::Delete(t, r) => FTerm::Delete(Box::new(subst_fterm(t, sub)), *r),
        FTerm::Modify(t, i, v) => FTerm::Modify(
            Box::new(subst_fterm(t, sub)),
            *i,
            Box::new(subst_fterm(v, sub)),
        ),
        FTerm::ModifyAttr(t, a, v) => FTerm::ModifyAttr(
            Box::new(subst_fterm(t, sub)),
            *a,
            Box::new(subst_fterm(v, sub)),
        ),
        FTerm::Assign(r, s) => FTerm::Assign(*r, Box::new(subst_fterm(s, sub))),
    }
}

/// Apply a fluent substitution to an f-formula (capture-avoiding).
pub fn subst_fformula(p: &FFormula, sub: &FSubst) -> FFormula {
    if sub.is_empty() {
        return p.clone();
    }
    match p {
        FFormula::True | FFormula::False => p.clone(),
        FFormula::Cmp(op, a, b) => FFormula::Cmp(*op, subst_fterm(a, sub), subst_fterm(b, sub)),
        FFormula::Member(a, b) => FFormula::Member(subst_fterm(a, sub), subst_fterm(b, sub)),
        FFormula::Subset(a, b) => FFormula::Subset(subst_fterm(a, sub), subst_fterm(b, sub)),
        FFormula::Not(q) => FFormula::Not(Box::new(subst_fformula(q, sub))),
        FFormula::And(a, b) => FFormula::And(
            Box::new(subst_fformula(a, sub)),
            Box::new(subst_fformula(b, sub)),
        ),
        FFormula::Or(a, b) => FFormula::Or(
            Box::new(subst_fformula(a, sub)),
            Box::new(subst_fformula(b, sub)),
        ),
        FFormula::Implies(a, b) => FFormula::Implies(
            Box::new(subst_fformula(a, sub)),
            Box::new(subst_fformula(b, sub)),
        ),
        FFormula::Iff(a, b) => FFormula::Iff(
            Box::new(subst_fformula(a, sub)),
            Box::new(subst_fformula(b, sub)),
        ),
        FFormula::Exists(v, q) | FFormula::Forall(v, q) => {
            let is_exists = matches!(p, FFormula::Exists(..));
            let sub2 = fsubst_without(sub, *v);
            let clash = replacement_fvs(&sub2);
            let (v2, q2) = if clash.contains(v) {
                let mut avoid = clash.clone();
                avoid.insert(*v);
                let nv = fresh_var(*v, &avoid);
                let mut rename = FSubst::new();
                rename.insert(*v, FTerm::Var(nv));
                (nv, subst_fformula(q, &rename))
            } else {
                (*v, (**q).clone())
            };
            let body = Box::new(subst_fformula(&q2, &sub2));
            if is_exists {
                FFormula::Exists(v2, body)
            } else {
                FFormula::Forall(v2, body)
            }
        }
        FFormula::UserPred(f, ts) => {
            FFormula::UserPred(*f, ts.iter().map(|t| subst_fterm(t, sub)).collect())
        }
    }
}

/// Apply a *situational* substitution to an s-term. Fluent subterms are
/// untouched (they contain no situational variables by construction).
pub fn subst_sterm(t: &STerm, sub: &SSubst) -> STerm {
    if sub.is_empty() {
        return t.clone();
    }
    match t {
        STerm::Var(v) => sub.get(v).cloned().unwrap_or_else(|| t.clone()),
        STerm::Nat(_) | STerm::Str(_) => t.clone(),
        STerm::EvalObj(w, e) => STerm::EvalObj(Box::new(subst_sterm(w, sub)), e.clone()),
        STerm::EvalState(w, e) => STerm::EvalState(Box::new(subst_sterm(w, sub)), e.clone()),
        STerm::Attr(a, inner) => STerm::Attr(*a, Box::new(subst_sterm(inner, sub))),
        STerm::Select(inner, i) => STerm::Select(Box::new(subst_sterm(inner, sub)), *i),
        STerm::IdOf(inner) => STerm::IdOf(Box::new(subst_sterm(inner, sub))),
        STerm::TupleCons(ts) => STerm::TupleCons(ts.iter().map(|t| subst_sterm(t, sub)).collect()),
        STerm::App(op, ts) => STerm::App(*op, ts.iter().map(|t| subst_sterm(t, sub)).collect()),
        STerm::UserApp(f, ts) => {
            STerm::UserApp(*f, ts.iter().map(|t| subst_sterm(t, sub)).collect())
        }
        STerm::SetFormer { head, vars, cond } => {
            let mut sub2 = sub.clone();
            for v in vars {
                sub2.remove(v);
            }
            let mut clash = HashSet::new();
            for t in sub2.values() {
                free_vars_sterm(t, &mut clash);
            }
            let mut vars = vars.clone();
            let mut renames = SSubst::new();
            for v in vars.iter_mut() {
                if clash.contains(v) {
                    let mut avoid = clash.clone();
                    avoid.insert(*v);
                    let nv = fresh_var(*v, &avoid);
                    renames.insert(*v, STerm::Var(nv));
                    *v = nv;
                }
            }
            let (head2, cond2) = if renames.is_empty() {
                ((**head).clone(), (**cond).clone())
            } else {
                (subst_sterm(head, &renames), subst_sformula(cond, &renames))
            };
            STerm::SetFormer {
                head: Box::new(subst_sterm(&head2, &sub2)),
                vars,
                cond: Box::new(subst_sformula(&cond2, &sub2)),
            }
        }
    }
}

/// Apply a situational substitution to an s-formula (capture-avoiding).
pub fn subst_sformula(p: &SFormula, sub: &SSubst) -> SFormula {
    if sub.is_empty() {
        return p.clone();
    }
    match p {
        SFormula::True | SFormula::False => p.clone(),
        SFormula::Holds(w, q) => SFormula::Holds(subst_sterm(w, sub), q.clone()),
        SFormula::Cmp(op, a, b) => SFormula::Cmp(*op, subst_sterm(a, sub), subst_sterm(b, sub)),
        SFormula::Member(a, b) => SFormula::Member(subst_sterm(a, sub), subst_sterm(b, sub)),
        SFormula::Subset(a, b) => SFormula::Subset(subst_sterm(a, sub), subst_sterm(b, sub)),
        SFormula::Not(q) => SFormula::Not(Box::new(subst_sformula(q, sub))),
        SFormula::And(a, b) => SFormula::And(
            Box::new(subst_sformula(a, sub)),
            Box::new(subst_sformula(b, sub)),
        ),
        SFormula::Or(a, b) => SFormula::Or(
            Box::new(subst_sformula(a, sub)),
            Box::new(subst_sformula(b, sub)),
        ),
        SFormula::Implies(a, b) => SFormula::Implies(
            Box::new(subst_sformula(a, sub)),
            Box::new(subst_sformula(b, sub)),
        ),
        SFormula::Iff(a, b) => SFormula::Iff(
            Box::new(subst_sformula(a, sub)),
            Box::new(subst_sformula(b, sub)),
        ),
        SFormula::Forall(v, q) | SFormula::Exists(v, q) => {
            let is_forall = matches!(p, SFormula::Forall(..));
            let mut sub2 = sub.clone();
            sub2.remove(v);
            let mut clash = HashSet::new();
            for t in sub2.values() {
                free_vars_sterm(t, &mut clash);
            }
            let (v2, q2) = if clash.contains(v) {
                let mut avoid = clash.clone();
                avoid.insert(*v);
                let nv = fresh_var(*v, &avoid);
                let mut rename = SSubst::new();
                rename.insert(*v, STerm::Var(nv));
                (nv, subst_sformula(q, &rename))
            } else {
                (*v, (**q).clone())
            };
            let body = Box::new(subst_sformula(&q2, &sub2));
            if is_forall {
                SFormula::Forall(v2, body)
            } else {
                SFormula::Exists(v2, body)
            }
        }
        SFormula::UserPred(f, ts) => {
            SFormula::UserPred(*f, ts.iter().map(|t| subst_sterm(t, sub)).collect())
        }
    }
}

/// Substitute *fluent* variables occurring inside an s-formula's embedded
/// f-expressions. Needed when instantiating a quantified fluent variable
/// (e.g. replacing transaction variable `t` by a concrete transaction).
pub fn subst_fluent_in_sformula(p: &SFormula, sub: &FSubst) -> SFormula {
    if sub.is_empty() {
        return p.clone();
    }
    match p {
        SFormula::True | SFormula::False => p.clone(),
        SFormula::Holds(w, q) => {
            SFormula::Holds(subst_fluent_in_sterm(w, sub), subst_fformula(q, sub))
        }
        SFormula::Cmp(op, a, b) => SFormula::Cmp(
            *op,
            subst_fluent_in_sterm(a, sub),
            subst_fluent_in_sterm(b, sub),
        ),
        SFormula::Member(a, b) => {
            SFormula::Member(subst_fluent_in_sterm(a, sub), subst_fluent_in_sterm(b, sub))
        }
        SFormula::Subset(a, b) => {
            SFormula::Subset(subst_fluent_in_sterm(a, sub), subst_fluent_in_sterm(b, sub))
        }
        SFormula::Not(q) => SFormula::Not(Box::new(subst_fluent_in_sformula(q, sub))),
        SFormula::And(a, b) => SFormula::And(
            Box::new(subst_fluent_in_sformula(a, sub)),
            Box::new(subst_fluent_in_sformula(b, sub)),
        ),
        SFormula::Or(a, b) => SFormula::Or(
            Box::new(subst_fluent_in_sformula(a, sub)),
            Box::new(subst_fluent_in_sformula(b, sub)),
        ),
        SFormula::Implies(a, b) => SFormula::Implies(
            Box::new(subst_fluent_in_sformula(a, sub)),
            Box::new(subst_fluent_in_sformula(b, sub)),
        ),
        SFormula::Iff(a, b) => SFormula::Iff(
            Box::new(subst_fluent_in_sformula(a, sub)),
            Box::new(subst_fluent_in_sformula(b, sub)),
        ),
        SFormula::Forall(v, q) | SFormula::Exists(v, q) => {
            let is_forall = matches!(p, SFormula::Forall(..));
            let mut sub2 = sub.clone();
            sub2.remove(v);
            let body = Box::new(subst_fluent_in_sformula(q, &sub2));
            if is_forall {
                SFormula::Forall(*v, body)
            } else {
                SFormula::Exists(*v, body)
            }
        }
        SFormula::UserPred(f, ts) => SFormula::UserPred(
            *f,
            ts.iter().map(|t| subst_fluent_in_sterm(t, sub)).collect(),
        ),
    }
}

/// Substitute fluent variables inside an s-term's embedded f-expressions.
pub fn subst_fluent_in_sterm(t: &STerm, sub: &FSubst) -> STerm {
    if sub.is_empty() {
        return t.clone();
    }
    match t {
        STerm::Var(_) | STerm::Nat(_) | STerm::Str(_) => t.clone(),
        STerm::EvalObj(w, e) => STerm::EvalObj(
            Box::new(subst_fluent_in_sterm(w, sub)),
            Box::new(subst_fterm(e, sub)),
        ),
        STerm::EvalState(w, e) => STerm::EvalState(
            Box::new(subst_fluent_in_sterm(w, sub)),
            Box::new(subst_fterm(e, sub)),
        ),
        STerm::Attr(a, inner) => STerm::Attr(*a, Box::new(subst_fluent_in_sterm(inner, sub))),
        STerm::Select(inner, i) => STerm::Select(Box::new(subst_fluent_in_sterm(inner, sub)), *i),
        STerm::IdOf(inner) => STerm::IdOf(Box::new(subst_fluent_in_sterm(inner, sub))),
        STerm::TupleCons(ts) => {
            STerm::TupleCons(ts.iter().map(|t| subst_fluent_in_sterm(t, sub)).collect())
        }
        STerm::App(op, ts) => STerm::App(
            *op,
            ts.iter().map(|t| subst_fluent_in_sterm(t, sub)).collect(),
        ),
        STerm::UserApp(f, ts) => STerm::UserApp(
            *f,
            ts.iter().map(|t| subst_fluent_in_sterm(t, sub)).collect(),
        ),
        STerm::SetFormer { head, vars, cond } => {
            let mut sub2 = sub.clone();
            for v in vars {
                sub2.remove(v);
            }
            STerm::SetFormer {
                head: Box::new(subst_fluent_in_sterm(head, &sub2)),
                vars: vars.clone(),
                cond: Box::new(subst_fluent_in_sformula(cond, &sub2)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::Var;

    fn e5() -> Var {
        Var::tup_f("e", 5)
    }

    fn x5() -> Var {
        Var::tup_f("x", 5)
    }

    #[test]
    fn free_vars_of_fterm() {
        let t = FTerm::attr("salary", FTerm::var(e5())).add(FTerm::nat(100));
        let fv = fterm_free_vars(&t);
        assert!(fv.contains(&e5()));
        assert_eq!(fv.len(), 1);
    }

    #[test]
    fn foreach_binds_its_variable() {
        let t = FTerm::foreach(
            e5(),
            FFormula::member(FTerm::var(e5()), FTerm::rel("EMP")),
            FTerm::delete(FTerm::var(e5()), "EMP"),
        );
        assert!(fterm_free_vars(&t).is_empty());
    }

    #[test]
    fn substitution_replaces_free_occurrences_only() {
        let body = FTerm::delete(FTerm::var(e5()), "EMP");
        let inner = FTerm::foreach(
            e5(),
            FFormula::member(FTerm::var(e5()), FTerm::rel("EMP")),
            body.clone(),
        );
        // e is bound inside; substituting e leaves the foreach alone
        let mut sub = FSubst::new();
        sub.insert(e5(), FTerm::var(x5()));
        let replaced = subst_fterm(&inner, &sub);
        assert_eq!(replaced, inner);
        // but a free occurrence is replaced
        let replaced = subst_fterm(&body, &sub);
        assert_eq!(replaced, FTerm::delete(FTerm::var(x5()), "EMP"));
    }

    #[test]
    fn capture_is_avoided_in_foreach() {
        // foreach x | x in R do insert(tuple(attr(e)), S)
        // substituting e := x must rename the binder, not capture.
        let body = FTerm::insert(
            FTerm::TupleCons(vec![FTerm::attr("a", FTerm::var(e5()))]),
            "S",
        );
        let t = FTerm::foreach(
            x5(),
            FFormula::member(FTerm::var(x5()), FTerm::rel("R")),
            body,
        );
        let mut sub = FSubst::new();
        sub.insert(e5(), FTerm::var(x5()));
        let out = subst_fterm(&t, &sub);
        match out {
            FTerm::Foreach(v, _, body) => {
                assert_ne!(v, x5(), "binder must be renamed to avoid capture");
                let fv = fterm_free_vars(&body);
                assert!(fv.contains(&x5()), "substituted x must remain free");
            }
            other => panic!("expected foreach, got {other}"),
        }
    }

    #[test]
    fn situational_substitution_reaches_under_eval() {
        let s = Var::state("s");
        let s2 = Var::state("s2");
        let t = STerm::var(s).eval_obj(FTerm::rel("EMP"));
        let mut sub = SSubst::new();
        sub.insert(s, STerm::var(s2));
        let out = subst_sterm(&t, &sub);
        assert_eq!(out.to_string(), "s2:EMP");
    }

    #[test]
    fn fluent_substitution_inside_sformula() {
        // Instantiate transaction variable t with a concrete delete.
        let s = Var::state("s");
        let t = Var::transaction("t");
        let f = SFormula::eq(STerm::var(s).eval_state(FTerm::var(t)), STerm::var(s));
        let mut sub = FSubst::new();
        sub.insert(t, FTerm::Identity);
        let out = subst_fluent_in_sformula(&f, &sub);
        assert_eq!(out.to_string(), "s;Λ = s");
    }

    #[test]
    fn quantifier_shadowing_in_sformula() {
        let s = Var::state("s");
        let body = SFormula::forall(s, SFormula::eq(STerm::var(s), STerm::var(s)));
        let mut sub = SSubst::new();
        sub.insert(s, STerm::nat(0));
        // s is bound: substitution must not reach inside
        assert_eq!(subst_sformula(&body, &sub), body);
    }

    #[test]
    fn fresh_var_avoids_collisions() {
        let v = e5();
        let mut avoid = HashSet::new();
        assert_eq!(fresh_var(v, &avoid), v);
        avoid.insert(v);
        let nv = fresh_var(v, &avoid);
        assert_ne!(nv, v);
        assert_eq!(nv.sort, v.sort);
        assert_eq!(nv.class, v.class);
    }
}
