//! Sort checking: the many-sorted discipline of Section 2, enforced.
//!
//! The logic is an instance of many-sorted first-order logic; this module
//! decides whether an expression is well-sorted against a schema-supplied
//! signature, computing the sort of every term:
//!
//! * attribute selection applies to tuples of the declaring relation's
//!   arity and yields an atom;
//! * `insert`/`delete` take a tuple of the relation's arity; `modify`'s
//!   index must be within it; `assign` takes a set of matching arity;
//! * set formers yield `nset` for the head's tuple arity (atoms coerce to
//!   1-tuples, as the paper's `{perc(a') | …}` presumes);
//! * fluent combinators demand state-sorted operands, comparisons demand
//!   compatible object sorts, `sum`/`size` demand sets.
//!
//! The checker is used by `check_program` callers wanting full diagnosis
//! and by the parser's test-suite to validate the built-in corpus.

use crate::fluent::{CmpOp, FFormula, FTerm, Op};
use crate::situational::{SFormula, STerm};
use crate::sort::{ObjSort, Sort, VarClass};
use std::collections::HashMap;
use txlog_base::{Symbol, TxError, TxResult};

/// The signature sort checking runs against: relation arities and
/// attribute positions.
#[derive(Clone, Default)]
pub struct Signature {
    rels: HashMap<Symbol, usize>,
    attrs: HashMap<Symbol, (usize, usize)>, // attr → (owner arity, 1-based ix)
}

impl Signature {
    /// Empty signature.
    pub fn new() -> Signature {
        Signature::default()
    }

    /// Declare a relation with named attributes.
    pub fn relation(mut self, name: &str, attrs: &[&str]) -> Signature {
        let rel = Symbol::new(name);
        self.rels.insert(rel, attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            self.attrs.insert(Symbol::new(a), (attrs.len(), i + 1));
        }
        self
    }

    /// Arity of a relation.
    pub fn rel_arity(&self, name: Symbol) -> TxResult<usize> {
        self.rels
            .get(&name)
            .copied()
            .ok_or_else(|| TxError::schema(format!("unknown relation {name}")))
    }

    /// (owner arity, index) of an attribute.
    pub fn attr(&self, name: Symbol) -> TxResult<(usize, usize)> {
        self.attrs
            .get(&name)
            .copied()
            .ok_or_else(|| TxError::schema(format!("unknown attribute {name}")))
    }
}

/// Sort of an f-term under the signature (variables carry their sorts).
pub fn sort_of_fterm(sig: &Signature, t: &FTerm) -> TxResult<Sort> {
    match t {
        FTerm::Var(v) => Ok(v.sort),
        FTerm::Nat(_) | FTerm::Str(_) => Ok(Sort::ATOM),
        FTerm::Rel(r) => Ok(Sort::set(sig.rel_arity(*r)?)),
        FTerm::Attr(a, inner) => {
            let (owner, _) = sig.attr(*a)?;
            expect_sort(sig, inner, Sort::tup(owner), "attribute selection")?;
            Ok(Sort::ATOM)
        }
        FTerm::Select(inner, i) => match sort_of_fterm(sig, inner)? {
            Sort::Obj(ObjSort::Tup(n)) if *i >= 1 && *i <= n => Ok(Sort::ATOM),
            Sort::Obj(ObjSort::Tup(n)) => Err(TxError::sort(format!(
                "select index {i} out of range for {n}-ary tuple"
            ))),
            other => Err(TxError::sort(format!(
                "select applies to tuples, got {other}"
            ))),
        },
        FTerm::TupleCons(parts) => {
            for p in parts {
                expect_sort(sig, p, Sort::ATOM, "tuple component")?;
            }
            Ok(Sort::tup(parts.len()))
        }
        FTerm::App(op, args) => sort_of_op(sig, *op, args),
        FTerm::SetFormer { head, vars, cond } => {
            check_fformula(sig, cond)?;
            let _ = vars;
            match sort_of_fterm(sig, head)? {
                Sort::ATOM => Ok(Sort::set(1)),
                Sort::Obj(ObjSort::Tup(n)) => Ok(Sort::set(n)),
                other => Err(TxError::sort(format!(
                    "set-former head must be a tuple or atom, got {other}"
                ))),
            }
        }
        FTerm::IdOf(inner) => match sort_of_fterm(sig, inner)? {
            Sort::Obj(ObjSort::Tup(n)) => Ok(Sort::Obj(ObjSort::TupId(n))),
            Sort::Obj(ObjSort::Set(n)) => Ok(Sort::Obj(ObjSort::SetId(n))),
            other => Err(TxError::sort(format!(
                "id applies to tuples/sets, got {other}"
            ))),
        },
        FTerm::UserApp(name, args) => {
            for a in args {
                sort_of_fterm(sig, a)?;
            }
            Err(TxError::sort(format!(
                "user function {name} has no declared signature"
            )))
        }
        FTerm::Identity => Ok(Sort::State),
        FTerm::Seq(a, b) => {
            expect_sort(sig, a, Sort::State, "';;' left operand")?;
            expect_sort(sig, b, Sort::State, "';;' right operand")?;
            Ok(Sort::State)
        }
        FTerm::Cond(p, a, b) => {
            check_fformula(sig, p)?;
            let sa = sort_of_fterm(sig, a)?;
            let sb = sort_of_fterm(sig, b)?;
            if sa != sb {
                return Err(TxError::sort(format!(
                    "conditional branches have different sorts: {sa} vs {sb}"
                )));
            }
            Ok(sa)
        }
        FTerm::Foreach(v, p, body) => {
            if !matches!(
                v.sort,
                Sort::Obj(ObjSort::Tup(_)) | Sort::Obj(ObjSort::Atom)
            ) {
                return Err(TxError::sort(format!(
                    "foreach binder {v} must range over tuples or atoms"
                )));
            }
            check_fformula(sig, p)?;
            expect_sort(sig, body, Sort::State, "foreach body")?;
            Ok(Sort::State)
        }
        FTerm::Insert(tup, rel) | FTerm::Delete(tup, rel) => {
            let n = sig.rel_arity(*rel)?;
            expect_sort(sig, tup, Sort::tup(n), "insert/delete tuple")?;
            Ok(Sort::State)
        }
        FTerm::Modify(tup, i, v) => {
            match sort_of_fterm(sig, tup)? {
                Sort::Obj(ObjSort::Tup(n)) if *i >= 1 && *i <= n => {}
                Sort::Obj(ObjSort::Tup(n)) => {
                    return Err(TxError::sort(format!(
                        "modify index {i} out of range for {n}-ary tuple"
                    )))
                }
                other => {
                    return Err(TxError::sort(format!(
                        "modify applies to tuples, got {other}"
                    )))
                }
            }
            expect_sort(sig, v, Sort::ATOM, "modify value")?;
            Ok(Sort::State)
        }
        FTerm::ModifyAttr(tup, attr, v) => {
            let (owner, _) = sig.attr(*attr)?;
            expect_sort(sig, tup, Sort::tup(owner), "modify tuple")?;
            expect_sort(sig, v, Sort::ATOM, "modify value")?;
            Ok(Sort::State)
        }
        FTerm::Assign(rel, set) => {
            let n = sig.rel_arity(*rel)?;
            expect_sort(sig, set, Sort::set(n), "assign source set")?;
            Ok(Sort::State)
        }
    }
}

fn sort_of_op(sig: &Signature, op: Op, args: &[FTerm]) -> TxResult<Sort> {
    if args.len() != op.arity() {
        return Err(TxError::sort(format!(
            "{op} takes {} arguments, got {}",
            op.arity(),
            args.len()
        )));
    }
    match op {
        Op::Add | Op::Monus | Op::Mul | Op::Max | Op::Min => {
            for a in args {
                expect_sort(sig, a, Sort::ATOM, "arithmetic operand")?;
            }
            Ok(Sort::ATOM)
        }
        Op::Sum => {
            expect_sort(sig, &args[0], Sort::set(1), "sum operand")?;
            Ok(Sort::ATOM)
        }
        Op::Size => match sort_of_fterm(sig, &args[0])? {
            Sort::Obj(ObjSort::Set(_)) => Ok(Sort::ATOM),
            other => Err(TxError::sort(format!("size applies to sets, got {other}"))),
        },
        Op::Union | Op::Inter | Op::Diff => {
            let sa = sort_of_fterm(sig, &args[0])?;
            let sb = sort_of_fterm(sig, &args[1])?;
            match (sa, sb) {
                (Sort::Obj(ObjSort::Set(m)), Sort::Obj(ObjSort::Set(n))) if m == n => {
                    Ok(Sort::set(m))
                }
                _ => Err(TxError::sort(format!(
                    "{op} needs two sets of equal arity, got {sa} and {sb}"
                ))),
            }
        }
        Op::Product => {
            let sa = sort_of_fterm(sig, &args[0])?;
            let sb = sort_of_fterm(sig, &args[1])?;
            match (sa, sb) {
                (Sort::Obj(ObjSort::Set(m)), Sort::Obj(ObjSort::Set(n))) => Ok(Sort::set(m + n)),
                _ => Err(TxError::sort(format!(
                    "product needs two sets, got {sa} and {sb}"
                ))),
            }
        }
    }
}

fn expect_sort(sig: &Signature, t: &FTerm, want: Sort, what: &str) -> TxResult<()> {
    let got = sort_of_fterm(sig, t)?;
    if got != want {
        return Err(TxError::sort(format!("{what}: expected {want}, got {got}")));
    }
    Ok(())
}

/// Check an f-formula (truth-sorted).
pub fn check_fformula(sig: &Signature, p: &FFormula) -> TxResult<()> {
    match p {
        FFormula::True | FFormula::False => Ok(()),
        FFormula::Cmp(op, a, b) => {
            let sa = sort_of_fterm(sig, a)?;
            let sb = sort_of_fterm(sig, b)?;
            check_cmp(*op, sa, sb)
        }
        FFormula::Member(t, set) => {
            let st = sort_of_fterm(sig, t)?;
            let ss = sort_of_fterm(sig, set)?;
            check_membership(st, ss)
        }
        FFormula::Subset(a, b) => {
            let sa = sort_of_fterm(sig, a)?;
            let sb = sort_of_fterm(sig, b)?;
            match (sa, sb) {
                (Sort::Obj(ObjSort::Set(m)), Sort::Obj(ObjSort::Set(n))) if m == n => Ok(()),
                _ => Err(TxError::sort(format!(
                    "subset needs two sets of equal arity, got {sa} and {sb}"
                ))),
            }
        }
        FFormula::Not(q) => check_fformula(sig, q),
        FFormula::And(a, b)
        | FFormula::Or(a, b)
        | FFormula::Implies(a, b)
        | FFormula::Iff(a, b) => {
            check_fformula(sig, a)?;
            check_fformula(sig, b)
        }
        FFormula::Exists(v, q) | FFormula::Forall(v, q) => {
            if v.sort == Sort::State {
                return Err(TxError::sort(format!(
                    "fluent formulas cannot quantify state-sorted {v}"
                )));
            }
            check_fformula(sig, q)
        }
        FFormula::UserPred(_, args) => {
            for a in args {
                sort_of_fterm(sig, a)?;
            }
            Ok(())
        }
    }
}

fn check_cmp(op: CmpOp, sa: Sort, sb: Sort) -> TxResult<()> {
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            // equality demands compatible sorts (atom coerces to 1-tuple)
            let compatible = sa == sb
                || matches!(
                    (sa, sb),
                    (Sort::ATOM, Sort::Obj(ObjSort::Tup(1)))
                        | (Sort::Obj(ObjSort::Tup(1)), Sort::ATOM)
                );
            if compatible {
                Ok(())
            } else {
                Err(TxError::sort(format!(
                    "equality between incompatible sorts {sa} and {sb}"
                )))
            }
        }
        _ => {
            if sa == Sort::ATOM && sb == Sort::ATOM {
                Ok(())
            } else {
                Err(TxError::sort(format!(
                    "order comparison needs atoms, got {sa} and {sb}"
                )))
            }
        }
    }
}

fn check_membership(st: Sort, ss: Sort) -> TxResult<()> {
    match (st, ss) {
        (Sort::Obj(ObjSort::Tup(m)), Sort::Obj(ObjSort::Set(n))) if m == n => Ok(()),
        (Sort::ATOM, Sort::Obj(ObjSort::Set(1))) => Ok(()),
        _ => Err(TxError::sort(format!(
            "membership of {st} in {ss} is ill-sorted"
        ))),
    }
}

/// Sort of an s-term.
pub fn sort_of_sterm(sig: &Signature, t: &STerm) -> TxResult<Sort> {
    match t {
        STerm::Var(v) => Ok(v.sort),
        STerm::Nat(_) | STerm::Str(_) => Ok(Sort::ATOM),
        STerm::EvalObj(w, e) => {
            expect_state(sig, w)?;
            let s = sort_of_fterm(sig, e)?;
            if s == Sort::State {
                return Err(TxError::sort(
                    "w:e applies to object-sorted fluents; use w;e for transactions",
                ));
            }
            Ok(s)
        }
        STerm::EvalState(w, e) => {
            expect_state(sig, w)?;
            let s = sort_of_fterm(sig, e)?;
            if s != Sort::State {
                return Err(TxError::sort(format!(
                    "w;e needs a transaction, got a fluent of sort {s}"
                )));
            }
            Ok(Sort::State)
        }
        STerm::Attr(a, inner) => {
            let (owner, _) = sig.attr(*a)?;
            let got = sort_of_sterm(sig, inner)?;
            if got != Sort::tup(owner) {
                return Err(TxError::sort(format!(
                    "attribute {a} selects from {owner}-ary tuples, got {got}"
                )));
            }
            Ok(Sort::ATOM)
        }
        STerm::Select(inner, i) => match sort_of_sterm(sig, inner)? {
            Sort::Obj(ObjSort::Tup(n)) if *i >= 1 && *i <= n => Ok(Sort::ATOM),
            other => Err(TxError::sort(format!("select({other}, {i}) is ill-sorted"))),
        },
        STerm::TupleCons(parts) => {
            for p in parts {
                let s = sort_of_sterm(sig, p)?;
                if s != Sort::ATOM {
                    return Err(TxError::sort(format!(
                        "tuple component of sort {s}, expected atom"
                    )));
                }
            }
            Ok(Sort::tup(parts.len()))
        }
        STerm::App(op, args) => {
            // mirror the fluent rules over s-sorts
            let sorts: Vec<Sort> = args
                .iter()
                .map(|a| sort_of_sterm(sig, a))
                .collect::<TxResult<_>>()?;
            match op {
                Op::Add | Op::Monus | Op::Mul | Op::Max | Op::Min => {
                    if sorts.iter().all(|&s| s == Sort::ATOM) {
                        Ok(Sort::ATOM)
                    } else {
                        Err(TxError::sort("arithmetic over non-atoms"))
                    }
                }
                Op::Sum => match sorts[0] {
                    Sort::Obj(ObjSort::Set(1)) => Ok(Sort::ATOM),
                    other => Err(TxError::sort(format!("sum over {other}"))),
                },
                Op::Size => match sorts[0] {
                    Sort::Obj(ObjSort::Set(_)) => Ok(Sort::ATOM),
                    other => Err(TxError::sort(format!("size of {other}"))),
                },
                Op::Union | Op::Inter | Op::Diff => match (sorts[0], sorts[1]) {
                    (Sort::Obj(ObjSort::Set(m)), Sort::Obj(ObjSort::Set(n))) if m == n => {
                        Ok(Sort::set(m))
                    }
                    (a, b) => Err(TxError::sort(format!("{op} of {a} and {b}"))),
                },
                Op::Product => match (sorts[0], sorts[1]) {
                    (Sort::Obj(ObjSort::Set(m)), Sort::Obj(ObjSort::Set(n))) => {
                        Ok(Sort::set(m + n))
                    }
                    (a, b) => Err(TxError::sort(format!("product of {a} and {b}"))),
                },
            }
        }
        STerm::SetFormer { head, cond, .. } => {
            check_sformula(sig, cond)?;
            match sort_of_sterm(sig, head)? {
                Sort::ATOM => Ok(Sort::set(1)),
                Sort::Obj(ObjSort::Tup(n)) => Ok(Sort::set(n)),
                other => Err(TxError::sort(format!(
                    "set-former head must be a tuple or atom, got {other}"
                ))),
            }
        }
        STerm::IdOf(inner) => match sort_of_sterm(sig, inner)? {
            Sort::Obj(ObjSort::Tup(n)) => Ok(Sort::Obj(ObjSort::TupId(n))),
            Sort::Obj(ObjSort::Set(n)) => Ok(Sort::Obj(ObjSort::SetId(n))),
            other => Err(TxError::sort(format!("id of {other}"))),
        },
        STerm::UserApp(name, args) => {
            for a in args {
                sort_of_sterm(sig, a)?;
            }
            Err(TxError::sort(format!(
                "user s-function {name} has no declared signature"
            )))
        }
    }
}

fn expect_state(sig: &Signature, w: &STerm) -> TxResult<()> {
    let s = sort_of_sterm(sig, w)?;
    if s != Sort::State {
        return Err(TxError::sort(format!(
            "situational function applied at non-state {s}"
        )));
    }
    Ok(())
}

/// Check an s-formula.
pub fn check_sformula(sig: &Signature, f: &SFormula) -> TxResult<()> {
    match f {
        SFormula::True | SFormula::False => Ok(()),
        SFormula::Holds(w, p) => {
            expect_state(sig, w)?;
            check_fformula(sig, p)
        }
        SFormula::Cmp(op, a, b) => {
            let sa = sort_of_sterm(sig, a)?;
            let sb = sort_of_sterm(sig, b)?;
            // state equality is legal at the s-level (Example 4)
            if matches!(op, CmpOp::Eq | CmpOp::Ne) && sa == Sort::State && sb == Sort::State {
                return Ok(());
            }
            check_cmp(*op, sa, sb)
        }
        SFormula::Member(t, set) => {
            let st = sort_of_sterm(sig, t)?;
            let ss = sort_of_sterm(sig, set)?;
            check_membership(st, ss)
        }
        SFormula::Subset(a, b) => {
            let sa = sort_of_sterm(sig, a)?;
            let sb = sort_of_sterm(sig, b)?;
            match (sa, sb) {
                (Sort::Obj(ObjSort::Set(m)), Sort::Obj(ObjSort::Set(n))) if m == n => Ok(()),
                _ => Err(TxError::sort(format!(
                    "subset needs two sets of equal arity, got {sa} and {sb}"
                ))),
            }
        }
        SFormula::Not(q) => check_sformula(sig, q),
        SFormula::And(a, b)
        | SFormula::Or(a, b)
        | SFormula::Implies(a, b)
        | SFormula::Iff(a, b) => {
            check_sformula(sig, a)?;
            check_sformula(sig, b)
        }
        SFormula::Forall(v, q) | SFormula::Exists(v, q) => {
            let _ = v;
            check_sformula(sig, q)
        }
        SFormula::UserPred(_, args) => {
            for a in args {
                sort_of_sterm(sig, a)?;
            }
            Ok(())
        }
    }
}

/// Marker so `VarClass` appears in this module's signature discussions.
#[allow(dead_code)]
fn _class(_: VarClass) {}

#[cfg(test)]
use crate::sort::Var;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_fterm, parse_sformula, ParseCtx};

    fn sig() -> Signature {
        Signature::new()
            .relation("EMP", &["e-name", "e-dept", "salary", "age", "m-status"])
            .relation("ALLOC", &["a-emp", "a-proj", "perc"])
            .relation("PROJ", &["p-name", "t-alloc"])
    }

    fn ctx() -> ParseCtx {
        ParseCtx::with_relations(&["EMP", "ALLOC", "PROJ"])
    }

    #[test]
    fn wellsorted_transaction_checks() {
        let e = Var::tup_f("e", 5);
        let t = parse_fterm(
            "foreach e: 5tup | e in EMP do modify(e, salary, salary(e) + 1) end",
            &ctx(),
            &[e],
        )
        .unwrap();
        assert_eq!(sort_of_fterm(&sig(), &t).unwrap(), Sort::State);
    }

    #[test]
    fn arity_mismatch_caught() {
        // inserting a 2-tuple into the 5-ary EMP
        let t = parse_fterm("insert(tuple('x', 1), EMP)", &ctx(), &[]).unwrap();
        assert!(sort_of_fterm(&sig(), &t).is_err());
        // well-sorted into PROJ
        let t = parse_fterm("insert(tuple('x', 1), PROJ)", &ctx(), &[]).unwrap();
        assert!(sort_of_fterm(&sig(), &t).is_ok());
    }

    #[test]
    fn attribute_owner_checked() {
        // perc belongs to ALLOC (3-ary); applying it to an EMP variable fails
        let e = Var::tup_f("e", 5);
        let t = parse_fterm("perc(e)", &ctx(), &[e]).unwrap();
        assert!(sort_of_fterm(&sig(), &t).is_err());
        let a = Var::tup_f("a", 3);
        let t = parse_fterm("perc(a)", &ctx(), &[a]).unwrap();
        assert_eq!(sort_of_fterm(&sig(), &t).unwrap(), Sort::ATOM);
    }

    #[test]
    fn modify_index_range_checked() {
        let e = Var::tup_f("e", 5);
        let t = parse_fterm("modify(e, 6, 0)", &ctx(), &[e]).unwrap();
        assert!(sort_of_fterm(&sig(), &t).is_err());
        let t = parse_fterm("modify(e, 5, 0)", &ctx(), &[e]).unwrap();
        assert!(sort_of_fterm(&sig(), &t).is_ok());
    }

    #[test]
    fn setformer_sorts() {
        let t = parse_fterm("sum({ perc(a) | a: 3tup . a in ALLOC })", &ctx(), &[]).unwrap();
        assert_eq!(sort_of_fterm(&sig(), &t).unwrap(), Sort::ATOM);
        // union of mismatched arities rejected
        let t = parse_fterm("union(EMP, PROJ)", &ctx(), &[]).unwrap();
        assert!(sort_of_fterm(&sig(), &t).is_err());
    }

    #[test]
    fn conditional_branch_sorts_must_agree() {
        let t = parse_fterm("if true then skip else skip", &ctx(), &[]).unwrap();
        assert_eq!(sort_of_fterm(&sig(), &t).unwrap(), Sort::State);
        // branches of different sorts
        let t = FTerm::cond(FFormula::True, FTerm::Identity, FTerm::nat(3));
        assert!(sort_of_fterm(&sig(), &t).is_err());
    }

    #[test]
    fn builtin_constraints_all_check() {
        // the paper's own constraints must be well-sorted
        let srcs = [
            "forall s: state, e': 5tup . e' in s:EMP ->
               exists a': 3tup . a' in s:ALLOC & a-emp(a') = e-name(e')",
            "forall s: state, e': 5tup . e' in s:EMP ->
               sum({ perc(a') | a': 3tup . a' in s:ALLOC & a-emp(a') = e-name(e') }) <= 100",
            "forall s: state, t: tx, e: 5tup .
               (s:e in s:EMP & (s;t):e in (s;t):EMP)
                 -> salary(s:e) <= salary((s;t):e)",
            "forall s: state, t1: tx . exists t2: tx . s = (s;t1);t2",
        ];
        for src in srcs {
            let f = parse_sformula(src, &ctx()).unwrap();
            check_sformula(&sig(), &f).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn sformula_sort_errors_caught() {
        // comparing a state to an atom
        let f = parse_sformula("forall s: state . s = 3", &ctx());
        // parser allows it; sortck must reject
        if let Ok(f) = f {
            assert!(check_sformula(&sig(), &f).is_err());
        }
        // ordering states
        let f = parse_sformula("forall s: state, t: tx . salary(s:EMP) <= 3", &ctx());
        if let Ok(f) = f {
            assert!(check_sformula(&sig(), &f).is_err());
        }
    }

    #[test]
    fn eval_obj_of_transaction_rejected() {
        // s:(insert …) — a transaction in object position
        let f = parse_sformula("forall s: state . size(s:EMP) = size(s:EMP)", &ctx()).unwrap();
        assert!(check_sformula(&sig(), &f).is_ok());
        let bad = STerm::EvalObj(
            Box::new(STerm::var(Var::state("s"))),
            Box::new(FTerm::Identity),
        );
        assert!(sort_of_sterm(&sig(), &bad).is_err());
    }
}
