//! Fluent expressions: f-terms and f-formulas.
//!
//! F-expressions "do not refer to states explicitly" (Section 2): they are
//! mappings from states to objects, truth values, or states. In this AST
//! that discipline is enforced **by construction** — [`FTerm`] and
//! [`FFormula`] contain no situational subterms, so every well-formed
//! f-term is an executable program over the current state. The paper's
//! non-executable salary program (which branches on a *future* state) is
//! only writable at the situational level, where no evaluator will run it
//! as a program; its f-level counterpart `if p then s else t` evaluates
//! the condition at the *current* state, per the condition-linkage axiom.
//!
//! F-terms of state sort are **transactions**; f-terms of object sort are
//! **queries** (Definition 3).

use crate::sort::{ObjSort, Sort, Var, VarClass};
use std::fmt;
use txlog_base::Symbol;

/// Built-in object-level operators (functions over naturals and sets).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Natural addition `+`.
    Add,
    /// Natural subtraction (monus) `−`.
    Monus,
    /// Natural multiplication `*`.
    Mul,
    /// Binary maximum.
    Max,
    /// Binary minimum.
    Min,
    /// Sum of a set of 1-tuples (the paper's aggregate `sum`).
    Sum,
    /// Cardinality of a set (the paper's `size_n`).
    Size,
    /// Set union `∪`.
    Union,
    /// Set intersection `∩`.
    Inter,
    /// Set difference `−`.
    Diff,
    /// Cartesian product `×`.
    Product,
}

impl Op {
    /// Number of arguments the operator takes.
    pub fn arity(self) -> usize {
        match self {
            Op::Sum | Op::Size => 1,
            _ => 2,
        }
    }

    /// Operator name as printed.
    pub fn name(self) -> &'static str {
        match self {
            Op::Add => "+",
            Op::Monus => "-",
            Op::Mul => "*",
            Op::Max => "max",
            Op::Min => "min",
            Op::Sum => "sum",
            Op::Size => "size",
            Op::Union => "union",
            Op::Inter => "inter",
            Op::Diff => "diff",
            Op::Product => "product",
        }
    }

    /// True for the infix arithmetic trio.
    pub fn is_infix(self) -> bool {
        matches!(self, Op::Add | Op::Monus | Op::Mul)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Comparison predicates shared by both expression levels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equality `=` (any sort).
    Eq,
    /// Disequality `≠`.
    Ne,
    /// Strict order `<` on naturals.
    Lt,
    /// Non-strict order `≤` on naturals.
    Le,
    /// Strict order `>` on naturals.
    Gt,
    /// Non-strict order `≥` on naturals.
    Ge,
}

impl CmpOp {
    /// Printed form.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The comparison with its arguments swapped.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the comparison.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fluent expression (f-term).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum FTerm {
    /// A fluent variable.
    Var(Var),
    /// A natural-number constant.
    Nat(u64),
    /// A symbolic atom constant.
    Str(Symbol),
    /// A relation f-constant from the schema's R (e.g. `EMP`).
    Rel(Symbol),
    /// Attribute selection by name — the paper's `l(t)` sugar for
    /// `select_n(t, i)`. Resolved against the schema at evaluation time.
    Attr(Symbol, Box<FTerm>),
    /// Positional selection `select_n(t, i)`, 1-based.
    Select(Box<FTerm>, usize),
    /// Tuple generator `tuple_n(v₁, …, vₙ)`.
    TupleCons(Vec<FTerm>),
    /// Built-in operator application.
    App(Op, Vec<FTerm>),
    /// Set former `{ f(y) | p(x, y) }`: `head` may mention the bound
    /// `vars`; `cond` restricts them.
    SetFormer {
        /// The head expression `f(y)`.
        head: Box<FTerm>,
        /// The bound variables `y`.
        vars: Vec<Var>,
        /// The condition `p(x, y)`.
        cond: Box<FFormula>,
    },
    /// The identifier function `id(t)`.
    IdOf(Box<FTerm>),
    /// A user-defined f-function application.
    UserApp(Symbol, Vec<FTerm>),

    // ------ state-sorted fluents (transactions) ------
    /// The identity fluent `Λ` (the null transaction).
    Identity,
    /// Sequential composition `s ;; t`.
    Seq(Box<FTerm>, Box<FTerm>),
    /// Conditional fluent `if p then s else t`. The condition is evaluated
    /// at the current state (condition-linkage).
    Cond(Box<FFormula>, Box<FTerm>, Box<FTerm>),
    /// Iteration fluent `foreach x | p do s`: the composition of `s[xᵢ/x]`
    /// over an enumeration of `{x | p}`; undefined if that set is infinite
    /// or the result is order-dependent.
    Foreach(Var, Box<FFormula>, Box<FTerm>),
    /// `insert_n(t, R)`.
    Insert(Box<FTerm>, Symbol),
    /// `delete_n(t, R)`.
    Delete(Box<FTerm>, Symbol),
    /// `modify_n(t, i, v)` with 1-based attribute index `i`.
    Modify(Box<FTerm>, usize, Box<FTerm>),
    /// `modify` with a named attribute, resolved against the schema.
    ModifyAttr(Box<FTerm>, Symbol, Box<FTerm>),
    /// `assign(R, S)`: make relation `R` equal the set value `S`.
    Assign(Symbol, Box<FTerm>),
}

impl FTerm {
    /// Fluent variable reference.
    pub fn var(v: Var) -> FTerm {
        debug_assert_eq!(v.class, VarClass::Fluent, "FTerm::Var must be fluent-class");
        FTerm::Var(v)
    }

    /// Natural constant.
    pub fn nat(n: u64) -> FTerm {
        FTerm::Nat(n)
    }

    /// Symbolic atom constant.
    pub fn str(s: &str) -> FTerm {
        FTerm::Str(Symbol::new(s))
    }

    /// Relation constant.
    pub fn rel(name: &str) -> FTerm {
        FTerm::Rel(Symbol::new(name))
    }

    /// Attribute selection `attr(t)`.
    pub fn attr(name: &str, t: FTerm) -> FTerm {
        FTerm::Attr(Symbol::new(name), Box::new(t))
    }

    /// Sequential composition, flattening identities.
    pub fn seq(self, other: FTerm) -> FTerm {
        match (self, other) {
            (FTerm::Identity, t) => t,
            (s, FTerm::Identity) => s,
            (s, t) => FTerm::Seq(Box::new(s), Box::new(t)),
        }
    }

    /// Compose a sequence of transactions left to right.
    pub fn seq_all(parts: impl IntoIterator<Item = FTerm>) -> FTerm {
        parts.into_iter().fold(FTerm::Identity, |acc, t| acc.seq(t))
    }

    /// `if p then self-branch else other` helper.
    pub fn cond(p: FFormula, then_t: FTerm, else_t: FTerm) -> FTerm {
        FTerm::Cond(Box::new(p), Box::new(then_t), Box::new(else_t))
    }

    /// `foreach v | p do body` helper.
    pub fn foreach(v: Var, p: FFormula, body: FTerm) -> FTerm {
        FTerm::Foreach(v, Box::new(p), Box::new(body))
    }

    /// `insert(t, R)` helper.
    pub fn insert(t: FTerm, rel: &str) -> FTerm {
        FTerm::Insert(Box::new(t), Symbol::new(rel))
    }

    /// `delete(t, R)` helper.
    pub fn delete(t: FTerm, rel: &str) -> FTerm {
        FTerm::Delete(Box::new(t), Symbol::new(rel))
    }

    /// `modify(t, i, v)` helper (1-based `i`).
    pub fn modify(t: FTerm, i: usize, v: FTerm) -> FTerm {
        FTerm::Modify(Box::new(t), i, Box::new(v))
    }

    /// `modify` by attribute name.
    pub fn modify_attr(t: FTerm, attr: &str, v: FTerm) -> FTerm {
        FTerm::ModifyAttr(Box::new(t), Symbol::new(attr), Box::new(v))
    }

    /// `assign(R, S)` helper.
    pub fn assign(rel: &str, set: FTerm) -> FTerm {
        FTerm::Assign(Symbol::new(rel), Box::new(set))
    }

    /// Infix `+`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: FTerm) -> FTerm {
        FTerm::App(Op::Add, vec![self, rhs])
    }

    /// Infix monus `-`.
    pub fn monus(self, rhs: FTerm) -> FTerm {
        FTerm::App(Op::Monus, vec![self, rhs])
    }

    /// Infix `*`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: FTerm) -> FTerm {
        FTerm::App(Op::Mul, vec![self, rhs])
    }

    /// True iff this term is of state sort, i.e. a transaction rather than
    /// a query, assuming it is well-sorted. (Definition 3's dichotomy.)
    pub fn is_transaction_shaped(&self) -> bool {
        matches!(
            self,
            FTerm::Identity
                | FTerm::Seq(..)
                | FTerm::Cond(..)
                | FTerm::Foreach(..)
                | FTerm::Insert(..)
                | FTerm::Delete(..)
                | FTerm::Modify(..)
                | FTerm::ModifyAttr(..)
                | FTerm::Assign(..)
        ) || matches!(self, FTerm::Var(v) if v.sort == Sort::State)
    }

    /// The sort of this term where it is syntax-directed. `Attr`,
    /// `UserApp`, and variables report what their structure implies;
    /// full checking lives in the engine, which knows the schema.
    pub fn sort_hint(&self) -> Option<Sort> {
        match self {
            FTerm::Var(v) => Some(v.sort),
            FTerm::Nat(_) | FTerm::Str(_) => Some(Sort::ATOM),
            FTerm::Rel(_) => None, // arity comes from the schema
            FTerm::Attr(..) | FTerm::Select(..) => Some(Sort::ATOM),
            FTerm::TupleCons(ts) => Some(Sort::tup(ts.len())),
            FTerm::App(op, _) => match op {
                Op::Add | Op::Monus | Op::Mul | Op::Max | Op::Min | Op::Sum | Op::Size => {
                    Some(Sort::ATOM)
                }
                Op::Union | Op::Inter | Op::Diff | Op::Product => None,
            },
            FTerm::SetFormer { .. } => None,
            FTerm::IdOf(_) => None,
            FTerm::UserApp(..) => None,
            FTerm::Identity
            | FTerm::Seq(..)
            | FTerm::Cond(..)
            | FTerm::Foreach(..)
            | FTerm::Insert(..)
            | FTerm::Delete(..)
            | FTerm::Modify(..)
            | FTerm::ModifyAttr(..)
            | FTerm::Assign(..) => Some(Sort::State),
        }
    }
}

/// A fluent formula (truth-valued fluent), evaluated at a state by the
/// `w :: p` situational function.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum FFormula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// Comparison of two object-sorted f-terms.
    Cmp(CmpOp, FTerm, FTerm),
    /// Membership `t ∈ S`.
    Member(FTerm, FTerm),
    /// Subset `S ⊆ T` (by value).
    Subset(FTerm, FTerm),
    /// Negation.
    Not(Box<FFormula>),
    /// Conjunction.
    And(Box<FFormula>, Box<FFormula>),
    /// Disjunction.
    Or(Box<FFormula>, Box<FFormula>),
    /// Implication.
    Implies(Box<FFormula>, Box<FFormula>),
    /// Biconditional.
    Iff(Box<FFormula>, Box<FFormula>),
    /// Bounded existential over an object-sorted fluent variable.
    Exists(Var, Box<FFormula>),
    /// Bounded universal over an object-sorted fluent variable.
    Forall(Var, Box<FFormula>),
    /// A user-defined f-predicate.
    UserPred(Symbol, Vec<FTerm>),
}

impl FFormula {
    /// `lhs = rhs`.
    pub fn eq(lhs: FTerm, rhs: FTerm) -> FFormula {
        FFormula::Cmp(CmpOp::Eq, lhs, rhs)
    }

    /// `lhs ≠ rhs`.
    pub fn ne(lhs: FTerm, rhs: FTerm) -> FFormula {
        FFormula::Cmp(CmpOp::Ne, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: FTerm, rhs: FTerm) -> FFormula {
        FFormula::Cmp(CmpOp::Lt, lhs, rhs)
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: FTerm, rhs: FTerm) -> FFormula {
        FFormula::Cmp(CmpOp::Le, lhs, rhs)
    }

    /// `t ∈ S`.
    pub fn member(t: FTerm, set: FTerm) -> FFormula {
        FFormula::Member(t, set)
    }

    /// Negation helper, collapsing double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> FFormula {
        match self {
            FFormula::Not(inner) => *inner,
            FFormula::True => FFormula::False,
            FFormula::False => FFormula::True,
            f => FFormula::Not(Box::new(f)),
        }
    }

    /// Conjunction helper, absorbing `true`.
    pub fn and(self, rhs: FFormula) -> FFormula {
        match (self, rhs) {
            (FFormula::True, r) => r,
            (l, FFormula::True) => l,
            (l, r) => FFormula::And(Box::new(l), Box::new(r)),
        }
    }

    /// Disjunction helper, absorbing `false`.
    pub fn or(self, rhs: FFormula) -> FFormula {
        match (self, rhs) {
            (FFormula::False, r) => r,
            (l, FFormula::False) => l,
            (l, r) => FFormula::Or(Box::new(l), Box::new(r)),
        }
    }

    /// Implication helper.
    pub fn implies(self, rhs: FFormula) -> FFormula {
        FFormula::Implies(Box::new(self), Box::new(rhs))
    }

    /// Existential helper.
    pub fn exists(v: Var, body: FFormula) -> FFormula {
        FFormula::Exists(v, Box::new(body))
    }

    /// Universal helper.
    pub fn forall(v: Var, body: FFormula) -> FFormula {
        FFormula::Forall(v, Box::new(body))
    }

    /// Conjoin a sequence of formulas.
    pub fn and_all(fs: impl IntoIterator<Item = FFormula>) -> FFormula {
        fs.into_iter().fold(FFormula::True, FFormula::and)
    }
}

// ---------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------

impl fmt::Display for FTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FTerm::Var(v) => write!(f, "{v}"),
            FTerm::Nat(n) => write!(f, "{n}"),
            FTerm::Str(s) => write!(f, "'{s}'"),
            FTerm::Rel(r) => write!(f, "{r}"),
            FTerm::Attr(a, t) => write!(f, "{a}({t})"),
            FTerm::Select(t, i) => write!(f, "select({t}, {i})"),
            FTerm::TupleCons(ts) => {
                write!(f, "tuple(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            FTerm::App(op, args) if op.is_infix() && args.len() == 2 => {
                write!(f, "({} {op} {})", args[0], args[1])
            }
            FTerm::App(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            FTerm::SetFormer { head, vars, cond } => {
                write!(f, "{{ {head} | ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}: {}", v.sort)?;
                }
                write!(f, " . {cond} }}")
            }
            FTerm::IdOf(t) => write!(f, "id({t})"),
            FTerm::UserApp(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            FTerm::Identity => write!(f, "Λ"),
            FTerm::Seq(a, b) => write!(f, "{a} ;; {b}"),
            FTerm::Cond(p, t, e) => write!(f, "if {p} then {t} else {e}"),
            FTerm::Foreach(v, p, body) => {
                write!(f, "foreach {v}: {} | {p} do {body} end", v.sort)
            }
            FTerm::Insert(t, r) => write!(f, "insert({t}, {r})"),
            FTerm::Delete(t, r) => write!(f, "delete({t}, {r})"),
            FTerm::Modify(t, i, v) => write!(f, "modify({t}, {i}, {v})"),
            FTerm::ModifyAttr(t, a, v) => write!(f, "modify({t}, {a}, {v})"),
            FTerm::Assign(r, s) => write!(f, "assign({r}, {s})"),
        }
    }
}

impl fmt::Debug for FTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for FFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FFormula::True => write!(f, "true"),
            FFormula::False => write!(f, "false"),
            FFormula::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            FFormula::Member(t, s) => write!(f, "{t} in {s}"),
            FFormula::Subset(a, b) => write!(f, "{a} subset {b}"),
            FFormula::Not(p) => write!(f, "!({p})"),
            FFormula::And(a, b) => write!(f, "({} & {})", WrapQF(a), WrapQF(b)),
            FFormula::Or(a, b) => write!(f, "({} | {})", WrapQF(a), WrapQF(b)),
            FFormula::Implies(a, b) => {
                write!(f, "({} -> {})", WrapQF(a), WrapQF(b))
            }
            FFormula::Iff(a, b) => write!(f, "({} <-> {})", WrapQF(a), WrapQF(b)),
            FFormula::Exists(v, p) => write!(f, "exists {v}: {} . {p}", v.sort),
            FFormula::Forall(v, p) => write!(f, "forall {v}: {} . {p}", v.sort),
            FFormula::UserPred(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parenthesize quantified operands of binary connectives (see the
/// situational printer's `WrapQ` for the rationale).
struct WrapQF<'a>(&'a FFormula);

impl fmt::Display for WrapQF<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            FFormula::Forall(..) | FFormula::Exists(..) => write!(f, "({})", self.0),
            _ => write!(f, "{}", self.0),
        }
    }
}

impl fmt::Debug for FFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Marker for `ObjSort::Bool` so the import is used where intended.
#[allow(dead_code)]
const _: ObjSort = ObjSort::Bool;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_absorbs_identity() {
        let ins = FTerm::insert(FTerm::var(Var::tup_f("x", 1)), "R");
        assert_eq!(FTerm::Identity.seq(ins.clone()), ins);
        assert_eq!(ins.clone().seq(FTerm::Identity), ins);
        let composed = ins.clone().seq(ins.clone());
        assert!(matches!(composed, FTerm::Seq(..)));
    }

    #[test]
    fn seq_all_of_empty_is_identity() {
        assert_eq!(FTerm::seq_all([]), FTerm::Identity);
    }

    #[test]
    fn transaction_shape_detection() {
        assert!(FTerm::Identity.is_transaction_shaped());
        assert!(FTerm::insert(FTerm::nat(1), "R").is_transaction_shaped());
        assert!(!FTerm::nat(1).is_transaction_shaped());
        assert!(!FTerm::attr("salary", FTerm::var(Var::tup_f("e", 5))).is_transaction_shaped());
        assert!(FTerm::var(Var::transaction("t")).is_transaction_shaped());
        assert!(!FTerm::var(Var::tup_f("e", 5)).is_transaction_shaped());
    }

    #[test]
    fn sort_hints() {
        assert_eq!(FTerm::nat(3).sort_hint(), Some(Sort::ATOM));
        assert_eq!(
            FTerm::TupleCons(vec![FTerm::nat(1), FTerm::nat(2)]).sort_hint(),
            Some(Sort::tup(2))
        );
        assert_eq!(FTerm::Identity.sort_hint(), Some(Sort::State));
        assert_eq!(FTerm::rel("EMP").sort_hint(), None);
    }

    #[test]
    fn formula_constructors_simplify() {
        assert_eq!(FFormula::True.and(FFormula::False), FFormula::False);
        assert_eq!(FFormula::False.or(FFormula::True), FFormula::True);
        assert_eq!(FFormula::True.not(), FFormula::False);
        let p = FFormula::eq(FTerm::nat(1), FTerm::nat(1));
        assert_eq!(p.clone().not().not(), p);
    }

    #[test]
    fn and_all_folds() {
        let p = FFormula::eq(FTerm::nat(1), FTerm::nat(1));
        let q = FFormula::lt(FTerm::nat(1), FTerm::nat(2));
        let both = FFormula::and_all([p.clone(), q.clone()]);
        assert_eq!(both, p.and(q));
        assert_eq!(FFormula::and_all([]), FFormula::True);
    }

    #[test]
    fn cmp_flip_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = Var::tup_f("e", 5);
        let t = FTerm::modify_attr(
            FTerm::var(e),
            "salary",
            FTerm::attr("salary", FTerm::var(e)).monus(FTerm::nat(100)),
        );
        assert_eq!(t.to_string(), "modify(e, salary, (salary(e) - 100))");
        let p = FFormula::member(FTerm::var(e), FTerm::rel("EMP"));
        assert_eq!(p.to_string(), "e in EMP");
    }

    #[test]
    fn foreach_display() {
        let a = Var::tup_f("a", 3);
        let t = FTerm::foreach(
            a,
            FFormula::member(FTerm::var(a), FTerm::rel("ALLOC")),
            FTerm::delete(FTerm::var(a), "ALLOC"),
        );
        assert_eq!(
            t.to_string(),
            "foreach a: 3tup | a in ALLOC do delete(a, ALLOC) end"
        );
    }
}
