//! The situational transaction logic of Qian & Waldinger (SIGMOD 1988).
//!
//! A many-sorted classical first-order logic in which database states and
//! state transitions are explicit objects. The crate provides:
//!
//! * the sort system ([`sort`]): situational vs fluent classes over the
//!   state, atom, tuple, set, and identifier sorts;
//! * fluent expressions ([`fluent`]): f-terms (queries and transactions)
//!   and f-formulas, with the fluent combinators `;;`,
//!   `if‑then‑else`, and `foreach`;
//! * situational expressions ([`situational`]): s-terms and s-formulas
//!   built with the three situational functions `w:e`, `w::p`, `w;e`;
//! * substitution and unification ([`subst`], [`unify`]);
//! * the situational transaction theory T_L as data ([`axioms`]);
//! * a concrete syntax ([`parser`]).
//!
//! The executability discipline of Section 2 is enforced **by type**:
//! [`FTerm`] cannot mention states, so every f-term is a program over the
//! implicit current state; the paper's non-executable example (branching
//! on a future state) is only writable as an [`STerm`], which no evaluator
//! accepts as a program.

#![warn(missing_docs)]

pub mod axioms;
pub mod fluent;
pub mod parser;
pub mod plan;
pub mod ra;
pub mod situational;
pub mod sort;
pub mod sortck;
pub mod subst;
pub mod unify;

pub use fluent::{CmpOp, FFormula, FTerm, Op};
pub use parser::{
    parse_fformula, parse_fterm, parse_sformula, parse_sformula_with_params, ParseCtx,
};
pub use plan::{DomainSource, GuardMode, PlanStep, QuantPlan};
pub use situational::{SFormula, STerm};
pub use sort::{ObjSort, Sort, Var, VarClass};
pub use sortck::{check_fformula, check_sformula, sort_of_fterm, sort_of_sterm, Signature};
