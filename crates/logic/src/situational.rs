//! Situational expressions: s-terms and s-formulas.
//!
//! S-expressions "denote particular values in specific states" (Section 2).
//! They are built from situational variables, the three situational
//! functions applied to f-expressions —
//!
//! * `w : e`  — the **object** obtained by evaluating fluent `e` at `w`
//!   ([`STerm::EvalObj`]),
//! * `w :: p` — the **truth value** of fluent formula `p` at `w`
//!   ([`SFormula::Holds`]),
//! * `w ; e`  — the **state** after executing transaction `e` at `w`
//!   ([`STerm::EvalState`]),
//!
//! — and the ordinary first-order apparatus (functions, predicates,
//! connectives, quantifiers). Axioms and integrity constraints are closed
//! s-formulas (Definition 1).
//!
//! Quantifiers may bind situational variables (primed: values) *or* fluent
//! variables (unprimed: mappings), because the paper's examples do both —
//! Example 1 quantifies situational tuple variables `e'`, while Examples
//! 2–4 quantify fluent tuple variables `e` (evaluated at several states as
//! `s:e`, `s;t:e`) and fluent state variables `t` (transactions).

use crate::fluent::{CmpOp, FFormula, FTerm, Op};
use crate::sort::{Sort, Var, VarClass};
use std::fmt;
use txlog_base::Symbol;

/// A situational term (s-expression of object or state sort).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum STerm {
    /// A situational variable — a state variable `s` or a primed object
    /// variable `e'`.
    Var(Var),
    /// `w : e` — evaluate object-sorted fluent `e` at state `w`.
    EvalObj(Box<STerm>, Box<FTerm>),
    /// `w ; e` — the state after executing transaction `e` at state `w`.
    EvalState(Box<STerm>, Box<FTerm>),
    /// A natural-number constant.
    Nat(u64),
    /// A symbolic atom constant.
    Str(Symbol),
    /// Attribute selection by name on a tuple-sorted s-term (the primed
    /// `salary'(w, t)` of the paper — selection on an already-evaluated
    /// tuple value needs no further state argument).
    Attr(Symbol, Box<STerm>),
    /// Positional selection, 1-based.
    Select(Box<STerm>, usize),
    /// Tuple generator over s-terms.
    TupleCons(Vec<STerm>),
    /// Built-in operator application over s-terms.
    App(Op, Vec<STerm>),
    /// Situational set former `{ head | vars . cond }`.
    SetFormer {
        /// The head expression.
        head: Box<STerm>,
        /// Bound situational variables.
        vars: Vec<Var>,
        /// The restricting condition.
        cond: Box<SFormula>,
    },
    /// The identifier function `id` applied to an s-term.
    IdOf(Box<STerm>),
    /// A user-defined s-function application (the primed `f'`; the state
    /// argument, when needed, is an explicit first argument).
    UserApp(Symbol, Vec<STerm>),
}

impl STerm {
    /// Situational variable reference.
    pub fn var(v: Var) -> STerm {
        debug_assert_eq!(
            v.class,
            VarClass::Situational,
            "STerm::Var must be situational-class"
        );
        STerm::Var(v)
    }

    /// `w : e`.
    pub fn eval_obj(self, e: FTerm) -> STerm {
        STerm::EvalObj(Box::new(self), Box::new(e))
    }

    /// `w ; e`.
    pub fn eval_state(self, e: FTerm) -> STerm {
        STerm::EvalState(Box::new(self), Box::new(e))
    }

    /// `w :: p` (an s-formula).
    pub fn holds(self, p: FFormula) -> SFormula {
        SFormula::Holds(self, p)
    }

    /// Attribute selection helper.
    pub fn attr(name: &str, t: STerm) -> STerm {
        STerm::Attr(Symbol::new(name), Box::new(t))
    }

    /// Natural constant.
    pub fn nat(n: u64) -> STerm {
        STerm::Nat(n)
    }

    /// Symbolic constant.
    pub fn str(s: &str) -> STerm {
        STerm::Str(Symbol::new(s))
    }

    /// Infix `+`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: STerm) -> STerm {
        STerm::App(Op::Add, vec![self, rhs])
    }

    /// Infix monus `-`.
    pub fn monus(self, rhs: STerm) -> STerm {
        STerm::App(Op::Monus, vec![self, rhs])
    }

    /// Sum aggregate.
    pub fn sum(set: STerm) -> STerm {
        STerm::App(Op::Sum, vec![set])
    }

    /// True iff the term is state-sorted where syntax determines it.
    pub fn is_state_shaped(&self) -> bool {
        match self {
            STerm::Var(v) => v.sort == Sort::State,
            STerm::EvalState(..) => true,
            _ => false,
        }
    }
}

/// A situational formula — the sentence language of the logic. Axioms and
/// integrity constraints are closed `SFormula`s.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum SFormula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// `w :: p` — fluent formula `p` holds at state `w`.
    Holds(STerm, FFormula),
    /// Comparison of two s-terms. `Eq`/`Ne` apply at any sort (including
    /// the state sort — Example 4 compares `s = s;t₁;t₂`).
    Cmp(CmpOp, STerm, STerm),
    /// Membership `t ∈ S` over s-terms.
    Member(STerm, STerm),
    /// Subset over s-terms (by value).
    Subset(STerm, STerm),
    /// Negation.
    Not(Box<SFormula>),
    /// Conjunction.
    And(Box<SFormula>, Box<SFormula>),
    /// Disjunction.
    Or(Box<SFormula>, Box<SFormula>),
    /// Implication.
    Implies(Box<SFormula>, Box<SFormula>),
    /// Biconditional.
    Iff(Box<SFormula>, Box<SFormula>),
    /// Universal quantifier (situational or fluent variable).
    Forall(Var, Box<SFormula>),
    /// Existential quantifier (situational or fluent variable).
    Exists(Var, Box<SFormula>),
    /// A user-defined s-predicate.
    UserPred(Symbol, Vec<STerm>),
}

impl SFormula {
    /// `lhs = rhs`.
    pub fn eq(lhs: STerm, rhs: STerm) -> SFormula {
        SFormula::Cmp(CmpOp::Eq, lhs, rhs)
    }

    /// `lhs ≠ rhs`.
    pub fn ne(lhs: STerm, rhs: STerm) -> SFormula {
        SFormula::Cmp(CmpOp::Ne, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: STerm, rhs: STerm) -> SFormula {
        SFormula::Cmp(CmpOp::Lt, lhs, rhs)
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: STerm, rhs: STerm) -> SFormula {
        SFormula::Cmp(CmpOp::Le, lhs, rhs)
    }

    /// `t ∈ S`.
    pub fn member(t: STerm, set: STerm) -> SFormula {
        SFormula::Member(t, set)
    }

    /// Negation, collapsing double negation and constants.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> SFormula {
        match self {
            SFormula::Not(inner) => *inner,
            SFormula::True => SFormula::False,
            SFormula::False => SFormula::True,
            f => SFormula::Not(Box::new(f)),
        }
    }

    /// Conjunction, absorbing `true`.
    pub fn and(self, rhs: SFormula) -> SFormula {
        match (self, rhs) {
            (SFormula::True, r) => r,
            (l, SFormula::True) => l,
            (l, r) => SFormula::And(Box::new(l), Box::new(r)),
        }
    }

    /// Disjunction, absorbing `false`.
    pub fn or(self, rhs: SFormula) -> SFormula {
        match (self, rhs) {
            (SFormula::False, r) => r,
            (l, SFormula::False) => l,
            (l, r) => SFormula::Or(Box::new(l), Box::new(r)),
        }
    }

    /// Implication.
    pub fn implies(self, rhs: SFormula) -> SFormula {
        SFormula::Implies(Box::new(self), Box::new(rhs))
    }

    /// Biconditional.
    pub fn iff(self, rhs: SFormula) -> SFormula {
        SFormula::Iff(Box::new(self), Box::new(rhs))
    }

    /// Universal closure over one variable.
    pub fn forall(v: Var, body: SFormula) -> SFormula {
        SFormula::Forall(v, Box::new(body))
    }

    /// Existential closure over one variable.
    pub fn exists(v: Var, body: SFormula) -> SFormula {
        SFormula::Exists(v, Box::new(body))
    }

    /// Universal closure over several variables (outermost first).
    pub fn forall_all(vars: impl IntoIterator<Item = Var>, body: SFormula) -> SFormula {
        let vars: Vec<Var> = vars.into_iter().collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| SFormula::forall(v, acc))
    }

    /// Conjoin many formulas.
    pub fn and_all(fs: impl IntoIterator<Item = SFormula>) -> SFormula {
        fs.into_iter().fold(SFormula::True, SFormula::and)
    }

    /// Strip an outermost block of universal quantifiers, returning the
    /// bound variables (outermost first) and the matrix.
    pub fn strip_foralls(&self) -> (Vec<Var>, &SFormula) {
        let mut vars = Vec::new();
        let mut cur = self;
        while let SFormula::Forall(v, body) = cur {
            vars.push(*v);
            cur = body;
        }
        (vars, cur)
    }
}

// ---------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------

impl fmt::Display for STerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            STerm::Var(v) => write!(f, "{v}"),
            STerm::EvalObj(w, e) => {
                write!(f, "{w}:{e}", w = WrapState(w), e = WrapFluent(e))
            }
            STerm::EvalState(w, e) => {
                write!(f, "{w};{e}", w = WrapState(w), e = WrapFluent(e))
            }
            STerm::Nat(n) => write!(f, "{n}"),
            STerm::Str(s) => write!(f, "'{s}'"),
            STerm::Attr(a, t) => write!(f, "{a}({t})"),
            STerm::Select(t, i) => write!(f, "select({t}, {i})"),
            STerm::TupleCons(ts) => {
                write!(f, "tuple(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            STerm::App(op, args) if op.is_infix() && args.len() == 2 => {
                write!(f, "({} {op} {})", args[0], args[1])
            }
            STerm::App(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            STerm::SetFormer { head, vars, cond } => {
                write!(f, "{{ {head} | ")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}: {}", v.sort)?;
                }
                write!(f, " . {cond} }}")
            }
            STerm::IdOf(t) => write!(f, "id({t})"),
            STerm::UserApp(name, args) => {
                write!(f, "{name}'(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parenthesize compound state terms on the left of `:` / `;` / `::` so
/// `s;t : e` prints unambiguously as `(s;t):e`.
struct WrapState<'a>(&'a STerm);

/// Parenthesize fluent operands of `:` / `;` whose printed forms would
/// extend past the evaluation (`s;(a ;; b)`, `s;(if … else …)`) — the
/// parser reads only a primary fluent after the operator.
struct WrapFluent<'a>(&'a FTerm);

impl fmt::Display for WrapFluent<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            FTerm::Seq(..) | FTerm::Cond(..) | FTerm::App(..) => {
                write!(f, "({})", self.0)
            }
            _ => write!(f, "{}", self.0),
        }
    }
}

impl fmt::Display for WrapState<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            STerm::Var(_) => write!(f, "{}", self.0),
            _ => write!(f, "({})", self.0),
        }
    }
}

impl fmt::Debug for STerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SFormula::True => write!(f, "true"),
            SFormula::False => write!(f, "false"),
            SFormula::Holds(w, p) => write!(f, "{w}::({p})", w = WrapState(w)),
            SFormula::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            SFormula::Member(t, s) => write!(f, "{t} in {s}"),
            SFormula::Subset(a, b) => write!(f, "{a} subset {b}"),
            SFormula::Not(p) => write!(f, "!({p})"),
            SFormula::And(a, b) => {
                write!(f, "({} & {})", WrapQ(a), WrapQ(b))
            }
            SFormula::Or(a, b) => {
                write!(f, "({} | {})", WrapQ(a), WrapQ(b))
            }
            SFormula::Implies(a, b) => {
                write!(f, "({} -> {})", WrapQ(a), WrapQ(b))
            }
            SFormula::Iff(a, b) => {
                write!(f, "({} <-> {})", WrapQ(a), WrapQ(b))
            }
            SFormula::Forall(v, p) => {
                write!(f, "forall {v}: {} . {p}", BinderSort(*v))
            }
            SFormula::Exists(v, p) => {
                write!(f, "exists {v}: {} . {p}", BinderSort(*v))
            }
            SFormula::UserPred(name, args) => {
                write!(f, "{name}'(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parenthesize quantified operands of binary connectives: a bare
/// `exists v: sort . body -> q` would re-parse with the implication
/// inside the quantifier's scope.
struct WrapQ<'a>(&'a SFormula);

impl fmt::Display for WrapQ<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            SFormula::Forall(..) | SFormula::Exists(..) => write!(f, "({})", self.0),
            _ => write!(f, "{}", self.0),
        }
    }
}

/// Binder sort annotation in the concrete syntax: `tx` for state-sorted
/// fluent variables (transactions), a trailing `'` on situational object
/// sorts (mirroring the paper's `∀_5tup' e'`), the plain sort otherwise.
struct BinderSort(Var);

impl fmt::Display for BinderSort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.0.sort, self.0.class) {
            (Sort::State, VarClass::Fluent) => write!(f, "tx"),
            (Sort::State, VarClass::Situational) => write!(f, "state"),
            (sort, VarClass::Situational) => write!(f, "{sort}'"),
            (sort, VarClass::Fluent) => write!(f, "{sort}"),
        }
    }
}

impl fmt::Debug for SFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_of_situational_functions() {
        let s = STerm::var(Var::state("s"));
        let t = Var::transaction("t");
        let e = Var::tup_f("e", 5);
        // s:e
        let obj = s.clone().eval_obj(FTerm::var(e));
        assert_eq!(obj.to_string(), "s:e");
        // (s;t):e
        let after = s.clone().eval_state(FTerm::var(t)).eval_obj(FTerm::var(e));
        assert_eq!(after.to_string(), "(s;t):e");
        // s::(p)
        let holds = s.holds(FFormula::member(FTerm::var(e), FTerm::rel("EMP")));
        assert_eq!(holds.to_string(), "s::(e in EMP)");
    }

    #[test]
    fn connective_simplification() {
        assert_eq!(SFormula::True.and(SFormula::False), SFormula::False);
        assert_eq!(SFormula::False.or(SFormula::True), SFormula::True);
        let p = SFormula::eq(STerm::nat(1), STerm::nat(1));
        assert_eq!(p.clone().not().not(), p);
    }

    #[test]
    fn forall_all_order_is_outermost_first() {
        let s = Var::state("s");
        let t = Var::transaction("t");
        let body = SFormula::True;
        let q = SFormula::forall_all([s, t], body);
        match q {
            SFormula::Forall(v1, inner) => {
                assert_eq!(v1, s);
                match *inner {
                    SFormula::Forall(v2, _) => assert_eq!(v2, t),
                    other => panic!("expected inner forall, got {other}"),
                }
            }
            other => panic!("expected forall, got {other}"),
        }
    }

    #[test]
    fn strip_foralls() {
        let s = Var::state("s");
        let e = Var::tup_s("e", 5);
        let q = SFormula::forall_all([s, e], SFormula::False);
        let (vars, matrix) = q.strip_foralls();
        assert_eq!(vars, vec![s, e]);
        assert_eq!(*matrix, SFormula::False);
    }

    #[test]
    fn state_equality_is_expressible() {
        // Example 4's invertibility: s = s;t1;t2
        let s = Var::state("s");
        let t1 = Var::transaction("t1");
        let t2 = Var::transaction("t2");
        let lhs = STerm::var(s);
        let rhs = STerm::var(s)
            .eval_state(FTerm::var(t1))
            .eval_state(FTerm::var(t2));
        let f = SFormula::eq(lhs, rhs);
        assert_eq!(f.to_string(), "s = (s;t1);t2");
    }

    #[test]
    fn binder_display_marks_situational_object_sorts() {
        let e = Var::tup_s("e", 5);
        let q = SFormula::forall(e, SFormula::True);
        assert_eq!(q.to_string(), "forall e': 5tup' . true");
        let t = Var::transaction("t");
        let q = SFormula::exists(t, SFormula::True);
        assert_eq!(q.to_string(), "exists t: tx . true");
    }

    #[test]
    fn sum_display() {
        let a = Var::tup_s("a", 3);
        let set = STerm::SetFormer {
            head: Box::new(STerm::attr("perc", STerm::var(a))),
            vars: vec![a],
            cond: Box::new(SFormula::True),
        };
        assert_eq!(
            STerm::sum(set).to_string(),
            "sum({ perc(a') | a': 3tup . true })"
        );
    }
}
