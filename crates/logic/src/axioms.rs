//! The situational transaction theory T_L as first-class data.
//!
//! Section 2 axiomatizes the domain-independent behaviour of databases:
//! fluent-function laws (`composition-associativity`, `identity-fluent`),
//! linkage axioms connecting situational functions with fluent functions
//! (`composition-linkage`, `condition-linkage`, `iteration-linkage`, and
//! the object/predicate/state/setformer linkages), and action/frame axioms
//! for the state-changing fluents (`modify-action`, `modify-frame`, and
//! their analogues for `insert`, `delete`, `assign`).
//!
//! In this implementation the *linkage* axioms are the operational
//! semantics of the engine — they hold by construction of the evaluator —
//! and the *action/frame* axioms are both (a) verified against every model
//! the engine builds (the integration tests instantiate the schemas below
//! and model-check them) and (b) used by the prover as rewrite knowledge.
//! This module renders the schemas as closed [`SFormula`]s so they can be
//! displayed, instantiated, checked, and handed to the prover.

use crate::fluent::{FFormula, FTerm};
use crate::situational::{SFormula, STerm};
use crate::sort::Var;
use std::fmt;

/// A named axiom instance: a closed s-formula plus its schema name.
#[derive(Clone)]
pub struct Axiom {
    /// Schema name, matching the paper's label (e.g. `modify-frame`).
    pub name: String,
    /// The closed s-formula.
    pub formula: SFormula,
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.name, self.formula)
    }
}

impl fmt::Debug for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// `identity-fluent` on states: `∀s. s;Λ = s`.
pub fn identity_fluent() -> Axiom {
    let s = Var::state("s");
    Axiom {
        name: "identity-fluent".into(),
        formula: SFormula::forall(
            s,
            SFormula::eq(STerm::var(s).eval_state(FTerm::Identity), STerm::var(s)),
        ),
    }
}

/// `∃u. w = u` — the state term denotes a recorded state. The paper
/// assumes transactions are total; finite models record only the
/// transitions that exist, so the laws below carry this guard (an
/// undefined term makes any atom false in the checker's free logic, and
/// `undefined = undefined` must not be read as a violation).
fn defined(w: STerm, tag: &str) -> SFormula {
    let u = Var::state(&format!("u-{tag}"));
    SFormula::exists(u, SFormula::eq(w, STerm::var(u)))
}

/// `composition-linkage`: `∀s ∀a ∀b. defined((s;a);b) → s;(a;;b) = (s;a);b`
/// where `a`, `b` range over transactions.
pub fn composition_linkage() -> Axiom {
    let s = Var::state("s");
    let a = Var::transaction("a");
    let b = Var::transaction("b");
    let stepped = STerm::var(s)
        .eval_state(FTerm::var(a))
        .eval_state(FTerm::var(b));
    Axiom {
        name: "composition-linkage".into(),
        formula: SFormula::forall_all(
            [s, a, b],
            defined(stepped.clone(), "cl").implies(SFormula::eq(
                STerm::var(s).eval_state(FTerm::var(a).seq(FTerm::var(b))),
                stepped,
            )),
        ),
    }
}

/// `composition-associativity` at the evaluation level:
/// `∀s ∀a ∀b ∀c. defined(((s;a);b);c) → s;((a;;b);;c) = s;(a;;(b;;c))`.
pub fn composition_associativity() -> Axiom {
    let s = Var::state("s");
    let a = Var::transaction("a");
    let b = Var::transaction("b");
    let c = Var::transaction("c");
    let left = FTerm::var(a).seq(FTerm::var(b)).seq(FTerm::var(c));
    let right = FTerm::var(a).seq(FTerm::var(b).seq(FTerm::var(c)));
    let stepped = STerm::var(s)
        .eval_state(FTerm::var(a))
        .eval_state(FTerm::var(b))
        .eval_state(FTerm::var(c));
    Axiom {
        name: "composition-associativity".into(),
        formula: SFormula::forall_all(
            [s, a, b, c],
            defined(stepped, "ca").implies(SFormula::eq(
                STerm::var(s).eval_state(left),
                STerm::var(s).eval_state(right),
            )),
        ),
    }
}

/// `insert-action` for relation `rel` of the given arity:
/// `∀s ∀t. s:t ∈ s:rel → (s;insert(t, rel)):t ∈ (s;insert(t, rel)):rel`
/// — inserting a (live) tuple makes it a member afterwards. The guard
/// `s:t ∈ s:rel` restricts the fluent variable to tuples that denote at
/// `s`; the general action axiom over arbitrary tuple *values* is
/// exercised operationally by the engine's tests.
pub fn insert_action(rel: &str, arity: usize) -> Axiom {
    let s = Var::state("s");
    let t = Var::tup_f("t", arity);
    let after = STerm::var(s).eval_state(FTerm::insert(FTerm::var(t), rel));
    Axiom {
        name: format!("insert-action({rel})"),
        formula: SFormula::forall_all(
            [s, t],
            SFormula::member(
                STerm::var(s).eval_obj(FTerm::var(t)),
                STerm::var(s).eval_obj(FTerm::rel(rel)),
            )
            .implies(SFormula::member(
                after.clone().eval_obj(FTerm::var(t)),
                after.eval_obj(FTerm::rel(rel)),
            )),
        ),
    }
}

/// `delete-action` for relation `rel`:
/// `∀s ∀t. ¬((s;delete(t, rel)):t ∈ (s;delete(t, rel)):rel)` — after
/// deleting `t` from `rel`, `t` is not a member (a deleted tuple fails to
/// denote, and a non-denoting membership is false).
pub fn delete_action(rel: &str, arity: usize) -> Axiom {
    let s = Var::state("s");
    let t = Var::tup_f("t", arity);
    let after = STerm::var(s).eval_state(FTerm::delete(FTerm::var(t), rel));
    Axiom {
        name: format!("delete-action({rel})"),
        formula: SFormula::forall_all(
            [s, t],
            SFormula::member(
                after.clone().eval_obj(FTerm::var(t)),
                after.eval_obj(FTerm::rel(rel)),
            )
            .not(),
        ),
    }
}

/// `delete-frame` for relations `rel` (deleted from) and `other`:
/// deleting from `rel` does not change `other`.
pub fn delete_frame(rel: &str, arity: usize, other: &str) -> Axiom {
    let s = Var::state("s");
    let t = Var::tup_f("t", arity);
    let after = STerm::var(s).eval_state(FTerm::delete(FTerm::var(t), rel));
    Axiom {
        name: format!("delete-frame({rel}, {other})"),
        formula: SFormula::forall_all(
            [s, t],
            SFormula::eq(
                after.eval_obj(FTerm::rel(other)),
                STerm::var(s).eval_obj(FTerm::rel(other)),
            ),
        ),
    }
}

/// `insert-frame` for `rel` (inserted into) and `other ≠ rel`. Guarded
/// on the tuple denoting at `s` (the fluent variable ranges over all
/// identities in the model; inserting a tuple that does not exist at `s`
/// is not an executable step there).
pub fn insert_frame(rel: &str, arity: usize, other: &str) -> Axiom {
    let s = Var::state("s");
    let t = Var::tup_f("t", arity);
    let after = STerm::var(s).eval_state(FTerm::insert(FTerm::var(t), rel));
    Axiom {
        name: format!("insert-frame({rel}, {other})"),
        formula: SFormula::forall_all(
            [s, t],
            SFormula::member(
                STerm::var(s).eval_obj(FTerm::var(t)),
                STerm::var(s).eval_obj(FTerm::rel(rel)),
            )
            .implies(SFormula::eq(
                after.eval_obj(FTerm::rel(other)),
                STerm::var(s).eval_obj(FTerm::rel(other)),
            )),
        ),
    }
}

/// The paper's `modify-action` (for attribute `i`, 1 ≤ i ≤ arity):
/// `∀w ∀t ∀v. w:t ∈ w:rel →
///     select((w;modify(t, i, v)):t, i) = v`.
pub fn modify_action(rel: &str, arity: usize, i: usize) -> Axiom {
    assert!(i >= 1 && i <= arity, "modify-action index out of range");
    let w = Var::state("w");
    let t = Var::tup_f("t", arity);
    let v = Var::atom_f("v");
    let after = STerm::var(w).eval_state(FTerm::modify(FTerm::var(t), i, FTerm::var(v)));
    Axiom {
        name: format!("modify-action({rel}, {i})"),
        formula: SFormula::forall_all(
            [w, t, v],
            SFormula::member(
                STerm::var(w).eval_obj(FTerm::var(t)),
                STerm::var(w).eval_obj(FTerm::rel(rel)),
            )
            .implies(SFormula::eq(
                STerm::Select(Box::new(after.eval_obj(FTerm::var(t))), i),
                STerm::var(w).eval_obj(FTerm::var(v)),
            )),
        ),
    }
}

/// The paper's `modify-frame`: for tuples with distinct identifiers,
/// modifying `t₂` leaves every attribute of `t₁` unchanged:
/// `∀w ∀t₁ ∀t₂ ∀v. (w:t₁ ∈ w:rel ∧ w:t₂ ∈ w:rel ∧ id(w:t₁) ≠ id(w:t₂)) →
///     select((w;modify(t₂, j, v)):t₁, i) = select(w:t₁, i)`.
pub fn modify_frame(rel: &str, arity: usize, i: usize, j: usize) -> Axiom {
    assert!(i >= 1 && i <= arity && j >= 1 && j <= arity);
    let w = Var::state("w");
    let t1 = Var::tup_f("t1", arity);
    let t2 = Var::tup_f("t2", arity);
    let v = Var::atom_f("v");
    let after = STerm::var(w).eval_state(FTerm::modify(FTerm::var(t2), j, FTerm::var(v)));
    let in_rel = |t: Var| {
        SFormula::member(
            STerm::var(w).eval_obj(FTerm::var(t)),
            STerm::var(w).eval_obj(FTerm::rel(rel)),
        )
    };
    let distinct = SFormula::ne(
        STerm::IdOf(Box::new(STerm::var(w).eval_obj(FTerm::var(t1)))),
        STerm::IdOf(Box::new(STerm::var(w).eval_obj(FTerm::var(t2)))),
    );
    Axiom {
        name: format!("modify-frame({rel}, {i}, {j})"),
        formula: SFormula::forall_all(
            [w, t1, t2, v],
            in_rel(t1)
                .and(in_rel(t2))
                .and(distinct)
                .implies(SFormula::eq(
                    STerm::Select(Box::new(after.eval_obj(FTerm::var(t1))), i),
                    STerm::Select(Box::new(STerm::var(w).eval_obj(FTerm::var(t1))), i),
                )),
        ),
    }
}

/// `condition-linkage` specialized to membership tests:
/// `∀s ∀t. s;(if p then a else b) = (if s::p then s;a else s;b)` — we
/// render the right-hand case split as a conjunction of two implications.
pub fn condition_linkage(p: FFormula, a: FTerm, b: FTerm) -> Axiom {
    let s = Var::state("s");
    let cond_tx = FTerm::cond(p.clone(), a.clone(), b.clone());
    let lhs = STerm::var(s).eval_state(cond_tx);
    let then_eq = SFormula::Holds(STerm::var(s), p.clone())
        .implies(SFormula::eq(lhs.clone(), STerm::var(s).eval_state(a)));
    let else_eq = SFormula::Holds(STerm::var(s), p)
        .not()
        .implies(SFormula::eq(lhs, STerm::var(s).eval_state(b)));
    Axiom {
        name: "condition-linkage".into(),
        formula: SFormula::forall(s, then_eq.and(else_eq)),
    }
}

/// The domain-independent core of T_L for a given set of relations
/// (name, arity): fluent laws plus per-relation action/frame instances.
pub fn theory(rels: &[(&str, usize)]) -> Vec<Axiom> {
    let mut out = vec![
        identity_fluent(),
        composition_linkage(),
        composition_associativity(),
    ];
    for &(rel, arity) in rels {
        out.push(insert_action(rel, arity));
        out.push(delete_action(rel, arity));
        for i in 1..=arity {
            out.push(modify_action(rel, arity, i));
            for j in 1..=arity {
                out.push(modify_frame(rel, arity, i, j));
            }
        }
        for &(other, _) in rels {
            if other != rel {
                out.push(insert_frame(rel, arity, other));
                out.push(delete_frame(rel, arity, other));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subst::sformula_free_vars;

    #[test]
    fn axioms_are_closed() {
        for ax in theory(&[("EMP", 5), ("DEPT", 3)]) {
            assert!(
                sformula_free_vars(&ax.formula).is_empty(),
                "axiom {} has free variables",
                ax.name
            );
        }
    }

    #[test]
    fn theory_size_scales_with_schema() {
        let small = theory(&[("R", 1)]);
        let big = theory(&[("R", 1), ("S", 2)]);
        assert!(big.len() > small.len());
        // R with arity 1: insert-action, delete-action, 1 modify-action,
        // 1 modify-frame; plus 3 fluent laws.
        assert_eq!(small.len(), 3 + 2 + 1 + 1);
    }

    #[test]
    fn display_matches_paper_shape() {
        let ax = modify_action("EMP", 5, 3);
        let text = ax.to_string();
        assert!(text.contains("modify-action(EMP, 3)"));
        assert!(text.contains("modify(t, 3, v)"));
        let ax = identity_fluent();
        assert_eq!(ax.formula.to_string(), "forall s: state . s;Λ = s");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn modify_action_rejects_bad_index() {
        let _ = modify_action("EMP", 5, 6);
    }

    #[test]
    fn condition_linkage_is_closed_when_parts_are() {
        let ax = condition_linkage(FFormula::True, FTerm::Identity, FTerm::Identity);
        assert!(sformula_free_vars(&ax.formula).is_empty());
    }
}
