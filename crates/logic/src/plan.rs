//! Query plans for bounded-quantifier enumeration.
//!
//! The engine's quantifiers, set-formers, and `foreach` all enumerate
//! finite variable domains derived from the restricting condition
//! (bounded quantification: a `x ∈ R` conjunct *defines* `x`'s domain).
//! This module compiles a quantifier prefix plus condition into a
//! [`QuantPlan`] — a join-ordered sequence of [`PlanStep`]s, one per
//! bound variable — that an evaluator can interpret instead of a nested
//! full scan. Plans extend the `ra` vocabulary from whole-relation
//! operators down to the per-variable enumeration the evaluator runs.
//!
//! The compilation is *purely syntactic* (no database access) and layered:
//!
//! 1. **Baseline domain** — mirrors the naive evaluator's membership
//!    search exactly ([`find_membership_rel`]): a restricting `v ∈ R`
//!    conjunct gives a relation scan; otherwise the variable's sort picks
//!    the active-domain fallback. This layer *is* the semantics: the
//!    planner and the naive enumerator must agree on it.
//! 2. **Index probes** — an equality conjunct `l(v) = k` (or
//!    `select(v, i) = k`) whose key `k` depends only on already-bound
//!    variables upgrades the scan to an [`DomainSource::IndexProbe`]:
//!    a hash-join step instead of a scan-and-filter.
//! 3. **Residual filters** — remaining narrowing conjuncts become
//!    per-step [`PlanStep::filters`], letting the evaluator discard a
//!    binding before recursing into deeper steps. Filters are an
//!    *enumeration* optimization only: evaluators re-check the full
//!    condition on surviving assignments, so a filter can only skip
//!    work, never change a result.
//!
//! Which conjuncts may narrow depends on the quantifier's polarity,
//! captured by [`GuardMode`]: existential-shaped enumerations
//! (`exists`, set-formers, `foreach`) may use any positive conjunct —
//! a false conjunct means the binding is not a witness/member/match —
//! while universal enumerations may only use conjuncts from implication
//! antecedents — a false antecedent makes the body vacuously true, so
//! the skipped binding was never a counterexample.

use crate::fluent::{CmpOp, FFormula, FTerm};
use crate::sort::{Sort, Var};
use crate::sortck::Signature;
use crate::subst::free_vars_fformula;
use std::collections::HashSet;
use txlog_base::Symbol;

/// Where one plan step's candidate bindings come from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DomainSource {
    /// Scan every tuple of the named relation (a `v ∈ R` conjunct
    /// restricted the domain but no usable equality key was found).
    Scan(Symbol),
    /// Probe the relation's per-column secondary index: enumerate only
    /// the tuples whose 1-based column `col` equals the value of `key`.
    /// `key` mentions no later-bound plan variable, so the evaluator can
    /// compute it before enumerating this step.
    IndexProbe {
        /// The relation restricting the variable (as in [`DomainSource::Scan`]).
        rel: Symbol,
        /// 1-based column the equality conjunct constrains.
        col: usize,
        /// The key expression the column must equal.
        key: FTerm,
    },
    /// Active-domain fallback for an unrestricted tuple variable: every
    /// tuple of the given arity in the state.
    ActiveTuples(usize),
    /// Active-domain fallback for an atom variable: every atom occurring
    /// in the state plus the constants of the condition.
    Atoms,
    /// The variable's sort has no finite enumeration — interpreting this
    /// step reproduces the naive evaluator's sort error.
    Unenumerable(Sort),
}

/// One variable of a [`QuantPlan`]: its candidate source and the
/// narrowing conjuncts decidable once it is bound.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanStep {
    /// The variable this step binds.
    pub var: Var,
    /// Where its candidate bindings come from.
    pub source: DomainSource,
    /// Narrowing conjuncts whose plan variables are all bound after this
    /// step; a conjunct that evaluates to `false` lets the evaluator skip
    /// the binding. Evaluation failures must be tolerated (the binding is
    /// kept and the full condition decides).
    pub filters: Vec<FFormula>,
}

/// A compiled quantifier prefix: `steps` in binding order, preceded by
/// `prefilters` — narrowing conjuncts mentioning no plan variable at
/// all, decidable once before any enumeration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuantPlan {
    /// Conjuncts free of every plan variable; if one is decidably false
    /// the whole enumeration is empty (existential) or vacuous
    /// (universal).
    pub prefilters: Vec<FFormula>,
    /// One step per bound variable, in binding order.
    pub steps: Vec<PlanStep>,
}

/// The polarity discipline deciding which conjuncts may narrow a domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuardMode {
    /// Existential-shaped enumeration (`exists`, set-former, `foreach`):
    /// any positive conjunct of the condition may narrow — a binding
    /// falsifying one is not a witness.
    Positive,
    /// Universal enumeration (`forall`): only conjuncts of implication
    /// antecedents may narrow — a binding falsifying one satisfies the
    /// body vacuously.
    Guarded,
}

/// Find a conjunct `v ∈ R` restricting `v` to relation `R`, looking
/// through conjunctions (left side first) and implication antecedents.
/// This search *defines* the bounded-quantification domain: the naive
/// enumerator and the planner both call it, so they cannot disagree on
/// which relation bounds a variable.
pub fn find_membership_rel(p: &FFormula, v: Var) -> Option<Symbol> {
    match p {
        FFormula::Member(FTerm::Var(x), FTerm::Rel(r)) if *x == v => Some(*r),
        FFormula::And(a, b) => find_membership_rel(a, v).or_else(|| find_membership_rel(b, v)),
        // The antecedent of an implication restricts the quantified
        // domain (`∀v. v ∈ R → φ` ranges over R).
        FFormula::Implies(a, _) => find_membership_rel(a, v),
        _ => None,
    }
}

/// Compile the quantifier prefix `vars` bound by `cond` into a plan.
///
/// `sig` supplies relation arities and attribute positions (needed to
/// recognise `l(v) = k` as a column constraint); `mode` fixes the
/// narrowing polarity. The result depends only on the syntax of `cond`
/// and the signature, never on a database.
pub fn plan_quantifiers(
    sig: &Signature,
    vars: &[Var],
    cond: &FFormula,
    mode: GuardMode,
) -> QuantPlan {
    let narrowing = narrowing_conjuncts(cond, mode);
    let plan_vars: HashSet<Var> = vars.iter().copied().collect();

    // Partition narrowing conjuncts by the *last* plan variable they
    // mention (in binding order); conjuncts mentioning none are
    // decidable before enumeration starts.
    let mut prefilters = Vec::new();
    let mut per_step: Vec<Vec<&FFormula>> = vec![Vec::new(); vars.len()];
    for c in &narrowing {
        let mut fv = HashSet::new();
        free_vars_fformula(c, &mut fv);
        match vars.iter().rposition(|v| fv.contains(v)) {
            Some(i) => per_step[i].push(c),
            None => prefilters.push((*c).clone()),
        }
    }

    let mut steps = Vec::with_capacity(vars.len());
    for (i, &v) in vars.iter().enumerate() {
        let mut source = baseline_source(cond, v);
        let mut probe_conjunct: Option<&FFormula> = None;
        if let DomainSource::Scan(rel) = source {
            // Later-bound (and self-) variables cannot key a probe.
            let unbound: HashSet<Var> = plan_vars
                .iter()
                .copied()
                .filter(|u| vars.iter().position(|w| w == u) >= Some(i))
                .collect();
            if let Some((col, key, c)) = find_probe(sig, &narrowing, rel, v, &unbound) {
                source = DomainSource::IndexProbe { rel, col, key };
                probe_conjunct = Some(c);
            }
        }
        // A `v ∈ R` conjunct naming the step's own source relation is
        // tautological on the enumerated candidates — drop it, like the
        // conjunct a probe already enforces.
        let bound_rel = match &source {
            DomainSource::Scan(r) => Some(*r),
            DomainSource::IndexProbe { rel, .. } => Some(*rel),
            _ => None,
        };
        let filters = per_step[i]
            .iter()
            .filter(|c| !probe_conjunct.is_some_and(|p| std::ptr::eq(p, **c)))
            .filter(|c| {
                !matches!(c, FFormula::Member(FTerm::Var(x), FTerm::Rel(r))
                    if *x == v && Some(*r) == bound_rel)
            })
            .map(|c| (*c).clone())
            .collect();
        steps.push(PlanStep {
            var: v,
            source,
            filters,
        });
    }
    QuantPlan { prefilters, steps }
}

/// The baseline (semantics-defining) domain source for `v` under `cond`.
fn baseline_source(cond: &FFormula, v: Var) -> DomainSource {
    match v.sort {
        Sort::Obj(crate::sort::ObjSort::Tup(n)) => match find_membership_rel(cond, v) {
            Some(rel) => DomainSource::Scan(rel),
            None => DomainSource::ActiveTuples(n),
        },
        Sort::Obj(crate::sort::ObjSort::Atom) => DomainSource::Atoms,
        other => DomainSource::Unenumerable(other),
    }
}

/// The conjuncts allowed to narrow enumeration under `mode`, in
/// syntactic (left-to-right) order.
fn narrowing_conjuncts(cond: &FFormula, mode: GuardMode) -> Vec<&FFormula> {
    let mut out = Vec::new();
    match mode {
        GuardMode::Positive => and_leaves(cond, &mut out),
        GuardMode::Guarded => guard_leaves(cond, &mut out),
    }
    out
}

/// Positive top-level conjuncts: the leaves of the `And` spine.
fn and_leaves<'p>(p: &'p FFormula, out: &mut Vec<&'p FFormula>) {
    match p {
        FFormula::And(a, b) => {
            and_leaves(a, out);
            and_leaves(b, out);
        }
        other => out.push(other),
    }
}

/// Antecedent conjuncts of an implication chain: for `a → b`, the
/// positive conjuncts of `a`, then (recursively) of `b`'s antecedents.
/// A binding falsifying any of them satisfies the whole chain.
fn guard_leaves<'p>(p: &'p FFormula, out: &mut Vec<&'p FFormula>) {
    if let FFormula::Implies(a, b) = p {
        and_leaves(a, out);
        guard_leaves(b, out);
    }
}

/// Search the narrowing conjuncts for an equality keying `v`'s scan of
/// `rel` by one column: `l(v) = k`, `select(v, i) = k`, or the mirrored
/// forms, where `k` mentions no unbound plan variable. Returns the
/// 1-based column, the key, and the conjunct used.
fn find_probe<'p>(
    sig: &Signature,
    narrowing: &[&'p FFormula],
    rel: Symbol,
    v: Var,
    unbound: &HashSet<Var>,
) -> Option<(usize, FTerm, &'p FFormula)> {
    let rel_arity = sig.rel_arity(rel).ok()?;
    for &c in narrowing {
        let FFormula::Cmp(CmpOp::Eq, lhs, rhs) = c else {
            continue;
        };
        for (side, key) in [(lhs, rhs), (rhs, lhs)] {
            let Some(col) = column_of(sig, side, v, rel_arity) else {
                continue;
            };
            let mut fv = HashSet::new();
            crate::subst::free_vars_fterm(key, &mut fv);
            if fv.is_disjoint(unbound) {
                return Some((col, key.clone(), c));
            }
        }
    }
    None
}

/// If `t` selects one column of `v` — `l(v)` with `l` owned by tuples of
/// `rel`'s arity, or `select(v, i)` in range — return that column.
fn column_of(sig: &Signature, t: &FTerm, v: Var, rel_arity: usize) -> Option<usize> {
    match t {
        FTerm::Attr(a, inner) if **inner == FTerm::Var(v) => {
            let (owner, ix) = sig.attr(*a).ok()?;
            (owner == rel_arity).then_some(ix)
        }
        FTerm::Select(inner, i) if **inner == FTerm::Var(v) => {
            (*i >= 1 && *i <= rel_arity).then_some(*i)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluent::{FFormula, FTerm};
    use crate::sort::Var;

    fn sig() -> Signature {
        Signature::new()
            .relation("EMP", &["e-name", "salary"])
            .relation("ALLOC", &["a-emp", "a-proj"])
    }

    fn attr(name: &str, v: Var) -> FTerm {
        FTerm::Attr(Symbol::new(name), Box::new(FTerm::Var(v)))
    }

    #[test]
    fn membership_scan_is_baseline() {
        let v = Var::tup_f("e", 2);
        let cond = FFormula::Member(FTerm::Var(v), FTerm::rel("EMP"));
        let plan = plan_quantifiers(&sig(), &[v], &cond, GuardMode::Positive);
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].source, DomainSource::Scan(Symbol::new("EMP")));
    }

    #[test]
    fn equality_on_bound_key_upgrades_to_probe() {
        // exists a . a ∈ ALLOC & a-emp(a) = e-name(e)   (e bound outside)
        let a = Var::tup_f("a", 2);
        let e = Var::tup_f("e", 2);
        let cond = FFormula::And(
            Box::new(FFormula::Member(FTerm::Var(a), FTerm::rel("ALLOC"))),
            Box::new(FFormula::eq(attr("a-emp", a), attr("e-name", e))),
        );
        let plan = plan_quantifiers(&sig(), &[a], &cond, GuardMode::Positive);
        match &plan.steps[0].source {
            DomainSource::IndexProbe { rel, col, key } => {
                assert_eq!(*rel, Symbol::new("ALLOC"));
                assert_eq!(*col, 1);
                assert_eq!(*key, attr("e-name", e));
            }
            other => panic!("expected probe, got {other:?}"),
        }
        // the probe conjunct is not duplicated as a filter
        assert!(plan.steps[0].filters.is_empty());
    }

    #[test]
    fn self_keyed_equality_does_not_probe() {
        // a-emp(a) = a-proj(a): both sides mention the step's own var.
        let a = Var::tup_f("a", 2);
        let cond = FFormula::And(
            Box::new(FFormula::Member(FTerm::Var(a), FTerm::rel("ALLOC"))),
            Box::new(FFormula::eq(attr("a-emp", a), attr("a-proj", a))),
        );
        let plan = plan_quantifiers(&sig(), &[a], &cond, GuardMode::Positive);
        assert_eq!(
            plan.steps[0].source,
            DomainSource::Scan(Symbol::new("ALLOC"))
        );
        // …but it is usable as a residual filter on the step
        assert_eq!(plan.steps[0].filters.len(), 1);
    }

    #[test]
    fn later_var_keys_earlier_probe_in_multivar_plan() {
        // { … | e ∈ EMP & a ∈ ALLOC & a-emp(a) = e-name(e) }
        let e = Var::tup_f("e", 2);
        let a = Var::tup_f("a", 2);
        let cond = FFormula::And(
            Box::new(FFormula::Member(FTerm::Var(e), FTerm::rel("EMP"))),
            Box::new(FFormula::And(
                Box::new(FFormula::Member(FTerm::Var(a), FTerm::rel("ALLOC"))),
                Box::new(FFormula::eq(attr("a-emp", a), attr("e-name", e))),
            )),
        );
        let plan = plan_quantifiers(&sig(), &[e, a], &cond, GuardMode::Positive);
        assert_eq!(plan.steps[0].source, DomainSource::Scan(Symbol::new("EMP")));
        assert!(matches!(
            plan.steps[1].source,
            DomainSource::IndexProbe { col: 1, .. }
        ));
        // reversed binding order cannot probe (key not yet bound)
        let plan = plan_quantifiers(&sig(), &[a, e], &cond, GuardMode::Positive);
        assert_eq!(
            plan.steps[0].source,
            DomainSource::Scan(Symbol::new("ALLOC"))
        );
    }

    #[test]
    fn forall_narrows_only_through_antecedents() {
        let e = Var::tup_f("e", 2);
        let x = Var::tup_f("x", 2);
        // forall e . (e ∈ EMP & e-name(e) = e-name(x)) → False
        let guarded = FFormula::Implies(
            Box::new(FFormula::And(
                Box::new(FFormula::Member(FTerm::Var(e), FTerm::rel("EMP"))),
                Box::new(FFormula::eq(attr("e-name", e), attr("e-name", x))),
            )),
            Box::new(FFormula::False),
        );
        let plan = plan_quantifiers(&sig(), &[e], &guarded, GuardMode::Guarded);
        assert!(matches!(
            plan.steps[0].source,
            DomainSource::IndexProbe { col: 1, .. }
        ));
        // the same conjuncts in positive position must NOT narrow a ∀:
        // a false conjunct would make the body false, i.e. a
        // counterexample the plan must still enumerate.
        let positive = FFormula::And(
            Box::new(FFormula::Member(FTerm::Var(e), FTerm::rel("EMP"))),
            Box::new(FFormula::eq(attr("e-name", e), attr("e-name", x))),
        );
        let plan = plan_quantifiers(&sig(), &[e], &positive, GuardMode::Guarded);
        // baseline membership still applies (it defines the domain)…
        assert_eq!(plan.steps[0].source, DomainSource::Scan(Symbol::new("EMP")));
        // …but no filters are attached.
        assert!(plan.steps[0].filters.is_empty());
        assert!(plan.prefilters.is_empty());
    }

    #[test]
    fn unrestricted_sorts_fall_back() {
        let t = Var::tup_f("t", 3);
        let a = Var::atom_f("n");
        let s = Var::transaction("tx");
        let plan = plan_quantifiers(&sig(), &[t, a, s], &FFormula::True, GuardMode::Positive);
        assert_eq!(plan.steps[0].source, DomainSource::ActiveTuples(3));
        assert_eq!(plan.steps[1].source, DomainSource::Atoms);
        assert_eq!(
            plan.steps[2].source,
            DomainSource::Unenumerable(crate::sort::Sort::State)
        );
    }

    #[test]
    fn plan_var_free_conjuncts_become_prefilters() {
        let e = Var::tup_f("e", 2);
        let x = Var::tup_f("x", 2);
        let cond = FFormula::And(
            Box::new(FFormula::Member(FTerm::Var(e), FTerm::rel("EMP"))),
            Box::new(FFormula::eq(attr("salary", x), FTerm::Nat(3))),
        );
        let plan = plan_quantifiers(&sig(), &[e], &cond, GuardMode::Positive);
        assert_eq!(plan.prefilters.len(), 1);
        assert!(plan.steps[0].filters.is_empty());
    }
}
