//! Example 6: the declarative specification of `cancel-project`.
//!
//! The paper specifies the transaction declaratively and relies on a
//! theorem prover to synthesize the procedure by constructive proof:
//!
//! ```text
//! (∀s)(∃t)( s;t:p ∉ s;t:PROJ ∧
//!   (∀e)(∀a)( s:e ∈ s:EMP ∧ s:a ∈ s:ALLOC ∧
//!             a-proj(s:a) = p-name(s:p) ∧ a-emp(s:a) = e-name(s:e)
//!               → salary(s:e) − v = salary(s;t:e) ) )
//! ```
//!
//! (The scan prints the goal membership without the negation and the
//! relation as `ASSIGN`; the surrounding prose — "cancels a project p" —
//! fixes both: the project must be *gone* and the relation is `ALLOC`.)
//!
//! Deletion of the project's allocations and of project-less employees is
//! deliberately *absent* from the spec: the paper notes those updates
//! "are created during the proof to satisfy the integrity constraints in
//! Example 1". Our synthesizer reproduces exactly that repair behaviour.
//!
//! One rendering note: the paper's equation `salary'(s, s:e) − v =
//! salary'(s;t, s;t:e)` presupposes that `e` still denotes at `s;t`. In
//! classical logic with total functions this is glossed; in this
//! implementation's partial semantics a deleted employee makes the
//! equation false, which would contradict the very repair the proof is
//! supposed to introduce (firing project-less employees). We therefore
//! make the presupposition explicit: the consequent reads "`e` is gone
//! from EMP, or the equation holds".

use crate::schema::parse_ctx;
use txlog_logic::{parse_sformula_with_params, SFormula, Var};

/// The Example 6 specification, with free parameters `p` (the project)
/// and `v` (the salary reduction). Returns `(spec, p, v)`.
pub fn cancel_project_spec() -> (SFormula, Var, Var) {
    let p = Var::tup_f("p", 2);
    let v = Var::atom_f("v");
    let spec = parse_sformula_with_params(
        "forall s: state . exists t: tx .
           !(((s;t):p) in ((s;t):PROJ)) &
           (forall e: 5tup, a: 3tup .
              (s:e in s:EMP & s:a in s:ALLOC &
               a-proj(s:a) = p-name(s:p) & a-emp(s:a) = e-name(s:e))
                -> (!(((s;t):e) in ((s;t):EMP))
                    | salary(s:e) - v = salary((s;t):e)))",
        &parse_ctx(),
        &[p, v],
    )
    .expect("builtin spec parses");
    (spec, p, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use txlog_logic::subst::sformula_free_vars;

    #[test]
    fn spec_parses_with_expected_free_parameters() {
        let (spec, p, v) = cancel_project_spec();
        let fv = sformula_free_vars(&spec);
        assert!(fv.contains(&p));
        assert!(fv.contains(&v));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn spec_display_mentions_key_parts() {
        let (spec, _, _) = cancel_project_spec();
        let text = spec.to_string();
        assert!(text.contains("PROJ"));
        assert!(text.contains("salary"));
        assert!(text.contains("exists t: tx"));
    }
}
