//! The paper's employee database schema (Section 4):
//!
//! ```text
//! EMP(e-name, e-dept, salary, age, m-status)
//! DEPT(d-name, chair, location)
//! PROJ(p-name, t-alloc)
//! ALLOC(a-emp, a-proj, perc)
//! SKILL(s-emp, s-no)
//! ```
//!
//! plus the unary scratch relation `E` that Example 5's `cancel-project`
//! assigns, and (when the FIRE encoding is installed) the audit relation
//! `FIRE`.

use txlog_logic::ParseCtx;
use txlog_relational::Schema;

/// All relation names, including the scratch relation `E`.
pub const RELATIONS: &[&str] = &["EMP", "DEPT", "PROJ", "ALLOC", "SKILL", "E"];

/// Build the employee schema.
pub fn employee_schema() -> Schema {
    Schema::new()
        .relation("EMP", &["e-name", "e-dept", "salary", "age", "m-status"])
        .expect("static schema is well-formed")
        .relation("DEPT", &["d-name", "chair", "location"])
        .expect("static schema is well-formed")
        .relation("PROJ", &["p-name", "t-alloc"])
        .expect("static schema is well-formed")
        .relation("ALLOC", &["a-emp", "a-proj", "perc"])
        .expect("static schema is well-formed")
        .relation("SKILL", &["s-emp", "s-no"])
        .expect("static schema is well-formed")
        .relation("E", &["e-key"])
        .expect("static schema is well-formed")
}

/// A parse context knowing every employee-database relation (including
/// `FIRE`, which only exists after the manual encoding is installed,
/// and `FIRED`, the event-maintained system relation; mentioning either
/// in constraints is harmless otherwise).
pub fn parse_ctx() -> ParseCtx {
    ParseCtx::with_relations(&[
        "EMP", "DEPT", "PROJ", "ALLOC", "SKILL", "E", "FIRE", "FIRED",
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let s = employee_schema();
        assert_eq!(s.expect("EMP").unwrap().arity(), 5);
        assert_eq!(s.expect("DEPT").unwrap().arity(), 3);
        assert_eq!(s.expect("PROJ").unwrap().arity(), 2);
        assert_eq!(s.expect("ALLOC").unwrap().arity(), 3);
        assert_eq!(s.expect("SKILL").unwrap().arity(), 2);
        assert_eq!(s.expect("E").unwrap().arity(), 1);
        assert_eq!(s.attr_index("EMP", "salary").unwrap(), 3);
        assert_eq!(s.attr_index("EMP", "m-status").unwrap(), 5);
        assert_eq!(s.attr_index("ALLOC", "perc").unwrap(), 3);
    }

    #[test]
    fn initial_state_is_empty() {
        let s = employee_schema();
        let db = s.initial_state();
        assert_eq!(db.relation_count(), 6);
        assert_eq!(db.total_tuples(), 0);
    }
}
