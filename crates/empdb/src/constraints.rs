//! Every integrity constraint from the paper's Section 4, Examples 1–4.
//!
//! Each constructor returns the closed s-formula in our concrete syntax,
//! with a doc comment citing the example it comes from and the paper's
//! checkability claim. Where the SIGMOD scan is ambiguous (OCR noise) the
//! formalization choice is documented inline.

use crate::schema::{employee_schema, parse_ctx};
use txlog_base::TxResult;
use txlog_constraints::{Hints, IncrementalChecker, ReactiveEncoding, SessionConstraint, Window};
use txlog_events::PatternDef;
use txlog_logic::{parse_sformula, SFormula};
use txlog_relational::DbState;

fn parse(src: &str) -> SFormula {
    parse_sformula(src, &parse_ctx())
        .unwrap_or_else(|e| panic!("builtin constraint failed to parse: {e}\n{src}"))
}

// ---------------------------------------------------------------------
// Example 1 — static constraints (window 1)
// ---------------------------------------------------------------------

/// Example 1(1): every employee works for at least one project.
pub fn ic1_employee_has_project() -> SFormula {
    parse(
        "forall s: state, e': 5tup .
           e' in s:EMP ->
             exists a': 3tup . a' in s:ALLOC & a-emp(a') = e-name(e')",
    )
}

/// Example 1(2): every allocation references a valid project.
pub fn ic1_alloc_references_project() -> SFormula {
    parse(
        "forall s: state, a': 3tup .
           a' in s:ALLOC ->
             exists p': 2tup . p' in s:PROJ & a-proj(a') = p-name(p')",
    )
}

/// Example 1(3): no employee is allocated over 100% of their time.
pub fn ic1_alloc_within_100() -> SFormula {
    parse(
        "forall s: state, e': 5tup .
           e' in s:EMP ->
             sum({ perc(a') | a': 3tup .
                   a' in s:ALLOC & a-emp(a') = e-name(e') }) <= 100",
    )
}

/// All three Example 1 constraints.
pub fn example1_all() -> Vec<(&'static str, SFormula)> {
    vec![
        ("employee-has-project", ic1_employee_has_project()),
        ("alloc-references-project", ic1_alloc_references_project()),
        ("alloc-within-100", ic1_alloc_within_100()),
    ]
}

// ---------------------------------------------------------------------
// Example 2 — marital status (transaction constraint, window 2 given
// employees are never rehired)
// ---------------------------------------------------------------------

/// Example 2, the **flawed** state-pair formulation: "if an employee in
/// s₁ is not single and is younger than himself in s₂, then he cannot be
/// single in s₂". The paper rejects it because it constrains pairs of
/// states that need not be reachable from one another.
pub fn ic2_marital_state_pair() -> SFormula {
    parse(
        "forall s1: state, s2: state, e: 5tup .
           (s1:e in s1:EMP & s2:e in s2:EMP &
            age(s1:e) < age(s2:e) & m-status(s1:e) != 'S')
             -> m-status(s2:e) != 'S'",
    )
}

/// Example 2, the **correct** transaction-constraint formulation: the
/// same property restricted to pairs connected by a transaction.
pub fn ic2_marital_transaction() -> SFormula {
    parse(
        "forall s: state, t: tx, e: 5tup .
           (s:e in s:EMP & (s;t):e in (s;t):EMP &
            age(s:e) < age((s;t):e) & m-status(s:e) != 'S')
             -> m-status((s;t):e) != 'S'",
    )
}

/// The paper's checkability argument for Example 2: "not single" is
/// preserved forward along transactions (once married, never single
/// again given no rehire), a transitive step relation → two states.
pub fn ic2_hints() -> Hints {
    Hints {
        step_relation_transitive: true,
        ..Hints::default()
    }
}

// ---------------------------------------------------------------------
// Example 3 — transaction constraints with varying windows
// ---------------------------------------------------------------------

/// Example 3: an employee retains a skill as soon as he obtains it.
/// Checkable with two states because `⊆` is transitive.
pub fn ic3_skill_retention() -> SFormula {
    parse(
        "forall s: state, t: tx, e: 5tup, k: 2tup .
           (s:e in s:EMP & (s;t):e in (s;t):EMP &
            s:k in s:SKILL & s-emp(s:k) = e-name(s:e))
             -> (s;t):k in (s;t):SKILL",
    )
}

/// Hints for [`ic3_skill_retention`].
pub fn ic3_skill_hints() -> Hints {
    Hints {
        step_relation_transitive: true,
        ..Hints::default()
    }
}

/// Example 3: an employee's salary cannot decrease unless he switches
/// departments. Constrains intermediate transitions too (a decrease must
/// pass through a department switch), so the paper says three states.
pub fn ic3_salary_needs_dept_switch() -> SFormula {
    parse(
        "forall s: state, t: tx, e: 5tup .
           (s:e in s:EMP & (s;t):e in (s;t):EMP &
            salary((s;t):e) < salary(s:e))
             -> e-dept(s:e) != e-dept((s;t):e)",
    )
}

/// Hints for [`ic3_salary_needs_dept_switch`].
pub fn ic3_salary_hints() -> Hints {
    Hints {
        step_relation_transitive: true,
        constrains_intermediates: true,
        ..Hints::default()
    }
}

/// Example 3 variant: the salary of an employee is never the same as
/// before (`<` replaced by `≠`). Checkable only with a complete history:
/// a value may cycle back through intermediate values, invisible to any
/// bounded window.
pub fn ic3_salary_never_same() -> SFormula {
    parse(
        "forall s: state, t: tx, e: 5tup .
           (s:e in s:EMP & (s;t):e in (s;t):EMP)
             -> salary(s:e) != salary((s;t):e)",
    )
}

/// Hints for [`ic3_salary_never_same`].
pub fn ic3_never_same_hints() -> Hints {
    Hints {
        step_relation_not_composable: true,
        ..Hints::default()
    }
}

/// Example 3, Structural Model *reference connection*: a department is
/// not deleted while employees refer to it. Formalized as: if a
/// department has referring employees both before and after a
/// transaction, the department itself survives that transaction. (The
/// before-and-after guard keeps the constraint closed under composition,
/// hence checkable with two states, matching the paper's claim; the
/// paper's own display is a pre-condition on the specific transaction
/// `delete₃(d, DEPT)` — see [`ic3_dept_delete_precondition`].)
pub fn ic3_dept_reference_connection() -> SFormula {
    parse(
        "forall s: state, t: tx, d: 3tup .
           (s:d in s:DEPT &
            (exists e': 5tup . e' in s:EMP & e-dept(e') = d-name(s:d)) &
            (exists f': 5tup . f' in (s;t):EMP & e-dept(f') = d-name(s:d)))
             -> (s;t):d in (s;t):DEPT",
    )
}

/// The paper's literal display for the reference connection: a
/// pre-condition on the *specific transaction* `delete₃(d, DEPT)` — the
/// kind of formula temporal logic cannot express at all. Reading: if `d`
/// has no referring employees, deleting it genuinely removes it.
pub fn ic3_dept_delete_precondition() -> SFormula {
    parse(
        "forall s: state, d: 3tup .
           (s::(d in DEPT) &
            !(exists e': 5tup . e' in s:EMP & e-dept(e') = d-name(s:d)))
             -> !((s;delete(d, DEPT))::(d in DEPT))",
    )
}

/// Example 3, Structural Model *association connection*: after any
/// transaction, no allocation refers to a project that is gone — the
/// paper notes this is subsumed by Example 1's referential constraint,
/// i.e. dynamically the association connection is equivalent to a static
/// referential constraint. Formalized directly from the paper's display:
/// if a project is gone after `t`, no allocation references its name.
pub fn ic3_assoc_connection() -> SFormula {
    parse(
        "forall s: state, t: tx, p: 2tup .
           (s:p in s:PROJ & !((s;t):p in (s;t):PROJ))
             -> !(exists a': 3tup .
                    a' in (s;t):ALLOC & a-proj(a') = p-name(s:p))",
    )
}

// ---------------------------------------------------------------------
// Example 4 — constraints beyond the transaction subclass
// ---------------------------------------------------------------------

/// Example 4: once an employee is fired, he is never hired again. Not
/// checkable without complete history; the FIRE encoding (see
/// `txlog_constraints::NeverReinsertEncoding`) makes it static.
pub fn ic4_never_rehire() -> SFormula {
    parse(
        "forall s: state, t1: tx, e: 5tup .
           (s:e in s:EMP & !((s;t1):e in (s;t1):EMP))
             -> !(exists t2: tx . ((s;t1);t2):e in ((s;t1);t2):EMP)",
    )
}

/// The static constraint the FIRE encoding substitutes for
/// [`ic4_never_rehire`] (the paper's `(∀s)(∀e'). e' ∈ s:FIRE →
/// e' ∉ s:EMP`, keyed on `e-name`).
pub fn ic4_fire_static() -> SFormula {
    parse(
        "forall s: state, x': 1tup .
           x' in s:FIRE ->
             !(exists e': 5tup . e' in s:EMP & e-name(e') = select(x', 1))",
    )
}

// ---------------------------------------------------------------------
// Example 4, reactive: the FIRE encoding without transaction rewriting
// ---------------------------------------------------------------------

/// The reactive form of Example 4's encoding: `EMP` deletions compiled
/// to an event pattern whose matches the engine materializes (keyed on
/// `e-name`) into the system relation `FIRED`. Unlike the manual
/// [`NeverReinsertEncoding`](txlog_constraints::NeverReinsertEncoding)
/// path, [`fire`](crate::transactions::fire) needs no audit bookkeeping
/// and no rewriting — the commit stream maintains the history relation.
pub fn fired_encoding() -> ReactiveEncoding {
    ReactiveEncoding::define(&employee_schema(), "EMP", "e-name", "FIRED")
        .expect("EMP/e-name are declared by the static schema")
}

/// The `fired` pattern registration for
/// [`DatabaseBuilder::event_pattern`](txlog_engine::DatabaseBuilder::event_pattern):
/// `delete(EMP, FIRED-key, _, _, _, _)` materialized into `FIRED`.
pub fn fired_pattern() -> PatternDef {
    fired_encoding().pattern_def()
}

/// The never-rehire constraint over the auto-maintained relation
/// (window 1, static), packaged for commit-time validation. Register it
/// together with [`fired_pattern`]; see
/// [`ic4_never_rehire`] for the dynamic original.
pub fn ic4_fired_session() -> TxResult<SessionConstraint> {
    fired_encoding().session_constraint("never-rehire")
}

/// Example 4: every transaction is invertible unless it modifies the age
/// of an employee. Not checkable: each check would require *proving the
/// existence* of an inverse transaction.
pub fn ic4_invertible_unless_age() -> SFormula {
    parse(
        "forall s: state, t1: tx .
           (forall e: 5tup .
              (s:e in s:EMP & (s;t1):e in (s;t1):EMP &
               age(s:e) = age((s;t1):e)))
             -> exists t2: tx . s = (s;t1);t2",
    )
}

/// Example 4: no project lasts forever. Not checkable for the same
/// reason (requires a future transaction to exist).
pub fn ic4_no_project_forever() -> SFormula {
    parse(
        "forall s: state, p: 2tup .
           s:p in s:PROJ ->
             exists t: tx . !((s;t):p in (s;t):PROJ)",
    )
}

/// Hints marking Example 4's future-referencing constraints.
pub fn ic4_future_hints() -> Hints {
    Hints {
        refers_to_future: true,
        ..Hints::default()
    }
}

// ---------------------------------------------------------------------
// Incremental enforcement
// ---------------------------------------------------------------------

/// [`IncrementalChecker`]s enforcing every Example 1 constraint from
/// `initial` on, each with the single-state window a static constraint
/// needs. Verdicts are cached per window key, so transactions whose
/// delta is disjoint from a constraint's read-set (see
/// [`txlog_constraints::read_set`]) do not pay for rechecking it.
pub fn example1_incremental(initial: DbState) -> TxResult<Vec<(&'static str, IncrementalChecker)>> {
    example1_all()
        .into_iter()
        .map(|(name, ic)| {
            IncrementalChecker::new(
                crate::schema::employee_schema(),
                initial.clone(),
                ic,
                Window::States(1),
            )
            .map(|chk| (name, chk))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Session enforcement
// ---------------------------------------------------------------------

/// The paper's constraints packaged for commit-time validation by the
/// concurrent session layer ([`txlog_engine::Database`]): every
/// Example 1 static constraint (window 1) plus Example 3's skill
/// retention (window 2, sound by transitivity of `⊆`). Register each
/// with [`Database::add_constraint`](txlog_engine::Database::add_constraint).
pub fn session_constraints() -> TxResult<Vec<SessionConstraint>> {
    let mut out = Vec::new();
    for (name, ic) in example1_all() {
        out.push(SessionConstraint::new(name, ic, Hints::default())?);
    }
    out.push(SessionConstraint::new(
        "skill-retention",
        ic3_skill_retention(),
        ic3_skill_hints(),
    )?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use txlog_constraints::{checkability, classify, ConstraintClass, Window};

    #[test]
    fn all_constraints_parse() {
        // constructors panic on parse failure; touching each is the test
        let _ = example1_all();
        let _ = ic2_marital_state_pair();
        let _ = ic2_marital_transaction();
        let _ = ic3_skill_retention();
        let _ = ic3_salary_needs_dept_switch();
        let _ = ic3_salary_never_same();
        let _ = ic3_dept_reference_connection();
        let _ = ic3_dept_delete_precondition();
        let _ = ic3_assoc_connection();
        let _ = ic4_never_rehire();
        let _ = ic4_fire_static();
        let _ = ic4_invertible_unless_age();
        let _ = ic4_no_project_forever();
    }

    #[test]
    fn classification_matches_paper() {
        for (_, f) in example1_all() {
            assert_eq!(classify(&f), ConstraintClass::Static);
        }
        assert_eq!(
            classify(&ic2_marital_state_pair()),
            ConstraintClass::Dynamic
        );
        assert_eq!(
            classify(&ic2_marital_transaction()),
            ConstraintClass::Transaction
        );
        assert_eq!(
            classify(&ic3_skill_retention()),
            ConstraintClass::Transaction
        );
        assert_eq!(
            classify(&ic3_salary_needs_dept_switch()),
            ConstraintClass::Transaction
        );
        assert_eq!(classify(&ic4_never_rehire()), ConstraintClass::Dynamic);
        assert_eq!(classify(&ic4_fire_static()), ConstraintClass::Static);
    }

    #[test]
    fn checkability_windows_match_paper() {
        // Example 1: window 1
        for (_, f) in example1_all() {
            assert_eq!(checkability(&f, Hints::default()), Window::States(1));
        }
        // Example 2: window 2
        assert_eq!(
            checkability(&ic2_marital_transaction(), ic2_hints()),
            Window::States(2)
        );
        // Example 3: skills window 2, salary window 3, ≠ complete
        assert_eq!(
            checkability(&ic3_skill_retention(), ic3_skill_hints()),
            Window::States(2)
        );
        assert_eq!(
            checkability(&ic3_salary_needs_dept_switch(), ic3_salary_hints()),
            Window::States(3)
        );
        assert_eq!(
            checkability(&ic3_salary_never_same(), ic3_never_same_hints()),
            Window::Complete
        );
        // Example 4: not checkable (before encoding); static after
        assert!(matches!(
            checkability(&ic4_never_rehire(), Hints::default()),
            Window::NotCheckable(_)
        ));
        assert!(matches!(
            checkability(&ic4_invertible_unless_age(), ic4_future_hints()),
            Window::NotCheckable(_)
        ));
        assert_eq!(
            checkability(&ic4_fire_static(), Hints::default()),
            Window::States(1)
        );
    }

    #[test]
    fn reactive_fired_relation_enforces_never_rehire() {
        use crate::transactions::{fire, hire, rehire};
        use txlog_engine::{CommitError, Database, Env};

        let mut db = Database::builder(crate::schema::employee_schema())
            .event_pattern(fired_pattern())
            .unwrap()
            .build()
            .unwrap();
        db.add_constraint(Box::new(ic4_fired_session().unwrap()))
            .unwrap();
        let mut s = db.session();
        s.commit(
            "hire",
            &hire("ann", "cs", 500, 30, "S", "alpha", 50),
            &Env::new(),
        )
        .unwrap();
        // the paper's fire(): plain deletes, no audit bookkeeping
        s.commit("fire", &fire("ann"), &Env::new()).unwrap();
        let fired = db.schema().rel_id("FIRED").unwrap();
        assert!(db
            .snapshot()
            .relation(fired)
            .unwrap()
            .contains_fields(&[txlog_base::Atom::str("ann")]));
        // rehiring ann violates the substituted static constraint
        s.refresh();
        let err = s
            .commit(
                "rehire",
                &rehire("ann", "cs", 500, 30, "alpha", 50),
                &Env::new(),
            )
            .unwrap_err();
        assert!(
            matches!(&err, CommitError::ConstraintViolation { constraint }
                     if constraint == "never-rehire"),
            "{err}"
        );
        // a different employee hires fine
        s.refresh();
        s.commit(
            "hire2",
            &hire("bob", "cs", 400, 25, "S", "alpha", 25),
            &Env::new(),
        )
        .unwrap();
    }

    #[test]
    fn example1_incremental_enforces_and_reuses() {
        let (_, db) = crate::data::populate(crate::data::Sizes::small(), 3).unwrap();
        let mut checkers = example1_incremental(db).unwrap();
        let env = txlog_engine::Env::new();
        for i in 0..3u64 {
            let tx = crate::transactions::obtain_skill(&crate::data::emp_name(0), 50 + i);
            for (name, chk) in checkers.iter_mut() {
                assert!(chk.step("skill", &tx, &env).unwrap(), "{name} violated");
            }
        }
        // SKILL is outside every Example 1 read-set, so once each
        // checker has seen one skill-only window its verdicts come from
        // the cache.
        for (name, chk) in &checkers {
            assert!(
                !chk.read_set().is_all(),
                "{name}: read-set should be precise, got {}",
                chk.read_set()
            );
            let reused = chk.metrics().get(txlog_constraints::counters::REUSED);
            assert!(reused >= 1, "{name}: reused = {reused}");
        }
    }
}
