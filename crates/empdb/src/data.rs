//! Synthetic populations of the employee database.
//!
//! The paper has no datasets; experiments need databases, so this module
//! generates them. [`populate`] builds a state satisfying all of Example
//! 1's static constraints (every employee has a project, every allocation
//! references a live project, allocations sum to ≤ 100%); the
//! `corrupt_*` helpers produce targeted violations for negative tests.

use crate::schema::employee_schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txlog_base::{Atom, TxResult};
use txlog_relational::{DbState, Schema};

/// Sizing knobs for a generated population.
#[derive(Clone, Copy, Debug)]
pub struct Sizes {
    /// Number of departments.
    pub depts: usize,
    /// Number of projects.
    pub projects: usize,
    /// Number of employees.
    pub employees: usize,
    /// Maximum allocations per employee (at least 1 is always created).
    pub max_allocs: usize,
    /// Maximum skills per employee.
    pub max_skills: usize,
}

impl Default for Sizes {
    fn default() -> Sizes {
        Sizes {
            depts: 3,
            projects: 4,
            employees: 10,
            max_allocs: 3,
            max_skills: 2,
        }
    }
}

impl Sizes {
    /// A small population (fast model checking).
    pub fn small() -> Sizes {
        Sizes {
            depts: 2,
            projects: 2,
            employees: 4,
            max_allocs: 2,
            max_skills: 1,
        }
    }

    /// Scale employees (and projects proportionally) for benchmarks.
    pub fn scaled(employees: usize) -> Sizes {
        Sizes {
            depts: (employees / 10).max(2),
            projects: (employees / 5).max(2),
            employees,
            max_allocs: 3,
            max_skills: 2,
        }
    }
}

/// Deterministic employee name for index `i`.
pub fn emp_name(i: usize) -> String {
    format!("emp-{i}")
}

/// Deterministic project name for index `i`.
pub fn proj_name(i: usize) -> String {
    format!("proj-{i}")
}

/// Deterministic department name for index `i`.
pub fn dept_name(i: usize) -> String {
    format!("dept-{i}")
}

/// Generate a valid population with the given sizes and seed. The result
/// satisfies all three Example 1 constraints by construction.
pub fn populate(sizes: Sizes, seed: u64) -> TxResult<(Schema, DbState)> {
    let schema = employee_schema();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = schema.initial_state();

    let dept = schema.rel_id("DEPT")?;
    let proj = schema.rel_id("PROJ")?;
    let emp = schema.rel_id("EMP")?;
    let alloc = schema.rel_id("ALLOC")?;
    let skill = schema.rel_id("SKILL")?;

    for i in 0..sizes.depts {
        let fields = [
            Atom::str(&dept_name(i)),
            Atom::str(&format!("chair-{i}")),
            Atom::str(&format!("loc-{}", i % 3)),
        ];
        db = db.insert_fields(dept, &fields)?.0;
    }
    for i in 0..sizes.projects {
        let fields = [Atom::str(&proj_name(i)), Atom::nat(100)];
        db = db.insert_fields(proj, &fields)?.0;
    }
    for i in 0..sizes.employees {
        let name = emp_name(i);
        let fields = [
            Atom::str(&name),
            Atom::str(&dept_name(rng.gen_range(0..sizes.depts))),
            Atom::nat(rng.gen_range(300..900)),
            Atom::nat(rng.gen_range(22..60)),
            Atom::str(if rng.gen_bool(0.5) { "S" } else { "M" }),
        ];
        db = db.insert_fields(emp, &fields)?.0;

        // 1..=max_allocs allocations over distinct projects, total ≤ 100
        let n_allocs = rng.gen_range(1..=sizes.max_allocs.max(1));
        let mut remaining: u64 = 100;
        let mut projects: Vec<usize> = (0..sizes.projects).collect();
        for k in 0..n_allocs.min(sizes.projects) {
            let pick = rng.gen_range(0..projects.len());
            let p = projects.swap_remove(pick);
            let share = if k + 1 == n_allocs {
                remaining
            } else {
                rng.gen_range(1..=remaining.max(1))
            };
            remaining -= share.min(remaining);
            let fields = [Atom::str(&name), Atom::str(&proj_name(p)), Atom::nat(share)];
            db = db.insert_fields(alloc, &fields)?.0;
            if remaining == 0 {
                break;
            }
        }

        for _ in 0..rng.gen_range(0..=sizes.max_skills) {
            let fields = [Atom::str(&name), Atom::nat(rng.gen_range(1..50))];
            db = db.insert_fields(skill, &fields)?.0;
        }
    }
    Ok((schema, db))
}

/// Corrupt a state by over-allocating one employee past 100% — violates
/// Example 1's third constraint.
pub fn corrupt_overallocate(schema: &Schema, db: &DbState) -> TxResult<DbState> {
    let alloc = schema.rel_id("ALLOC")?;
    let name = emp_name(0);
    let fields = [Atom::str(&name), Atom::str(&proj_name(0)), Atom::nat(200)];
    Ok(db.insert_fields(alloc, &fields)?.0)
}

/// Corrupt a state with a dangling allocation (references no project) —
/// violates Example 1's second constraint.
pub fn corrupt_dangling_alloc(schema: &Schema, db: &DbState) -> TxResult<DbState> {
    let alloc = schema.rel_id("ALLOC")?;
    let fields = [
        Atom::str(&emp_name(0)),
        Atom::str("no-such-project"),
        Atom::nat(0),
    ];
    Ok(db.insert_fields(alloc, &fields)?.0)
}

/// Corrupt a state with an idle employee (no allocations) — violates
/// Example 1's first constraint.
pub fn corrupt_idle_employee(schema: &Schema, db: &DbState) -> TxResult<DbState> {
    let emp = schema.rel_id("EMP")?;
    let fields = [
        Atom::str("idler"),
        Atom::str(&dept_name(0)),
        Atom::nat(100),
        Atom::nat(30),
        Atom::str("S"),
    ];
    Ok(db.insert_fields(emp, &fields)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::example1_all;
    use txlog_engine::ModelBuilder;

    fn check_all(schema: Schema, db: DbState) -> Vec<(&'static str, bool)> {
        let mut b = ModelBuilder::new(schema);
        b.add_state(db);
        let model = b.finish();
        example1_all()
            .into_iter()
            .map(|(name, f)| (name, model.check(&f).unwrap()))
            .collect()
    }

    #[test]
    fn generated_population_is_valid() {
        for seed in [1, 7, 42] {
            let (schema, db) = populate(Sizes::default(), seed).unwrap();
            for (name, ok) in check_all(schema, db) {
                assert!(
                    ok,
                    "constraint {name} violated by generated data (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn corruptions_violate_the_right_constraint() {
        let (schema, db) = populate(Sizes::small(), 3).unwrap();

        let bad = corrupt_overallocate(&schema, &db).unwrap();
        let verdicts = check_all(schema.clone(), bad);
        assert!(
            !verdicts
                .iter()
                .find(|(n, _)| *n == "alloc-within-100")
                .unwrap()
                .1
        );

        let bad = corrupt_dangling_alloc(&schema, &db).unwrap();
        let verdicts = check_all(schema.clone(), bad);
        assert!(
            !verdicts
                .iter()
                .find(|(n, _)| *n == "alloc-references-project")
                .unwrap()
                .1
        );

        let bad = corrupt_idle_employee(&schema, &db).unwrap();
        let verdicts = check_all(schema.clone(), bad);
        assert!(
            !verdicts
                .iter()
                .find(|(n, _)| *n == "employee-has-project")
                .unwrap()
                .1
        );
    }

    #[test]
    fn population_sizes_are_respected() {
        let sizes = Sizes {
            depts: 2,
            projects: 3,
            employees: 5,
            max_allocs: 2,
            max_skills: 1,
        };
        let (schema, db) = populate(sizes, 9).unwrap();
        assert_eq!(db.relation(schema.rel_id("EMP").unwrap()).unwrap().len(), 5);
        assert_eq!(
            db.relation(schema.rel_id("PROJ").unwrap()).unwrap().len(),
            3
        );
        assert_eq!(
            db.relation(schema.rel_id("DEPT").unwrap()).unwrap().len(),
            2
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (_, a) = populate(Sizes::small(), 5).unwrap();
        let (_, b) = populate(Sizes::small(), 5).unwrap();
        assert!(a.content_eq(&b));
        let (_, c) = populate(Sizes::small(), 6).unwrap();
        assert!(!a.content_eq(&c));
    }
}
