//! Transactions over the employee database, including Example 5's
//! `cancel-project` verbatim, plus the everyday transactions the
//! experiments use to evolve databases (hire, fire, raises, marriages,
//! skills, projects).
//!
//! Constructors return ground f-terms (parameters already substituted),
//! except [`cancel_project`], which is the paper's parameterized program
//! `cancel-project(p, v)`.

use crate::schema::parse_ctx;
use txlog_logic::{parse_fterm, FTerm, Var};

fn parse(src: &str, params: &[Var]) -> FTerm {
    parse_fterm(src, &parse_ctx(), params)
        .unwrap_or_else(|e| panic!("builtin transaction failed to parse: {e}\n{src}"))
}

/// Example 5's transaction, verbatim:
///
/// ```text
/// transaction cancel-project(p, v)
///   assign(E, {a-emp(a) | a ∈ ALLOC ∧ a-proj(a) = p-name(p)});;
///   foreach a | a ∈ ALLOC ∧ a-proj(a) = p-name(p) do
///     delete₂(a, ALLOC);;
///   delete₂(p, PROJ);;
///   foreach e | e ∈ EMP ∧ e-name(e) ∈ E do
///     if (∃a)(a ∈ ALLOC ∧ a-emp(a) = e-name(e))
///     then modify₃(e, 3, salary(e) − v)
///     else delete₅(e, EMP)
/// ```
///
/// Cancels project `p`, fires employees left without any project, and
/// reduces by `v` the salaries of those who still work on other projects.
/// Returns the program and its parameters `(p, v)`.
pub fn cancel_project() -> (FTerm, Var, Var) {
    let p = Var::tup_f("p", 2);
    let v = Var::atom_f("v");
    let tx = parse(
        "assign(E, { a-emp(a) | a: 3tup . a in ALLOC & a-proj(a) = p-name(p) }) ;;
         foreach a: 3tup | a in ALLOC & a-proj(a) = p-name(p) do
           delete(a, ALLOC)
         end ;;
         delete(p, PROJ) ;;
         foreach e: 5tup | e in EMP & tuple(e-name(e)) in E do
           if exists a: 3tup . a in ALLOC & a-emp(a) = e-name(e)
           then modify(e, 3, salary(e) - v)
           else delete(e, EMP)
         end",
        &[p, v],
    );
    (tx, p, v)
}

/// Hire `name` into `dept` with the given salary/age/status, allocated
/// `perc`% to `proj`.
pub fn hire(
    name: &str,
    dept: &str,
    salary: u64,
    age: u64,
    status: &str,
    proj: &str,
    perc: u64,
) -> FTerm {
    parse(
        &format!(
            "insert(tuple('{name}', '{dept}', {salary}, {age}, '{status}'), EMP) ;;
             insert(tuple('{name}', '{proj}', {perc}), ALLOC)"
        ),
        &[],
    )
}

/// Fire `name`: remove allocations, skills, and the employee tuple (the
/// paper's Example 3 note: skills are deleted along with the employee).
///
/// Deliberately contains *no* audit bookkeeping. Under the manual FIRE
/// encoding this transaction had to be pushed through
/// [`NeverReinsertEncoding::rewrite`](txlog_constraints::NeverReinsertEncoding::rewrite)
/// before execution; with the reactive encoding
/// ([`fired_pattern`](crate::constraints::fired_pattern)) the engine's
/// event dispatch maintains the `FIRED` history relation from the
/// commit stream, so the transaction runs exactly as the paper writes
/// it.
pub fn fire(name: &str) -> FTerm {
    parse(
        &format!(
            "foreach a: 3tup | a in ALLOC & a-emp(a) = '{name}' do delete(a, ALLOC) end ;;
             foreach k: 2tup | k in SKILL & s-emp(k) = '{name}' do delete(k, SKILL) end ;;
             foreach e: 5tup | e in EMP & e-name(e) = '{name}' do delete(e, EMP) end"
        ),
        &[],
    )
}

/// Rehire a previously fired employee (used to *violate* the never-rehire
/// constraint in experiments).
pub fn rehire(name: &str, dept: &str, salary: u64, age: u64, proj: &str, perc: u64) -> FTerm {
    hire(name, dept, salary, age, "S", proj, perc)
}

/// Give `name` a raise of `amount`.
pub fn raise_salary(name: &str, amount: u64) -> FTerm {
    parse(
        &format!(
            "foreach e: 5tup | e in EMP & e-name(e) = '{name}' do
               modify(e, salary, salary(e) + {amount})
             end"
        ),
        &[],
    )
}

/// Cut `name`'s salary by `amount` — violates Example 3's salary
/// constraint unless composed with a department switch.
pub fn cut_salary(name: &str, amount: u64) -> FTerm {
    parse(
        &format!(
            "foreach e: 5tup | e in EMP & e-name(e) = '{name}' do
               modify(e, salary, salary(e) - {amount})
             end"
        ),
        &[],
    )
}

/// Move `name` to `dept`.
pub fn switch_dept(name: &str, dept: &str) -> FTerm {
    parse(
        &format!(
            "foreach e: 5tup | e in EMP & e-name(e) = '{name}' do
               modify(e, e-dept, '{dept}')
             end"
        ),
        &[],
    )
}

/// Cut salary *with* a simultaneous department switch — the legal way to
/// decrease pay under Example 3's constraint.
pub fn demote(name: &str, amount: u64, dept: &str) -> FTerm {
    cut_salary(name, amount).seq(switch_dept(name, dept))
}

/// A birthday: increment `name`'s age.
pub fn birthday(name: &str) -> FTerm {
    parse(
        &format!(
            "foreach e: 5tup | e in EMP & e-name(e) = '{name}' do
               modify(e, age, age(e) + 1)
             end"
        ),
        &[],
    )
}

/// Marry: set `m-status` to `'M'`.
pub fn marry(name: &str) -> FTerm {
    parse(
        &format!(
            "foreach e: 5tup | e in EMP & e-name(e) = '{name}' do
               modify(e, m-status, 'M')
             end"
        ),
        &[],
    )
}

/// Illegally revert `name` to single — violates Example 2's constraint
/// when ages have advanced.
pub fn annul(name: &str) -> FTerm {
    parse(
        &format!(
            "foreach e: 5tup | e in EMP & e-name(e) = '{name}' do
               modify(e, m-status, 'S')
             end"
        ),
        &[],
    )
}

/// `name` obtains skill number `no`.
pub fn obtain_skill(name: &str, no: u64) -> FTerm {
    parse(&format!("insert(tuple('{name}', {no}), SKILL)"), &[])
}

/// Drop a skill — violates Example 3's retention constraint while the
/// employee remains employed.
pub fn drop_skill(name: &str, no: u64) -> FTerm {
    parse(&format!("delete(tuple('{name}', {no}), SKILL)"), &[])
}

/// Create a project.
pub fn add_project(pname: &str, total_alloc: u64) -> FTerm {
    parse(
        &format!("insert(tuple('{pname}', {total_alloc}), PROJ)"),
        &[],
    )
}

/// Allocate `perc`% of `name` to project `pname`.
pub fn allocate(name: &str, pname: &str, perc: u64) -> FTerm {
    parse(
        &format!("insert(tuple('{name}', '{pname}', {perc}), ALLOC)"),
        &[],
    )
}

/// Create a department.
pub fn add_dept(dname: &str, chair: &str, location: &str) -> FTerm {
    parse(
        &format!("insert(tuple('{dname}', '{chair}', '{location}'), DEPT)"),
        &[],
    )
}

/// Delete a department by name (no referential guard — experiments use
/// it to probe the Structural Model constraints).
pub fn delete_dept(dname: &str) -> FTerm {
    parse(
        &format!("foreach d: 3tup | d in DEPT & d-name(d) = '{dname}' do delete(d, DEPT) end"),
        &[],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::employee_schema;
    use txlog_base::Atom;
    use txlog_engine::{check_program, Engine, Env, ProgramKind};

    #[test]
    fn cancel_project_parses_and_checks() {
        let schema = employee_schema();
        let (tx, p, v) = cancel_project();
        assert_eq!(
            check_program(&schema, &tx, &[p, v]).unwrap(),
            ProgramKind::Transaction
        );
        let text = tx.to_string();
        assert!(text.contains("assign(E"));
        assert!(text.contains("delete(p, PROJ)"));
        assert!(text.contains("(salary(e) - v)"));
    }

    #[test]
    fn workday_transactions_check() {
        let schema = employee_schema();
        for tx in [
            hire("ann", "cs", 500, 30, "S", "alpha", 50),
            fire("ann"),
            raise_salary("ann", 10),
            cut_salary("ann", 10),
            switch_dept("ann", "ee"),
            demote("ann", 10, "ee"),
            birthday("ann"),
            marry("ann"),
            annul("ann"),
            obtain_skill("ann", 7),
            drop_skill("ann", 7),
            add_project("alpha", 100),
            allocate("ann", "alpha", 25),
            add_dept("cs", "mgr", "hq"),
            delete_dept("cs"),
        ] {
            assert_eq!(
                check_program(&schema, &tx, &[]).unwrap(),
                ProgramKind::Transaction,
                "{tx}"
            );
        }
    }

    #[test]
    fn hire_then_fire_round_trips() {
        let schema = employee_schema();
        let engine = Engine::builder(&schema).build().unwrap();
        let db0 = schema.initial_state();
        let db1 = engine
            .execute(
                &db0,
                &hire("ann", "cs", 500, 30, "S", "alpha", 50),
                &Env::new(),
            )
            .unwrap();
        let emp = schema.rel_id("EMP").unwrap();
        let alloc = schema.rel_id("ALLOC").unwrap();
        assert_eq!(db1.relation(emp).unwrap().len(), 1);
        assert_eq!(db1.relation(alloc).unwrap().len(), 1);
        let db2 = engine.execute(&db1, &fire("ann"), &Env::new()).unwrap();
        assert!(db2.relation(emp).unwrap().is_empty());
        assert!(db2.relation(alloc).unwrap().is_empty());
    }

    #[test]
    fn raise_changes_salary_only() {
        let schema = employee_schema();
        let engine = Engine::builder(&schema).build().unwrap();
        let db0 = schema.initial_state();
        let db1 = engine
            .execute(
                &db0,
                &hire("ann", "cs", 500, 30, "S", "alpha", 50),
                &Env::new(),
            )
            .unwrap();
        let db2 = engine
            .execute(&db1, &raise_salary("ann", 100), &Env::new())
            .unwrap();
        let emp = schema.rel_id("EMP").unwrap();
        let t = db2.relation(emp).unwrap().iter().next().unwrap();
        assert_eq!(t.fields()[2], Atom::nat(600));
        assert_eq!(t.fields()[1], Atom::str("cs")); // frame
        assert_eq!(t.fields()[3], Atom::nat(30));
    }
}
