//! The paper's employee database (Section 4), executable.
//!
//! * [`schema`] — EMP / DEPT / PROJ / ALLOC / SKILL (+ the scratch
//!   relation `E` used by `cancel-project`);
//! * [`constraints`] — every integrity constraint of Examples 1–4, with
//!   the paper's checkability hints;
//! * [`transactions`] — Example 5's `cancel-project` verbatim plus the
//!   everyday transactions used to evolve databases in experiments;
//! * [`data`] — synthetic valid populations and targeted corruptions;
//! * [`spec`] — Example 6's declarative specification of
//!   `cancel-project`, input to the synthesizer.

#![warn(missing_docs)]

pub mod constraints;
pub mod data;
pub mod schema;
pub mod spec;
pub mod transactions;

pub use data::{populate, Sizes};
pub use schema::{employee_schema, parse_ctx};
