//! Edge cases for Example 5's `cancel-project`: empty projects, absent
//! projects, reductions exceeding salaries, and repeated cancellation.

use txlog_base::Atom;
use txlog_empdb::transactions::cancel_project;
use txlog_empdb::{employee_schema, populate, Sizes};
use txlog_engine::{Engine, Env};
use txlog_relational::TupleVal;

fn target(
    db: &txlog_relational::DbState,
    schema: &txlog_relational::Schema,
    name: &str,
) -> Option<TupleVal> {
    let proj = schema.rel_id("PROJ").expect("PROJ exists");
    db.relation(proj)
        .expect("PROJ in state")
        .iter_vals()
        .find(|t| t.fields[0] == Atom::str(name))
}

#[test]
fn cancelling_a_project_with_no_allocations() {
    let schema = employee_schema();
    let engine = Engine::builder(&schema).build().unwrap();
    let (_, db) = populate(Sizes::small(), 201).expect("population generates");
    // add an unreferenced project
    let proj = schema.rel_id("PROJ").expect("PROJ exists");
    let (db, _) = db
        .insert_fields(proj, &[Atom::str("orphan"), Atom::nat(100)])
        .expect("insert applies");
    let (tx, p, v) = cancel_project();
    let env = Env::new()
        .bind_tuple(p, target(&db, &schema, "orphan").expect("orphan exists"))
        .bind_atom(v, Atom::nat(10));
    let out = engine.execute(&db, &tx, &env).expect("cancel executes");
    // the project vanishes; nothing else changes except the scratch E
    assert!(target(&out, &schema, "orphan").is_none());
    let emp = schema.rel_id("EMP").expect("EMP exists");
    assert_eq!(
        out.relation(emp).expect("EMP in state").len(),
        db.relation(emp).expect("EMP in state").len()
    );
    let alloc = schema.rel_id("ALLOC").expect("ALLOC exists");
    assert_eq!(
        out.relation(alloc).expect("ALLOC in state").len(),
        db.relation(alloc).expect("ALLOC in state").len()
    );
}

#[test]
fn cancelling_a_nonexistent_project_is_a_noop_modulo_scratch() {
    let schema = employee_schema();
    let engine = Engine::builder(&schema).build().unwrap();
    let (_, db) = populate(Sizes::small(), 202).expect("population generates");
    let (tx, p, v) = cancel_project();
    // a tuple value that names no stored project
    let ghost = TupleVal::anonymous(vec![Atom::str("ghost"), Atom::nat(0)]);
    let env = Env::new().bind_tuple(p, ghost).bind_atom(v, Atom::nat(10));
    let out = engine.execute(&db, &tx, &env).expect("cancel executes");
    for rel in ["EMP", "PROJ", "ALLOC", "SKILL"] {
        let rid = schema.rel_id(rel).expect("relation exists");
        assert_eq!(
            out.relation(rid).expect("relation in state").value_set(),
            db.relation(rid).expect("relation in state").value_set(),
            "{rel} must be untouched"
        );
    }
}

#[test]
fn reduction_larger_than_salary_truncates_at_zero() {
    // monus semantics: naturals have no negatives (Presburger)
    let schema = employee_schema();
    let engine = Engine::builder(&schema).build().unwrap();
    let db = schema.initial_state();
    let env0 = Env::new();
    // one employee on two projects, tiny salary
    let db = engine
        .execute(
            &db,
            &txlog_empdb::transactions::hire("lo", "dept-0", 30, 25, "S", "keep", 50),
            &env0,
        )
        .expect("hire executes");
    let db = engine
        .execute(
            &db,
            &txlog_empdb::transactions::add_project("doomed", 100),
            &env0,
        )
        .expect("project added");
    let db = engine
        .execute(
            &db,
            &txlog_empdb::transactions::allocate("lo", "doomed", 50),
            &env0,
        )
        .expect("allocation added");
    let (tx, p, v) = cancel_project();
    let env = Env::new()
        .bind_tuple(p, target(&db, &schema, "doomed").expect("doomed exists"))
        .bind_atom(v, Atom::nat(1000));
    let out = engine.execute(&db, &tx, &env).expect("cancel executes");
    let emp = schema.rel_id("EMP").expect("EMP exists");
    let lo = out
        .relation(emp)
        .expect("EMP in state")
        .iter()
        .find(|t| t.fields()[0] == Atom::str("lo"))
        .expect("lo survives (still on 'keep')");
    assert_eq!(lo.fields()[2], Atom::nat(0), "salary truncates at zero");
}

#[test]
fn double_cancellation_is_idempotent_on_the_database() {
    let schema = employee_schema();
    let engine = Engine::builder(&schema).build().unwrap();
    let (_, db) = populate(Sizes::small(), 203).expect("population generates");
    let (tx, p, v) = cancel_project();
    let t = target(&db, &schema, "proj-0").expect("proj-0 exists");
    let env = Env::new().bind_tuple(p, t).bind_atom(v, Atom::nat(10));
    let once = engine.execute(&db, &tx, &env).expect("first cancel");
    let twice = engine.execute(&once, &tx, &env).expect("second cancel");
    // second run: project already gone, allocations gone, E snapshot is
    // empty, so no employee is touched
    for rel in ["EMP", "PROJ", "ALLOC", "SKILL"] {
        let rid = schema.rel_id(rel).expect("relation exists");
        assert_eq!(
            twice.relation(rid).expect("in state").value_set(),
            once.relation(rid).expect("in state").value_set(),
            "{rel} changed on re-cancellation"
        );
    }
}

#[test]
fn everyone_on_the_project_only_means_mass_firing() {
    let schema = employee_schema();
    let engine = Engine::builder(&schema).build().unwrap();
    let db = schema.initial_state();
    let env0 = Env::new();
    let db = engine
        .execute(
            &db,
            &txlog_empdb::transactions::add_project("solo", 100),
            &env0,
        )
        .expect("project added");
    let mut db = db;
    for i in 0..3 {
        db = engine
            .execute(
                &db,
                &txlog_empdb::transactions::hire(
                    &format!("w{i}"),
                    "dept-0",
                    100,
                    30,
                    "S",
                    "solo",
                    100,
                ),
                &env0,
            )
            .expect("hire executes");
    }
    let (tx, p, v) = cancel_project();
    let env = Env::new()
        .bind_tuple(p, target(&db, &schema, "solo").expect("solo exists"))
        .bind_atom(v, Atom::nat(10));
    let out = engine.execute(&db, &tx, &env).expect("cancel executes");
    let emp = schema.rel_id("EMP").expect("EMP exists");
    assert!(
        out.relation(emp).expect("EMP in state").is_empty(),
        "everyone worked only on the cancelled project"
    );
}
