//! Error vocabulary for the whole system.
//!
//! A single error type keeps cross-crate signatures simple; the variants
//! partition by *which discipline was violated*, mirroring the paper's own
//! distinctions: sort errors (the logic is many-sorted), executability
//! errors (only f-terms are programs), definedness errors (iteration over
//! an infinite satisfying set, or an order-dependent result, is undefined —
//! Section 2), and so on.

use std::fmt;

/// Convenient result alias used across all crates.
pub type TxResult<T> = Result<T, TxError>;

/// Any error produced by the transaction-logic system.
#[derive(Clone, PartialEq, Eq)]
pub enum TxError {
    /// A many-sorted discipline violation (wrong sort, wrong arity).
    Sort(String),
    /// The expression is not an executable program: it is an s-expression
    /// (or refers to states explicitly) rather than an f-term. Section 2's
    /// non-executable salary example lands here.
    NotExecutable(String),
    /// A runtime evaluation failure (unknown relation, missing tuple,
    /// arithmetic overflow, unbound variable…).
    Eval(String),
    /// `foreach x | p do s` whose satisfying set cannot be finitely
    /// enumerated — the paper leaves its value undefined.
    InfiniteDomain(String),
    /// `foreach` whose result depends on the enumeration order — likewise
    /// undefined in the paper.
    OrderDependent(String),
    /// The expression fails to denote — e.g. evaluating a fluent tuple
    /// variable at a state where that tuple does not exist, or `s ; t`
    /// when no `t`-arc leaves `s`. Model checking treats atoms with
    /// non-denoting arguments as false (negative free logic); execution
    /// surfaces this as an error.
    Undefined(String),
    /// Concrete-syntax parse error, with 1-based line/column.
    Parse {
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
        /// Human-readable description of what went wrong.
        msg: String,
    },
    /// The prover exhausted its resource bound without a verdict.
    ProofBound(String),
    /// The synthesizer could not handle the specification (outside the
    /// supported constructive fragment).
    Synthesis(String),
    /// A schema-level inconsistency (duplicate relation, unknown attribute…).
    Schema(String),
}

impl TxError {
    /// Build a [`TxError::Sort`].
    pub fn sort(msg: impl Into<String>) -> TxError {
        TxError::Sort(msg.into())
    }

    /// Build a [`TxError::Eval`].
    pub fn eval(msg: impl Into<String>) -> TxError {
        TxError::Eval(msg.into())
    }

    /// Build a [`TxError::NotExecutable`].
    pub fn not_executable(msg: impl Into<String>) -> TxError {
        TxError::NotExecutable(msg.into())
    }

    /// Build a [`TxError::Schema`].
    pub fn schema(msg: impl Into<String>) -> TxError {
        TxError::Schema(msg.into())
    }

    /// Build a [`TxError::Undefined`].
    pub fn undefined(msg: impl Into<String>) -> TxError {
        TxError::Undefined(msg.into())
    }

    /// True iff this is the "fails to denote" error.
    pub fn is_undefined(&self) -> bool {
        matches!(self, TxError::Undefined(_))
    }

    /// Build a [`TxError::Parse`].
    pub fn parse(line: u32, col: u32, msg: impl Into<String>) -> TxError {
        TxError::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Sort(m) => write!(f, "sort error: {m}"),
            TxError::NotExecutable(m) => write!(f, "not executable: {m}"),
            TxError::Eval(m) => write!(f, "evaluation error: {m}"),
            TxError::InfiniteDomain(m) => write!(f, "undefined (infinite iteration domain): {m}"),
            TxError::OrderDependent(m) => write!(f, "undefined (order-dependent iteration): {m}"),
            TxError::Undefined(m) => write!(f, "undefined: {m}"),
            TxError::Parse { line, col, msg } => write!(f, "parse error at {line}:{col}: {msg}"),
            TxError::ProofBound(m) => write!(f, "proof bound exhausted: {m}"),
            TxError::Synthesis(m) => write!(f, "synthesis failure: {m}"),
            TxError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl fmt::Debug for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for TxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = TxError::sort("expected state");
        assert_eq!(e.to_string(), "sort error: expected state");
        let e = TxError::parse(3, 14, "unexpected ';'");
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected ';'");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TxError::eval("x"), TxError::eval("x"));
        assert_ne!(TxError::eval("x"), TxError::sort("x"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TxError::eval("boom"));
    }
}
