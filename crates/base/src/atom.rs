//! Attribute values — the paper's *atom* sort.
//!
//! Section 2 of the paper fixes the atom sort to the natural numbers and
//! equips it with the functions and predicates of Presburger arithmetic
//! plus `max`, `min`, `sum`, `size`. The worked examples nonetheless write
//! symbolic values (`e-name` values, marital status `S`, department names),
//! which the paper implicitly Gödel-codes into naturals. We keep the
//! symbolic values readable: [`Atom`] is either a natural or an interned
//! string, with arithmetic defined only on the numeric half. This is an
//! isomorphic encoding, not an extension of the theory — interned strings
//! are in bijection with their interner indices.

use crate::error::{TxError, TxResult};
use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;

/// An attribute value: a natural number or a symbolic constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A natural number (the paper's atom sort proper).
    Nat(u64),
    /// A symbolic constant, readable stand-in for a Gödel-coded natural.
    Str(Symbol),
}

impl Atom {
    /// Build a string atom.
    pub fn str(s: &str) -> Atom {
        Atom::Str(Symbol::new(s))
    }

    /// Build a numeric atom.
    pub fn nat(n: u64) -> Atom {
        Atom::Nat(n)
    }

    /// The numeric value, or a sort error for symbolic atoms.
    pub fn as_nat(self) -> TxResult<u64> {
        match self {
            Atom::Nat(n) => Ok(n),
            Atom::Str(s) => Err(TxError::sort(format!(
                "expected a natural number, found symbolic atom {s:?}",
                s = s.as_str()
            ))),
        }
    }

    /// The symbol, or a sort error for numeric atoms.
    pub fn as_symbol(self) -> TxResult<Symbol> {
        match self {
            Atom::Str(s) => Ok(s),
            Atom::Nat(n) => Err(TxError::sort(format!(
                "expected a symbolic atom, found natural {n}"
            ))),
        }
    }

    /// True iff this is a numeric atom.
    pub fn is_nat(self) -> bool {
        matches!(self, Atom::Nat(_))
    }

    /// Natural-number addition; errors on symbolic operands.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Atom) -> TxResult<Atom> {
        Ok(Atom::Nat(
            self.as_nat()?
                .checked_add(rhs.as_nat()?)
                .ok_or_else(|| TxError::eval("natural-number addition overflow"))?,
        ))
    }

    /// Natural-number subtraction (monus: truncating at zero, as Presburger
    /// arithmetic over the naturals has no negative numbers).
    pub fn monus(self, rhs: Atom) -> TxResult<Atom> {
        Ok(Atom::Nat(self.as_nat()?.saturating_sub(rhs.as_nat()?)))
    }

    /// Natural-number multiplication; errors on symbolic operands.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Atom) -> TxResult<Atom> {
        Ok(Atom::Nat(
            self.as_nat()?
                .checked_mul(rhs.as_nat()?)
                .ok_or_else(|| TxError::eval("natural-number multiplication overflow"))?,
        ))
    }

    /// Binary maximum over naturals.
    pub fn max(self, rhs: Atom) -> TxResult<Atom> {
        Ok(Atom::Nat(self.as_nat()?.max(rhs.as_nat()?)))
    }

    /// Binary minimum over naturals.
    pub fn min(self, rhs: Atom) -> TxResult<Atom> {
        Ok(Atom::Nat(self.as_nat()?.min(rhs.as_nat()?)))
    }

    /// Strict order on naturals; errors on symbolic operands.
    pub fn lt(self, rhs: Atom) -> TxResult<bool> {
        Ok(self.as_nat()? < rhs.as_nat()?)
    }

    /// Non-strict order on naturals; errors on symbolic operands.
    pub fn le(self, rhs: Atom) -> TxResult<bool> {
        Ok(self.as_nat()? <= rhs.as_nat()?)
    }

    /// A total order usable for deterministic enumeration (all naturals
    /// before all symbols; symbols by interner index). This is *not* the
    /// arithmetic order of the theory — use [`Atom::lt`] for that.
    pub fn enumeration_cmp(self, rhs: Atom) -> Ordering {
        match (self, rhs) {
            (Atom::Nat(a), Atom::Nat(b)) => a.cmp(&b),
            (Atom::Nat(_), Atom::Str(_)) => Ordering::Less,
            (Atom::Str(_), Atom::Nat(_)) => Ordering::Greater,
            (Atom::Str(a), Atom::Str(b)) => a.index().cmp(&b.index()),
        }
    }
}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Atom) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Atom) -> Ordering {
        self.enumeration_cmp(*other)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Nat(n) => write!(f, "{n}"),
            Atom::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<u64> for Atom {
    fn from(n: u64) -> Atom {
        Atom::Nat(n)
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Atom {
        Atom::str(s)
    }
}

impl From<Symbol> for Atom {
    fn from(s: Symbol) -> Atom {
        Atom::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_naturals() {
        assert_eq!(Atom::nat(40).add(Atom::nat(2)).unwrap(), Atom::nat(42));
        assert_eq!(Atom::nat(7).mul(Atom::nat(6)).unwrap(), Atom::nat(42));
        assert_eq!(Atom::nat(50).monus(Atom::nat(8)).unwrap(), Atom::nat(42));
        assert_eq!(Atom::nat(3).monus(Atom::nat(8)).unwrap(), Atom::nat(0));
        assert_eq!(Atom::nat(1).max(Atom::nat(9)).unwrap(), Atom::nat(9));
        assert_eq!(Atom::nat(1).min(Atom::nat(9)).unwrap(), Atom::nat(1));
    }

    #[test]
    fn arithmetic_rejects_symbols() {
        assert!(Atom::str("S").add(Atom::nat(1)).is_err());
        assert!(Atom::nat(1).lt(Atom::str("S")).is_err());
        assert!(Atom::str("a").monus(Atom::str("b")).is_err());
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        assert!(Atom::nat(u64::MAX).add(Atom::nat(1)).is_err());
        assert!(Atom::nat(u64::MAX).mul(Atom::nat(2)).is_err());
    }

    #[test]
    fn comparisons() {
        assert!(Atom::nat(3).lt(Atom::nat(5)).unwrap());
        assert!(!Atom::nat(5).lt(Atom::nat(5)).unwrap());
        assert!(Atom::nat(5).le(Atom::nat(5)).unwrap());
    }

    #[test]
    fn equality_mixes_sorts_without_error() {
        // Equality is decidable across the whole atom sort.
        assert_ne!(Atom::nat(0), Atom::str("0"));
        assert_eq!(Atom::str("S"), Atom::str("S"));
    }

    #[test]
    fn enumeration_order_is_total_and_deterministic() {
        let mut v = [Atom::str("b"), Atom::nat(2), Atom::str("a"), Atom::nat(1)];
        v.sort();
        assert_eq!(v[0], Atom::nat(1));
        assert_eq!(v[1], Atom::nat(2));
        // Strings sort after naturals (by interner index between themselves).
        assert!(matches!(v[2], Atom::Str(_)));
        assert!(matches!(v[3], Atom::Str(_)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Atom::nat(5).as_nat().unwrap(), 5);
        assert_eq!(Atom::str("x").as_symbol().unwrap().as_str(), "x");
        assert!(Atom::str("x").as_nat().is_err());
        assert!(Atom::nat(5).as_symbol().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Atom::nat(7).to_string(), "7");
        assert_eq!(Atom::str("S").to_string(), "'S'");
    }
}
