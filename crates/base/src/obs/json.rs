//! A minimal hand-rolled JSON writer.
//!
//! The build environment has no package registry, so serde is
//! unavailable; snapshot and explain output instead go through this
//! ~100-line writer. It produces compact (no-whitespace) JSON with
//! correct comma placement and string escaping, which is all the
//! deterministic-baseline diff and the explain API need.

/// An append-only JSON buffer. Call the structural methods in document
/// order; commas are inserted automatically. The caller is responsible
/// for well-formedness (every `begin_*` matched by its `end_*`, every
/// object member preceded by [`JsonBuf::key`]).
#[derive(Default)]
pub struct JsonBuf {
    out: String,
    /// One entry per open container: true once it has a first element.
    has_elem: Vec<bool>,
    /// True immediately after a key, suppressing the comma before its value.
    after_key: bool,
}

impl JsonBuf {
    /// An empty buffer.
    pub fn new() -> JsonBuf {
        JsonBuf::default()
    }

    fn pre_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has) = self.has_elem.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Open an object (`{`).
    pub fn begin_obj(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.has_elem.push(false);
    }

    /// Close the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.has_elem.pop();
        self.out.push('}');
    }

    /// Open an array (`[`).
    pub fn begin_arr(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.has_elem.push(false);
    }

    /// Close the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.has_elem.pop();
        self.out.push(']');
    }

    /// Write an object member key; the next call writes its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.write_escaped(k);
        self.out.push(':');
        self.after_key = true;
    }

    /// Write a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.write_escaped(s);
    }

    /// Write an unsigned integer value.
    pub fn num(&mut self, n: u64) {
        self.pre_value();
        self.out.push_str(itoa(n).as_str());
    }

    /// Write a boolean value.
    pub fn boolean(&mut self, b: bool) {
        self.pre_value();
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// Consume the buffer and return the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

fn itoa(n: u64) -> String {
    n.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commas_and_nesting() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("a");
        j.num(1);
        j.key("b");
        j.begin_arr();
        j.num(2);
        j.string("x");
        j.begin_obj();
        j.end_obj();
        j.end_arr();
        j.key("c");
        j.boolean(true);
        j.end_obj();
        assert_eq!(j.finish(), r#"{"a":1,"b":[2,"x",{}],"c":true}"#);
    }

    #[test]
    fn escapes_strings() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("quote\"back\\slash");
        j.string("line\nbreak\ttab\u{1}");
        j.end_obj();
        assert_eq!(
            j.finish(),
            "{\"quote\\\"back\\\\slash\":\"line\\nbreak\\ttab\\u0001\"}"
        );
    }

    #[test]
    fn empty_containers() {
        let mut j = JsonBuf::new();
        j.begin_arr();
        j.begin_obj();
        j.end_obj();
        j.begin_arr();
        j.end_arr();
        j.end_arr();
        assert_eq!(j.finish(), "[{},[]]");
    }
}
