//! Engine-wide observability: counters, histograms-lite, and spans.
//!
//! Every optimization layer of the system — traced deltas, the
//! fingerprint-keyed verdict cache, compiled quantifier plans with
//! secondary-index probes — claims to save work. This module makes those
//! claims *observable*: the evaluator, the plan interpreter, and the
//! incremental checker all report into a shared [`Metrics`] handle, and
//! consumers (benches, the `metrics-snapshot` binary, `explain()`
//! reports) read the resulting [`Snapshot`].
//!
//! Design constraints, in order:
//!
//! * **Zero cost when disabled.** A [`Metrics`] handle is an
//!   `Option<Arc<Registry>>`; the default is `None`, so every counter
//!   bump on an uninstrumented run is a single branch. Engines built
//!   without an explicit handle inherit the process-global recorder
//!   ([`Metrics::current`]), which is disabled unless a binary installs
//!   one.
//! * **Determinism.** Counters count *events*, never time. The
//!   [`Snapshot`] serializes counters and histograms in fixed catalog
//!   order and spans in name order, and its JSON omits durations unless
//!   explicitly asked — so two runs of the same workload on the same
//!   commit produce byte-identical snapshots, which is what lets CI diff
//!   them against a committed baseline.
//! * **No dependencies.** Counters are relaxed atomics, spans use
//!   `std::time::Instant`, and the JSON is written by the hand-rolled
//!   [`json::JsonBuf`] (the build environment has no registry access, so
//!   serde is not an option).
//!
//! The counter catalog is the closed enum [`Counter`]; the histogram
//! catalog (count/sum/max triples) is [`Hist`]. Adding a counter means
//! adding a variant, its entry in `ALL`, and its name — the snapshot
//! format and the CI baseline pick it up automatically (the baseline
//! will then show intentional drift, to be re-blessed).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod json;

/// The closed catalog of monotonic counters.
///
/// Grouped by subsystem: quantifier-plan interpretation (`Plan*`,
/// `Scan*`, `Probe*`, …), the fluent executor (`Exec*`), the model
/// checker, and the constraint checkers (`Checks*`, `Cache*`, …).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Counter {
    /// Quantifier prefixes compiled to a `QuantPlan`.
    PlansCompiled,
    /// Enumerations emptied (∃) or vacuously satisfied (∀) by a
    /// definitely-false plan-variable-free prefilter.
    PrefilterCuts,
    /// Plan steps interpreted with a full relation scan as the source.
    ScanSteps,
    /// Candidate tuples enumerated by relation scans (including probe
    /// fallbacks that degenerate to scans).
    ScanRows,
    /// Plan steps interpreted with a secondary-index probe as the source.
    ProbeSteps,
    /// Candidate tuples returned by index probes.
    ProbeRows,
    /// Index probes that fell back to a full scan (key failed to
    /// evaluate for a non-`Undefined` reason, or was not atom-valued).
    ProbeFallbackScans,
    /// Lazy secondary-index builds triggered by a probe on a relation
    /// whose index was not yet materialized.
    IndexBuilds,
    /// Plan steps using the active-tuples (arity-wide) fallback domain.
    ActiveSteps,
    /// Candidate tuples enumerated from the active-tuples fallback.
    ActiveRows,
    /// Plan steps using the atom-domain fallback.
    AtomSteps,
    /// Candidate atoms enumerated from the atom-domain fallback.
    AtomRows,
    /// Naive (oracle-mode) enumerations begun.
    NaiveSteps,
    /// Candidate bindings enumerated by the naive nested-loop walk.
    NaiveRows,
    /// Candidates discarded by a residual plan filter before recursion.
    FilterDrops,
    /// Full assignments that reached the enumeration visitor (both
    /// planned and naive paths).
    AssignmentsEmitted,
    /// Transaction combinator steps executed (`execute_traced` nodes).
    ExecSteps,
    /// `a ;; b` composition nodes executed.
    ExecSeq,
    /// `if p then a else b` nodes executed.
    ExecCond,
    /// `foreach` nodes executed.
    ExecForeach,
    /// `foreach` body iterations performed.
    ForeachIterations,
    /// `insert` primitives executed.
    ExecInsert,
    /// `delete` primitives executed.
    ExecDelete,
    /// `modify` primitives executed.
    ExecModify,
    /// `assign` primitives executed.
    ExecAssign,
    /// Closed s-formulas decided by the finite-model checker.
    ModelChecks,
    /// Constraint checks requested of an incremental checker
    /// (`reused + recomputed == requested` is a checked invariant).
    ChecksRequested,
    /// Checks answered from the fingerprint-keyed verdict cache.
    CacheReused,
    /// Checks that built a window model and re-evaluated the constraint.
    CacheRecomputed,
    /// State-fingerprint equality comparisons performed while computing
    /// window-key dedup classes.
    FingerprintCompares,
    /// Runtime model checks skipped because a proof certificate covered
    /// the (transaction, constraint) pair (assisted checking).
    ProofSkips,
    /// Commit attempts started by a `Database` session (including
    /// retries; `attempts == applied + forwarded + conflicts` when every
    /// commit eventually succeeds).
    CommitAttempts,
    /// Commit attempts abandoned because the head moved and the
    /// transaction's footprint overlapped the concurrent deltas.
    CommitConflicts,
    /// Conflicted commits that re-executed against a fresh snapshot.
    CommitRetries,
    /// Commits installed by executing directly at the committed head.
    CommitsApplied,
    /// Commits installed by forwarding a disjoint delta onto a moved
    /// head without re-execution.
    CommitsForwarded,
    /// Session constraints validated against a candidate commit.
    CommitValidations,
    /// Session-constraint validations skipped because the commit's delta
    /// was disjoint from the constraint's read set.
    CommitValidationSkips,
    /// Records (commits and checkpoints) appended to a write-ahead log.
    WalAppends,
    /// Bytes appended to a write-ahead log, framing included.
    WalBytes,
    /// Synchronous flushes (`fsync`-equivalents) issued to a log store.
    WalFsyncs,
    /// Full-state checkpoint records appended to a write-ahead log.
    WalCheckpoints,
    /// Batches the group-commit log writer flushed (one fsync each).
    WalGroupBatches,
    /// Committed deltas replayed onto a checkpoint state during recovery.
    RecoverReplayedDeltas,
    /// Torn or corrupt tail records dropped (by truncation) during
    /// recovery.
    RecoverTruncatedRecords,
    /// Connections the wire-protocol server admitted into service.
    ServerConnsAccepted,
    /// Connections the server turned away at admission (the active set
    /// or the hand-off queue was full).
    ServerConnsRejected,
    /// Request frames the server decoded off client connections.
    ServerFramesIn,
    /// Response frames the server wrote to client connections
    /// (including rejection and goodbye frames).
    ServerFramesOut,
    /// Frames or payloads the server could not decode (bad checksum,
    /// truncated frame, unknown message tag).
    ServerDecodeErrors,
    /// Requests the server rejected with a wire `Overload` error (the
    /// commit pipeline's log submission queue was full).
    ServerOverloads,
    /// Serializable commits aborted because a concurrently committed
    /// delta intersected the session's accumulated read footprint (or
    /// the bounded delta log was too short to certify it clean).
    CommitSerializationFailures,
    /// Sessions opened at `IsolationLevel::ReadCommitted` (after any
    /// escalation).
    SessionsReadCommitted,
    /// Sessions opened at `IsolationLevel::Snapshot` (after any
    /// escalation).
    SessionsSnapshot,
    /// Sessions opened at `IsolationLevel::Serializable`.
    SessionsSerializable,
    /// Read-committed session requests escalated to Snapshot because
    /// the database carries multi-state (window ≥ 2) constraints that
    /// statement-boundary re-pinning would break.
    SessionsEscalated,
    /// Event patterns registered (materializing or subscription-only).
    EvtPatterns,
    /// Automaton node visits across all pattern advances.
    EvtSteps,
    /// Pattern matches produced by the event dispatch stage.
    EvtMatches,
    /// Tuples installed into materialized event relations.
    EvtMaterialized,
    /// Notifications delivered to subscribers (in-process callbacks
    /// count one per match delivered).
    EvtNotificationsSent,
    /// Notifications dropped because a subscriber's queue overflowed.
    EvtNotificationsDropped,
}

impl Counter {
    /// Every counter, in canonical (serialization) order.
    pub const ALL: [Counter; 62] = [
        Counter::PlansCompiled,
        Counter::PrefilterCuts,
        Counter::ScanSteps,
        Counter::ScanRows,
        Counter::ProbeSteps,
        Counter::ProbeRows,
        Counter::ProbeFallbackScans,
        Counter::IndexBuilds,
        Counter::ActiveSteps,
        Counter::ActiveRows,
        Counter::AtomSteps,
        Counter::AtomRows,
        Counter::NaiveSteps,
        Counter::NaiveRows,
        Counter::FilterDrops,
        Counter::AssignmentsEmitted,
        Counter::ExecSteps,
        Counter::ExecSeq,
        Counter::ExecCond,
        Counter::ExecForeach,
        Counter::ForeachIterations,
        Counter::ExecInsert,
        Counter::ExecDelete,
        Counter::ExecModify,
        Counter::ExecAssign,
        Counter::ModelChecks,
        Counter::ChecksRequested,
        Counter::CacheReused,
        Counter::CacheRecomputed,
        Counter::FingerprintCompares,
        Counter::ProofSkips,
        Counter::CommitAttempts,
        Counter::CommitConflicts,
        Counter::CommitRetries,
        Counter::CommitsApplied,
        Counter::CommitsForwarded,
        Counter::CommitValidations,
        Counter::CommitValidationSkips,
        Counter::WalAppends,
        Counter::WalBytes,
        Counter::WalFsyncs,
        Counter::WalCheckpoints,
        Counter::WalGroupBatches,
        Counter::RecoverReplayedDeltas,
        Counter::RecoverTruncatedRecords,
        Counter::ServerConnsAccepted,
        Counter::ServerConnsRejected,
        Counter::ServerFramesIn,
        Counter::ServerFramesOut,
        Counter::ServerDecodeErrors,
        Counter::ServerOverloads,
        Counter::CommitSerializationFailures,
        Counter::SessionsReadCommitted,
        Counter::SessionsSnapshot,
        Counter::SessionsSerializable,
        Counter::SessionsEscalated,
        Counter::EvtPatterns,
        Counter::EvtSteps,
        Counter::EvtMatches,
        Counter::EvtMaterialized,
        Counter::EvtNotificationsSent,
        Counter::EvtNotificationsDropped,
    ];

    /// Stable snake_case name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PlansCompiled => "plans_compiled",
            Counter::PrefilterCuts => "prefilter_cuts",
            Counter::ScanSteps => "scan_steps",
            Counter::ScanRows => "scan_rows",
            Counter::ProbeSteps => "probe_steps",
            Counter::ProbeRows => "probe_rows",
            Counter::ProbeFallbackScans => "probe_fallback_scans",
            Counter::IndexBuilds => "index_builds",
            Counter::ActiveSteps => "active_steps",
            Counter::ActiveRows => "active_rows",
            Counter::AtomSteps => "atom_steps",
            Counter::AtomRows => "atom_rows",
            Counter::NaiveSteps => "naive_steps",
            Counter::NaiveRows => "naive_rows",
            Counter::FilterDrops => "filter_drops",
            Counter::AssignmentsEmitted => "assignments_emitted",
            Counter::ExecSteps => "exec_steps",
            Counter::ExecSeq => "exec_seq",
            Counter::ExecCond => "exec_cond",
            Counter::ExecForeach => "exec_foreach",
            Counter::ForeachIterations => "foreach_iterations",
            Counter::ExecInsert => "exec_insert",
            Counter::ExecDelete => "exec_delete",
            Counter::ExecModify => "exec_modify",
            Counter::ExecAssign => "exec_assign",
            Counter::ModelChecks => "model_checks",
            Counter::ChecksRequested => "checks_requested",
            Counter::CacheReused => "cache_reused",
            Counter::CacheRecomputed => "cache_recomputed",
            Counter::FingerprintCompares => "fingerprint_compares",
            Counter::ProofSkips => "proof_skips",
            Counter::CommitAttempts => "commit_attempts",
            Counter::CommitConflicts => "commit_conflicts",
            Counter::CommitRetries => "commit_retries",
            Counter::CommitsApplied => "commits_applied",
            Counter::CommitsForwarded => "commits_forwarded",
            Counter::CommitValidations => "commit_validations",
            Counter::CommitValidationSkips => "commit_validation_skips",
            Counter::WalAppends => "wal_appends",
            Counter::WalBytes => "wal_bytes",
            Counter::WalFsyncs => "wal_fsyncs",
            Counter::WalCheckpoints => "wal_checkpoints",
            Counter::WalGroupBatches => "wal_group_batches",
            Counter::RecoverReplayedDeltas => "recover_replayed_deltas",
            Counter::RecoverTruncatedRecords => "recover_truncated_records",
            Counter::ServerConnsAccepted => "srv_conns_accepted",
            Counter::ServerConnsRejected => "srv_conns_rejected",
            Counter::ServerFramesIn => "srv_frames_in",
            Counter::ServerFramesOut => "srv_frames_out",
            Counter::ServerDecodeErrors => "srv_decode_errors",
            Counter::ServerOverloads => "srv_overloads",
            Counter::CommitSerializationFailures => "commit_serialization_failures",
            Counter::SessionsReadCommitted => "sessions_read_committed",
            Counter::SessionsSnapshot => "sessions_snapshot",
            Counter::SessionsSerializable => "sessions_serializable",
            Counter::SessionsEscalated => "sessions_escalated",
            Counter::EvtPatterns => "evt_patterns",
            Counter::EvtSteps => "evt_steps",
            Counter::EvtMatches => "evt_matches",
            Counter::EvtMaterialized => "evt_materialized",
            Counter::EvtNotificationsSent => "evt_notifications_sent",
            Counter::EvtNotificationsDropped => "evt_notifications_dropped",
        }
    }
}

/// The closed catalog of histograms-lite (count / sum / max triples).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Hist {
    /// Tuple changes per recorded transaction delta.
    DeltaTuples,
    /// Candidate-budget consumption per enumeration (`max_iterations`
    /// slots used by one quantifier/set-former/`foreach` domain walk).
    EnumBudget,
    /// Satisfying matches per `foreach` execution.
    ForeachMatches,
    /// Relations in a constraint's read set at checker construction
    /// (the whole schema when the read set is unbounded).
    ReadSetRels,
    /// States participating in each window-key computation.
    WindowStates,
    /// Commit records per group-commit batch (one observation per
    /// flushed batch).
    WalGroupBatchSize,
}

impl Hist {
    /// Every histogram, in canonical (serialization) order.
    pub const ALL: [Hist; 6] = [
        Hist::DeltaTuples,
        Hist::EnumBudget,
        Hist::ForeachMatches,
        Hist::ReadSetRels,
        Hist::WindowStates,
        Hist::WalGroupBatchSize,
    ];

    /// Stable snake_case name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            Hist::DeltaTuples => "delta_tuples",
            Hist::EnumBudget => "enum_budget",
            Hist::ForeachMatches => "foreach_matches",
            Hist::ReadSetRels => "read_set_rels",
            Hist::WindowStates => "window_states",
            Hist::WalGroupBatchSize => "wal_group_batch_size",
        }
    }
}

/// One histogram's accumulated state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HistValue {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Maximum observed value (0 when empty).
    pub max: u64,
}

#[derive(Default)]
struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// One span's accumulated state: entry count plus total/max wall time.
/// Only the count is deterministic; snapshots exclude the durations
/// unless asked.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpanValue {
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds spent inside (non-deterministic).
    pub total_nanos: u64,
    /// Longest single visit in nanoseconds (non-deterministic).
    pub max_nanos: u64,
}

struct Registry {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [HistCell; Hist::ALL.len()],
    spans: Mutex<BTreeMap<String, SpanValue>>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistCell::default()),
            spans: Mutex::new(BTreeMap::new()),
        }
    }
}

/// The process-global recorder, installed by binaries that want every
/// engine/checker built without an explicit handle to report somewhere
/// (e.g. the `metrics-snapshot` binary). `None` in normal operation.
static GLOBAL: Mutex<Option<Arc<Registry>>> = Mutex::new(None);

thread_local! {
    /// Stack of active span names on this thread, for nested span paths.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A cheap, cloneable handle to a metrics registry — or to nothing.
///
/// Cloning shares the registry: two handles cloned from each other
/// accumulate into the same counters. The disabled handle makes every
/// recording operation a single branch.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl Metrics {
    /// The no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// A fresh, empty, recording registry.
    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(Registry::new())),
        }
    }

    /// True iff this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Install this handle's registry as the process-global recorder
    /// that [`Metrics::current`] returns. Installing a disabled handle
    /// uninstalls the global.
    pub fn install_global(&self) {
        *GLOBAL.lock().expect("metrics global lock") = self.inner.clone();
    }

    /// The process-global recorder if one is installed, else disabled.
    /// Engines and checkers built without an explicit handle call this.
    pub fn current() -> Metrics {
        Metrics {
            inner: GLOBAL.lock().expect("metrics global lock").clone(),
        }
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(r) = &self.inner {
            r.counters[c as usize].fetch_add(n, Relaxed);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn bump(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&self, h: Hist, v: u64) {
        if let Some(r) = &self.inner {
            let cell = &r.hists[h as usize];
            cell.count.fetch_add(1, Relaxed);
            cell.sum.fetch_add(v, Relaxed);
            cell.max.fetch_max(v, Relaxed);
        }
    }

    /// Current value of a counter (0 on a disabled handle).
    pub fn get(&self, c: Counter) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |r| r.counters[c as usize].load(Relaxed))
    }

    /// Current state of a histogram (empty on a disabled handle).
    pub fn hist(&self, h: Hist) -> HistValue {
        self.inner.as_ref().map_or(HistValue::default(), |r| {
            let cell = &r.hists[h as usize];
            HistValue {
                count: cell.count.load(Relaxed),
                sum: cell.sum.load(Relaxed),
                max: cell.max.load(Relaxed),
            }
        })
    }

    /// Zero every counter, histogram, and span.
    pub fn reset(&self) {
        if let Some(r) = &self.inner {
            for c in &r.counters {
                c.store(0, Relaxed);
            }
            for h in &r.hists {
                h.count.store(0, Relaxed);
                h.sum.store(0, Relaxed);
                h.max.store(0, Relaxed);
            }
            r.spans.lock().expect("span lock").clear();
        }
    }

    /// Enter a named, timed span. The returned guard records on drop;
    /// spans entered while another span guard is live on the same thread
    /// are recorded under the dotted path of their ancestors
    /// (`"check.model"`), which is the nesting structure.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(r) = &self.inner else {
            return SpanGuard { active: None };
        };
        let path = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let mut path = String::new();
            for anc in s.iter() {
                path.push_str(anc);
                path.push('.');
            }
            path.push_str(name);
            s.push(name);
            path
        });
        SpanGuard {
            active: Some(ActiveSpan {
                registry: Arc::clone(r),
                path,
                start: Instant::now(),
            }),
        }
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .collect();
        let hists = Hist::ALL
            .iter()
            .map(|&h| (h.name(), self.hist(h)))
            .collect();
        let spans = self.inner.as_ref().map_or_else(BTreeMap::new, |r| {
            r.spans.lock().expect("span lock").clone()
        });
        Snapshot {
            counters,
            hists,
            spans,
        }
    }
}

struct ActiveSpan {
    registry: Arc<Registry>,
    path: String,
    start: Instant,
}

/// Guard returned by [`Metrics::span`]; records the visit on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let nanos = u64::try_from(a.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut spans = a.registry.spans.lock().expect("span lock");
        let v = spans.entry(a.path).or_default();
        v.count += 1;
        v.total_nanos += nanos;
        v.max_nanos = v.max_nanos.max(nanos);
    }
}

/// A point-in-time copy of a registry: counters and histograms in
/// catalog order, spans in path order.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// `(name, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every histogram, in [`Hist::ALL`] order.
    pub hists: Vec<(&'static str, HistValue)>,
    /// Accumulated spans keyed by dotted path.
    pub spans: BTreeMap<String, SpanValue>,
}

impl Snapshot {
    /// Value of a counter by name (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Serialize to JSON. With `include_timings` false (the deterministic
    /// form the CI baseline uses) spans carry only their entry counts;
    /// with it true they also carry total/max nanoseconds.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut j = json::JsonBuf::new();
        j.begin_obj();
        j.key("counters");
        j.begin_obj();
        for (name, v) in &self.counters {
            j.key(name);
            j.num(*v);
        }
        j.end_obj();
        j.key("hists");
        j.begin_obj();
        for (name, h) in &self.hists {
            j.key(name);
            j.begin_obj();
            j.key("count");
            j.num(h.count);
            j.key("sum");
            j.num(h.sum);
            j.key("max");
            j.num(h.max);
            j.end_obj();
        }
        j.end_obj();
        j.key("spans");
        j.begin_obj();
        for (path, s) in &self.spans {
            j.key(path);
            j.begin_obj();
            j.key("count");
            j.num(s.count);
            if include_timings {
                j.key("total_nanos");
                j.num(s.total_nanos);
                j.key("max_nanos");
                j.num(s.max_nanos);
            }
            j.end_obj();
        }
        j.end_obj();
        j.end_obj();
        j.finish()
    }

    /// Like [`Snapshot::to_json`] but pretty-printed with one entry per
    /// line — the form committed as the CI metrics baseline, so a drift
    /// surfaces as a reviewable per-counter line diff.
    pub fn to_json_pretty(&self, include_timings: bool) -> String {
        fn block(out: &mut String, name: &str, lines: &[String], last: bool) {
            let _ = writeln!(out, "  \"{name}\": {{");
            for (i, l) in lines.iter().enumerate() {
                let comma = if i + 1 < lines.len() { "," } else { "" };
                let _ = writeln!(out, "    {l}{comma}");
            }
            let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
        }
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{n}\": {v}"))
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|(n, h)| {
                format!(
                    "\"{n}\": {{\"count\": {}, \"sum\": {}, \"max\": {}}}",
                    h.count, h.sum, h.max
                )
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|(p, s)| {
                if include_timings {
                    format!(
                        "\"{p}\": {{\"count\": {}, \"total_nanos\": {}, \"max_nanos\": {}}}",
                        s.count, s.total_nanos, s.max_nanos
                    )
                } else {
                    format!("\"{p}\": {{\"count\": {}}}", s.count)
                }
            })
            .collect();
        let mut out = String::from("{\n");
        block(&mut out, "counters", &counters, false);
        block(&mut out, "hists", &hists, false);
        block(&mut out, "spans", &spans, true);
        out.push('}');
        out
    }

    /// Human-readable report: non-zero counters, non-empty histograms,
    /// and spans with mean/max times.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for (name, v) in &self.counters {
            if *v != 0 {
                let _ = writeln!(out, "  {name:<24} {v}");
            }
        }
        out.push_str("hists (count/sum/max):\n");
        for (name, h) in &self.hists {
            if h.count != 0 {
                let _ = writeln!(out, "  {name:<24} {}/{}/{}", h.count, h.sum, h.max);
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for (path, s) in &self.spans {
                let mean = s.total_nanos / s.count.max(1);
                let _ = writeln!(
                    out,
                    "  {path:<24} n={} mean={}ns max={}ns",
                    s.count, mean, s.max_nanos
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        m.bump(Counter::ScanRows);
        m.observe(Hist::DeltaTuples, 7);
        let _g = m.span("noop");
        assert_eq!(m.get(Counter::ScanRows), 0);
        assert_eq!(m.hist(Hist::DeltaTuples), HistValue::default());
        assert!(m.snapshot().spans.is_empty());
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let m = Metrics::enabled();
        m.bump(Counter::ProbeRows);
        m.add(Counter::ProbeRows, 4);
        m.observe(Hist::EnumBudget, 3);
        m.observe(Hist::EnumBudget, 9);
        assert_eq!(m.get(Counter::ProbeRows), 5);
        assert_eq!(
            m.hist(Hist::EnumBudget),
            HistValue {
                count: 2,
                sum: 12,
                max: 9
            }
        );
        // clones share the registry
        let m2 = m.clone();
        m2.bump(Counter::ProbeRows);
        assert_eq!(m.get(Counter::ProbeRows), 6);
        m.reset();
        assert_eq!(m2.get(Counter::ProbeRows), 0);
        assert_eq!(m2.hist(Hist::EnumBudget), HistValue::default());
    }

    #[test]
    fn spans_nest_by_dotted_path() {
        let m = Metrics::enabled();
        {
            let _outer = m.span("check");
            {
                let _inner = m.span("model");
                let _deeper = m.span("eval");
            }
            let _inner2 = m.span("model");
        }
        let _again = m.span("check");
        drop(_again);
        let snap = m.snapshot();
        assert_eq!(snap.spans["check"].count, 2);
        assert_eq!(snap.spans["check.model"].count, 2);
        assert_eq!(snap.spans["check.model.eval"].count, 1);
        // sibling after inner dropped is a fresh top-level nesting
        assert!(!snap.spans.contains_key("model"));
    }

    #[test]
    fn snapshot_json_is_deterministic_without_timings() {
        let m = Metrics::enabled();
        m.add(Counter::ScanRows, 2);
        m.observe(Hist::DeltaTuples, 5);
        {
            let _s = m.span("work");
        }
        let a = m.snapshot().to_json(false);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = m.snapshot().to_json(false);
        assert_eq!(a, b, "counter-only JSON must not depend on time");
        assert!(a.contains("\"scan_rows\":2"));
        assert!(a.contains("\"delta_tuples\":{\"count\":1,\"sum\":5,\"max\":5}"));
        assert!(a.contains("\"work\":{\"count\":1}"));
        assert!(!a.contains("nanos"));
        // the timed form does expose durations
        assert!(m.snapshot().to_json(true).contains("total_nanos"));
    }

    #[test]
    fn pretty_json_is_the_compact_json_reformatted() {
        let m = Metrics::enabled();
        m.add(Counter::ProbeRows, 41);
        m.observe(Hist::EnumBudget, 9);
        {
            let _outer = m.span("check");
            let _inner = m.span("model");
        }
        let snap = m.snapshot();
        // catalog names and span paths contain no spaces, so stripping
        // layout whitespace from the pretty form must recover the
        // compact form exactly
        let stripped: String = snap
            .to_json_pretty(false)
            .chars()
            .filter(|c| *c != ' ' && *c != '\n')
            .collect();
        assert_eq!(stripped, snap.to_json(false));
        let pretty = snap.to_json_pretty(false);
        assert!(pretty.contains("\"probe_rows\": 41"));
        assert!(pretty.contains("\"check.model\": {\"count\": 1}"));
        assert!(snap.to_json_pretty(true).contains("total_nanos"));
    }

    #[test]
    fn catalog_names_are_unique_and_match_order() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "catalog names must be unique");
        // ALL must cover every discriminant exactly once
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, *c as usize); // discriminants are usable
            assert_eq!(
                Counter::ALL.iter().filter(|d| **d == *c).count(),
                1,
                "duplicate in ALL at {i}"
            );
        }
    }

    #[test]
    fn global_install_and_uninstall() {
        // current() is disabled by default in the test process (nothing
        // installed), and reflects installs/uninstalls.
        let m = Metrics::enabled();
        m.install_global();
        assert!(Metrics::current().is_enabled());
        Metrics::current().bump(Counter::ModelChecks);
        assert_eq!(m.get(Counter::ModelChecks), 1);
        Metrics::disabled().install_global();
        assert!(!Metrics::current().is_enabled());
    }

    #[test]
    fn render_skips_zero_entries() {
        let m = Metrics::enabled();
        m.bump(Counter::ExecSteps);
        let text = m.snapshot().render();
        assert!(text.contains("exec_steps"));
        assert!(!text.contains("exec_assign"));
    }
}
