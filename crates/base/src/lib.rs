//! Foundation types for the situational transaction logic.
//!
//! This crate provides the vocabulary shared by every other layer of the
//! system:
//!
//! * [`Symbol`] — cheap interned strings used for relation names, attribute
//!   names, variable names, and user-defined function symbols.
//! * [`Atom`] — attribute values. The paper fixes the atom sort to the
//!   natural numbers; we additionally admit interned strings as a readable
//!   isomorphic encoding (every example in the paper uses symbolic names
//!   such as `e-name` values or the marital status `S`). Arithmetic is only
//!   defined on the numeric half, exactly as Presburger arithmetic demands.
//! * [`TupleId`], [`RelId`], [`StateId`] — the identifier sorts. The
//!   paper's frame axioms are keyed on the `id` function; stable identity
//!   across `modify` is what makes frame reasoning possible.
//! * [`TxError`] — the error vocabulary for evaluation, parsing,
//!   classification, proving, and synthesis.
//! * [`Metrics`] — the engine-wide observability handle (counters,
//!   histograms-lite, nested timed spans) threaded through the
//!   evaluator, plan interpreter, and constraint checkers.
//!
//! Nothing here knows about terms, formulas, or states; those live in
//! `txlog-logic` and `txlog-relational`.

#![warn(missing_docs)]

pub mod atom;
pub mod error;
pub mod ids;
pub mod obs;
pub mod symbol;

pub use atom::Atom;
pub use error::{TxError, TxResult};
pub use ids::{RelId, StateId, TupleId};
pub use obs::{Counter, Hist, HistValue, Metrics, Snapshot, SpanValue};
pub use symbol::Symbol;
