//! Identifier sorts.
//!
//! The paper's Section 2 introduces *identifier sorts* — the n-ary tuple
//! identifier sort and the n-ary set (relation) identifier sort — together
//! with the `id` function that maps a tuple or relation to its identifier.
//! Identifiers are what the frame axioms quantify over: `modify`ing tuple
//! `t₂` leaves attribute `i` of every tuple `t₁` with `id(t₁) ≠ id(t₂)`
//! untouched. Identity must therefore survive attribute modification, which
//! is why it is carried separately from the tuple's field values.
//!
//! [`StateId`] names nodes of the evolution graph. States are *values* in
//! the logic; the graph assigns them identities so transitions (arcs) can
//! reference endpoints cheaply.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub $repr);

        impl $name {
            /// The raw numeric identifier.
            pub fn raw(self) -> $repr {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }
    };
}

id_type!(
    /// Identifier of a tuple — the value of the paper's `id` function on
    /// tuples. Allocated by the state in which the tuple is first inserted
    /// and stable under `modify`.
    TupleId,
    u64,
    "t#"
);

id_type!(
    /// Identifier of a relation — the value of the paper's `id` function on
    /// relations (n-ary sets). Allocated by the catalog or by `assign`.
    RelId,
    u32,
    "r#"
);

id_type!(
    /// Identifier of a database state within an evolution graph.
    StateId,
    u32,
    "s#"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_forms() {
        assert_eq!(TupleId(7).to_string(), "t#7");
        assert_eq!(RelId(3).to_string(), "r#3");
        assert_eq!(StateId(0).to_string(), "s#0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(TupleId(1) < TupleId(2));
        let mut set = HashSet::new();
        set.insert(RelId(1));
        set.insert(RelId(1));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn raw_round_trips() {
        assert_eq!(TupleId(42).raw(), 42);
        assert_eq!(RelId(42).raw(), 42);
        assert_eq!(StateId(42).raw(), 42);
    }
}
