//! Interned strings.
//!
//! Symbols are used pervasively — relation names, attribute names, variable
//! names, user function symbols, string-valued atoms — so they must be cheap
//! to copy, compare, and hash. A global interner maps each distinct string
//! to a `u32` index; `Symbol` is that index.
//!
//! The interner is process-global and append-only. Interning is
//! `Mutex`-guarded; resolution takes the same lock. Symbols from different
//! threads are therefore consistent, and a `Symbol` is valid for the
//! lifetime of the process.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// `Symbol`s are `Copy`, and equality/ordering/hash are O(1) on the index.
/// Note that `Ord` is *interning order*, not lexicographic order; use
/// [`Symbol::as_str`] when lexicographic order matters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Intern `name`, returning its symbol. Idempotent.
    pub fn new(name: &str) -> Symbol {
        let mut int = interner().lock().expect("symbol interner poisoned");
        if let Some(&ix) = int.table.get(name) {
            return Symbol(ix);
        }
        let ix = u32::try_from(int.names.len()).expect("symbol table overflow");
        // Leaking is deliberate: symbols live for the whole process, and the
        // set of distinct names in any realistic schema/program is tiny.
        let owned: &'static str = Box::leak(name.to_owned().into_boxed_str());
        int.names.push(owned);
        int.table.insert(owned, ix);
        Symbol(ix)
    }

    /// The string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        let int = interner().lock().expect("symbol interner poisoned");
        int.names[self.0 as usize]
    }

    /// The raw interner index. Stable within a process run only.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("EMP");
        let b = Symbol::new("EMP");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let a = Symbol::new("salary");
        let b = Symbol::new("age");
        assert_ne!(a, b);
    }

    #[test]
    fn round_trip() {
        let s = Symbol::new("cancel-project");
        assert_eq!(s.as_str(), "cancel-project");
        assert_eq!(s.to_string(), "cancel-project");
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let s = Symbol::new("");
        assert_eq!(s.as_str(), "");
        assert_eq!(s, Symbol::new(""));
    }

    #[test]
    fn hash_agrees_with_eq() {
        let h = |s: Symbol| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(Symbol::new("x")), h(Symbol::new("x")));
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "PROJ".into();
        let b: Symbol = String::from("PROJ").into();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..64)
                        .map(|j| Symbol::new(&format!("concurrent-{}", (i + j) % 16)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all {
            for s in row {
                assert!(s.as_str().starts_with("concurrent-"));
            }
        }
        // Same name interned from different threads must be the same symbol.
        let x = Symbol::new("concurrent-3");
        for row in &all {
            for s in row {
                if s.as_str() == "concurrent-3" {
                    assert_eq!(*s, x);
                }
            }
        }
    }
}
