//! # txlog-server — the database, served over the network
//!
//! A concurrent wire-protocol server (and matching blocking client)
//! over [`std::net`], exposing a shared
//! [`Database`](txlog_engine::Database) — sessions, optimistic
//! commits, constraints, durability and all — to remote clients.
//!
//! Three layers, bottom up:
//!
//! * [`frame`] — the self-delimiting, CRC-checked wire frame
//!   (`len ‖ crc ‖ payload`), with timeout-aware readers. The same
//!   framing discipline the write-ahead log uses on disk.
//! * [`proto`] — typed [`Request`]/[`Response`] messages and the
//!   [`WireError`] vocabulary, encoded with the workspace's canonical
//!   codec. Decoding is total: any bytes produce a message or a typed
//!   error, never a panic.
//! * [`server`] / [`client`] — a thread-pool server with admission
//!   control, backpressure, and graceful drain; a blocking client
//!   whose methods map one-to-one onto requests.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use txlog_engine::{Database, Env};
//! use txlog_relational::Schema;
//! use txlog_server::{Client, Server};
//!
//! let schema = Schema::new().relation("EMP", &["e-name", "salary"]).unwrap();
//! let db = Arc::new(Database::builder(schema).build().unwrap());
//! let server = Server::bind(db, "127.0.0.1:0").unwrap();
//!
//! let mut client = Client::connect(server.local_addr(), "quickstart").unwrap();
//! client.execute("hire", "insert(tuple('ann', 500), EMP)").unwrap();
//! assert!(client.ask("exists e: 2tup . e in EMP").unwrap());
//!
//! server.shutdown();
//! server.join();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, Notification, NotificationEvent, RemoteCommit, ServerInfo};
pub use frame::{FrameError, DEFAULT_MAX_FRAME_LEN};
pub use proto::{ErrorCode, Request, Response, WireError, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig};
