//! `txlog-serve` — stand up a database and serve it.
//!
//! ```text
//! txlog-serve [ADDR] [--rel NAME(attr,…)]… [--snapshot FILE] [--wal FILE]
//! ```
//!
//! * `ADDR` — listen address (default `127.0.0.1:7878`).
//! * `--rel NAME(attr,…)` — declare a relation (repeatable).
//! * `--snapshot FILE` — load schema + state from a checksummed
//!   snapshot (as written by the REPL's `:save`).
//! * `--wal FILE` — attach a write-ahead log; recovers from it if it
//!   exists, so restarting the server resumes where it left off.
//!
//! The process runs until a client sends `Shutdown` (`:quit-server`
//! in the REPL) or the listener thread exits.

use std::sync::Arc;
use txlog_base::obs::Metrics;
use txlog_engine::{Database, Durability};
use txlog_relational::{codec, Schema};
use txlog_server::Server;

struct Args {
    addr: String,
    rels: Vec<String>,
    snapshot: Option<String>,
    wal: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        rels: Vec::new(),
        snapshot: None,
        wal: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rel" => args.rels.push(it.next().ok_or("--rel needs NAME(attr,…)")?),
            "--snapshot" => args.snapshot = Some(it.next().ok_or("--snapshot needs a path")?),
            "--wal" => args.wal = Some(it.next().ok_or("--wal needs a path")?),
            "--help" | "-h" => {
                return Err("usage: txlog-serve [ADDR] [--rel NAME(attr,…)]… \
                            [--snapshot FILE] [--wal FILE]"
                    .to_string())
            }
            other if !other.starts_with('-') => args.addr = other.to_string(),
            other => return Err(format!("unknown flag {other:?}; try --help")),
        }
    }
    Ok(args)
}

fn declare(schema: Schema, spec: &str) -> Result<Schema, String> {
    let (name, attrs) = spec
        .split_once('(')
        .ok_or_else(|| format!("--rel {spec:?}: expected NAME(attr,…)"))?;
    let attrs: Vec<&str> = attrs
        .trim_end_matches(')')
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .collect();
    schema
        .relation(name.trim(), &attrs)
        .map_err(|e| format!("--rel {spec:?}: {e}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let (schema, initial) = match &args.snapshot {
        Some(path) => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("cannot read snapshot {path}: {e}");
                std::process::exit(1);
            });
            let (schema, state) = codec::decode_snapshot(&bytes).unwrap_or_else(|e| {
                eprintln!("{path} is not a txlog snapshot: {e}");
                std::process::exit(1);
            });
            (schema, Some(state))
        }
        None => {
            let mut schema = Schema::new();
            for spec in &args.rels {
                schema = declare(schema, spec).unwrap_or_else(|msg| {
                    eprintln!("{msg}");
                    std::process::exit(2);
                });
            }
            (schema, None)
        }
    };

    let mut builder = Database::builder(schema).metrics(Metrics::enabled());
    if let Some(state) = initial {
        builder = builder.initial(state);
    }
    let db = match &args.wal {
        Some(path) => {
            let (db, report) = builder
                .durability(Durability::Wal {
                    sync_every: 8,
                    checkpoint_every: 1024,
                })
                .open_path(path)
                .unwrap_or_else(|e| {
                    eprintln!("cannot open write-ahead log {path}: {e}");
                    std::process::exit(1);
                });
            eprintln!("wal {path}: recovered to version {}", report.version);
            db
        }
        None => builder.build().unwrap_or_else(|e| {
            eprintln!("cannot build database: {e}");
            std::process::exit(1);
        }),
    };

    let db = Arc::new(db);
    let server = Server::bind(Arc::clone(&db), &args.addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    eprintln!(
        "txlog-serve listening on {} ({} relations, head version {})",
        server.local_addr(),
        db.schema().decls().len(),
        db.head_version()
    );
    server.join();
    eprintln!("txlog-serve: drained, goodbye");
}
