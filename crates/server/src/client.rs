//! A blocking client for the wire protocol.
//!
//! [`Client::connect`] performs the handshake and returns a handle
//! whose methods map one-to-one onto [`Request`] variants, each
//! blocking until the matching [`Response`] arrives. Server-reported
//! failures surface as [`ClientError::Server`] carrying the typed
//! [`WireError`], so callers can distinguish a constraint violation
//! from an overload without parsing strings.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use txlog_base::Atom;
use txlog_relational::codec::CodecError;

use crate::frame::{
    read_frame_blocking, read_frame_timeout, write_frame, FrameError, ReadOutcome,
    DEFAULT_MAX_FRAME_LEN,
};
use crate::proto::{ErrorCode, Request, Response, WireError, PROTOCOL_VERSION};
use txlog_engine::db::IsolationLevel;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server's bytes were not a valid frame.
    Frame(FrameError),
    /// The frame's payload was not a valid response message.
    Decode(CodecError),
    /// The server answered with a typed error.
    Server(WireError),
    /// The server answered with a response this call did not expect.
    Protocol(String),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Decode(e) => write!(f, "bad response payload: {e}"),
            ClientError::Server(e) => write!(f, "server refused: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Decode(e) => Some(e),
            ClientError::Server(e) => Some(e),
            ClientError::Protocol(_) | ClientError::Disconnected => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// What the server said about itself in the handshake.
#[derive(Clone, Debug)]
pub struct ServerInfo {
    /// The protocol version the server speaks.
    pub protocol: u32,
    /// The server's configured name.
    pub server: String,
    /// The committed head version at connection time.
    pub head_version: u64,
    /// The schema's relation names.
    pub relations: Vec<String>,
}

/// A commit acknowledgment, mirroring the engine's `Commit`.
#[derive(Clone, Copy, Debug)]
pub struct RemoteCommit {
    /// The head version the commit produced.
    pub version: u64,
    /// Conflicted attempts before the successful one.
    pub retries: u32,
    /// Whether the commit installed by delta-forwarding.
    pub forwarded: bool,
}

/// One event match pushed by the server (protocol v3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Notification {
    /// The subscription name given at [`Client::subscribe`] time.
    pub name: String,
    /// The commit version the match completed at. Per subscription,
    /// notifications arrive in non-decreasing version order.
    pub version: u64,
    /// The match's variable binding, sorted by variable name.
    pub binding: Vec<(String, Atom)>,
}

/// What [`Client::next_notification`] yields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NotificationEvent {
    /// An event match.
    Match(Notification),
    /// The named subscription overflowed the server's per-connection
    /// queue and was dropped; its queued matches were discarded. The
    /// client must re-subscribe to resume.
    Overflow {
        /// The dropped subscription's name.
        name: String,
        /// The server's queue capacity (the bound that was hit).
        capacity: u64,
    },
}

/// A connected, handshaken client.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame_len: u32,
    info: ServerInfo,
    /// Server-pushed frames that arrived while waiting for a reply;
    /// drained by [`Client::next_notification`].
    pending: VecDeque<NotificationEvent>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("server", &self.info.server)
            .field("head_version", &self.info.head_version)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connect, send the handshake, and wait for the welcome.
    pub fn connect(addr: impl ToSocketAddrs, client_name: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            buf: Vec::new(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            info: ServerInfo {
                protocol: 0,
                server: String::new(),
                head_version: 0,
                relations: Vec::new(),
            },
            pending: VecDeque::new(),
        };
        let resp = client.roundtrip(&Request::Hello {
            protocol: PROTOCOL_VERSION,
            client: client_name.to_string(),
        })?;
        match resp {
            Response::Welcome {
                protocol,
                server,
                head_version,
                relations,
            } => {
                client.info = ServerInfo {
                    protocol,
                    server,
                    head_version,
                    relations,
                };
                Ok(client)
            }
            other => Err(unexpected("Welcome", &other)),
        }
    }

    /// What the server reported in the handshake.
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// Send one request and read one response.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode(), self.max_frame_len)?;
        self.read_response()
    }

    /// Read the next *reply* without sending anything — for draining
    /// replies to pipelined requests sent with [`Client::send_raw`].
    /// Server-pushed notification frames encountered on the way are
    /// stashed for [`Client::next_notification`], never returned here.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        loop {
            let resp =
                match read_frame_blocking(&mut self.stream, &mut self.buf, self.max_frame_len)? {
                    ReadOutcome::Frame(payload) => {
                        Response::decode(&payload).map_err(ClientError::Decode)?
                    }
                    ReadOutcome::Disconnected => return Err(ClientError::Disconnected),
                    ReadOutcome::Corrupt(e) => return Err(ClientError::Frame(e)),
                    ReadOutcome::IdleTimeout | ReadOutcome::Stalled | ReadOutcome::Wake => {
                        return Err(ClientError::Protocol("blocking read timed out".to_string()))
                    }
                };
            match self.stash(resp) {
                Some(reply) => return Ok(reply),
                None => continue,
            }
        }
    }

    /// Stash a pushed frame; return replies untouched.
    fn stash(&mut self, resp: Response) -> Option<Response> {
        match resp {
            Response::Notification {
                name,
                version,
                binding,
            } => {
                self.pending
                    .push_back(NotificationEvent::Match(Notification {
                        name,
                        version,
                        binding,
                    }));
                None
            }
            Response::Error(e) if e.code == ErrorCode::SubscriptionOverflow => {
                // The overflow frame names the subscription in its
                // message and carries the queue bound in the detail.
                self.pending.push_back(NotificationEvent::Overflow {
                    name: e.message,
                    capacity: e.detail,
                });
                None
            }
            other => Some(other),
        }
    }

    /// Write raw bytes to the socket — the escape hatch the tests use
    /// to pipeline several frames in one write or to send deliberately
    /// corrupt ones.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Execute a transaction program. Outside a transaction block this
    /// commits; inside one it stages (and the result is the staged
    /// statement count, surfaced here as a zero-version commit).
    pub fn execute(&mut self, label: &str, program: &str) -> Result<RemoteCommit, ClientError> {
        let resp = self.roundtrip(&Request::Execute {
            label: label.to_string(),
            program: program.to_string(),
        })?;
        match resp {
            Response::Executed {
                version,
                retries,
                forwarded,
            } => Ok(RemoteCommit {
                version,
                retries,
                forwarded,
            }),
            Response::Staged { .. } => Ok(RemoteCommit {
                version: 0,
                retries: 0,
                forwarded: false,
            }),
            other => Err(unexpected("Executed or Staged", &other)),
        }
    }

    /// Evaluate an object-valued query; returns the rendered value.
    pub fn query(&mut self, expr: &str) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Query {
            expr: expr.to_string(),
        })? {
            Response::Value { text } => Ok(text),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Evaluate a truth-valued formula.
    pub fn ask(&mut self, formula: &str) -> Result<bool, ClientError> {
        match self.roundtrip(&Request::Ask {
            formula: formula.to_string(),
        })? {
            Response::Truth { value } => Ok(value),
            other => Err(unexpected("Truth", &other)),
        }
    }

    /// Render the evaluator's plan for a formula or program.
    pub fn explain(&mut self, target: &str, program: bool) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Explain {
            target: target.to_string(),
            program,
        })? {
            Response::Explained { text } => Ok(text),
            other => Err(unexpected("Explained", &other)),
        }
    }

    /// Open a multi-request transaction block at the server's default
    /// isolation level.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        self.begin_at(None)
    }

    /// Open a multi-request transaction block, optionally requesting an
    /// isolation level for its session (`None` keeps the server's
    /// default).
    pub fn begin_at(&mut self, isolation: Option<IsolationLevel>) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Begin { isolation })? {
            Response::Begun => Ok(()),
            other => Err(unexpected("Begun", &other)),
        }
    }

    /// Commit the open transaction block.
    pub fn commit(&mut self, label: &str) -> Result<RemoteCommit, ClientError> {
        match self.roundtrip(&Request::Commit {
            label: label.to_string(),
        })? {
            Response::Committed {
                version,
                retries,
                forwarded,
            } => Ok(RemoteCommit {
                version,
                retries,
                forwarded,
            }),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Abort the open transaction block; returns how many staged
    /// statements were discarded.
    pub fn abort(&mut self) -> Result<u32, ClientError> {
        match self.roundtrip(&Request::Abort)? {
            Response::Aborted { discarded } => Ok(discarded),
            other => Err(unexpected("Aborted", &other)),
        }
    }

    /// Render the connection's current view of the database.
    pub fn show_state(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::ShowState)? {
            Response::State { text } => Ok(text),
            other => Err(unexpected("State", &other)),
        }
    }

    /// The server's metrics snapshot as JSON.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Ask the server to drain and shut down.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Register an event-pattern subscription (protocol v3). Matches
    /// from every later commit arrive as pushed frames; collect them
    /// with [`Client::next_notification`].
    pub fn subscribe(&mut self, name: &str, pattern: &str) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Subscribe {
            name: name.to_string(),
            pattern: pattern.to_string(),
        })? {
            Response::Subscribed { .. } => Ok(()),
            other => Err(unexpected("Subscribed", &other)),
        }
    }

    /// Drop a subscription by name. Matches already pushed (or already
    /// queued server-side) may still arrive afterwards.
    pub fn unsubscribe(&mut self, name: &str) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Unsubscribe {
            name: name.to_string(),
        })? {
            Response::Unsubscribed { .. } => Ok(()),
            other => Err(unexpected("Unsubscribed", &other)),
        }
    }

    /// The next pushed notification event: one already stashed while
    /// reading replies, or one read off the socket within `timeout`.
    /// `Ok(None)` means the timeout elapsed with nothing pushed.
    pub fn next_notification(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<NotificationEvent>, ClientError> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Ok(Some(ev));
            }
            let outcome = read_frame_timeout(
                &self.stream,
                &mut self.buf,
                timeout,
                timeout,
                self.max_frame_len,
                &|| false,
                &|| false,
            )
            .map_err(ClientError::Io)?;
            let resp = match outcome {
                ReadOutcome::Frame(payload) => {
                    Response::decode(&payload).map_err(ClientError::Decode)?
                }
                ReadOutcome::IdleTimeout | ReadOutcome::Stalled | ReadOutcome::Wake => {
                    return Ok(None)
                }
                ReadOutcome::Disconnected => return Err(ClientError::Disconnected),
                ReadOutcome::Corrupt(e) => return Err(ClientError::Frame(e)),
            };
            if let Some(reply) = self.stash(resp) {
                // A non-pushed frame with no request outstanding — a
                // drain Goodbye is expected protocol, anything else is
                // the server talking out of turn.
                return match reply {
                    Response::Goodbye { .. } => Err(ClientError::Disconnected),
                    other => Err(unexpected("Notification", &other)),
                };
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error(e) => ClientError::Server(e.clone()),
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
