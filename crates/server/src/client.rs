//! A blocking client for the wire protocol.
//!
//! [`Client::connect`] performs the handshake and returns a handle
//! whose methods map one-to-one onto [`Request`] variants, each
//! blocking until the matching [`Response`] arrives. Server-reported
//! failures surface as [`ClientError::Server`] carrying the typed
//! [`WireError`], so callers can distinguish a constraint violation
//! from an overload without parsing strings.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use txlog_relational::codec::CodecError;

use crate::frame::{
    read_frame_blocking, write_frame, FrameError, ReadOutcome, DEFAULT_MAX_FRAME_LEN,
};
use crate::proto::{Request, Response, WireError, PROTOCOL_VERSION};
use txlog_engine::db::IsolationLevel;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server's bytes were not a valid frame.
    Frame(FrameError),
    /// The frame's payload was not a valid response message.
    Decode(CodecError),
    /// The server answered with a typed error.
    Server(WireError),
    /// The server answered with a response this call did not expect.
    Protocol(String),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Decode(e) => write!(f, "bad response payload: {e}"),
            ClientError::Server(e) => write!(f, "server refused: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Decode(e) => Some(e),
            ClientError::Server(e) => Some(e),
            ClientError::Protocol(_) | ClientError::Disconnected => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// What the server said about itself in the handshake.
#[derive(Clone, Debug)]
pub struct ServerInfo {
    /// The protocol version the server speaks.
    pub protocol: u32,
    /// The server's configured name.
    pub server: String,
    /// The committed head version at connection time.
    pub head_version: u64,
    /// The schema's relation names.
    pub relations: Vec<String>,
}

/// A commit acknowledgment, mirroring the engine's `Commit`.
#[derive(Clone, Copy, Debug)]
pub struct RemoteCommit {
    /// The head version the commit produced.
    pub version: u64,
    /// Conflicted attempts before the successful one.
    pub retries: u32,
    /// Whether the commit installed by delta-forwarding.
    pub forwarded: bool,
}

/// A connected, handshaken client.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame_len: u32,
    info: ServerInfo,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("server", &self.info.server)
            .field("head_version", &self.info.head_version)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connect, send the handshake, and wait for the welcome.
    pub fn connect(addr: impl ToSocketAddrs, client_name: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            buf: Vec::new(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            info: ServerInfo {
                protocol: 0,
                server: String::new(),
                head_version: 0,
                relations: Vec::new(),
            },
        };
        let resp = client.roundtrip(&Request::Hello {
            protocol: PROTOCOL_VERSION,
            client: client_name.to_string(),
        })?;
        match resp {
            Response::Welcome {
                protocol,
                server,
                head_version,
                relations,
            } => {
                client.info = ServerInfo {
                    protocol,
                    server,
                    head_version,
                    relations,
                };
                Ok(client)
            }
            other => Err(unexpected("Welcome", &other)),
        }
    }

    /// What the server reported in the handshake.
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// Send one request and read one response.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode(), self.max_frame_len)?;
        self.read_response()
    }

    /// Read the next response without sending anything — for draining
    /// replies to pipelined requests sent with [`Client::send_raw`].
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame_blocking(&mut self.stream, &mut self.buf, self.max_frame_len)? {
            ReadOutcome::Frame(payload) => Response::decode(&payload).map_err(ClientError::Decode),
            ReadOutcome::Disconnected => Err(ClientError::Disconnected),
            ReadOutcome::Corrupt(e) => Err(ClientError::Frame(e)),
            ReadOutcome::IdleTimeout | ReadOutcome::Stalled => {
                Err(ClientError::Protocol("blocking read timed out".to_string()))
            }
        }
    }

    /// Write raw bytes to the socket — the escape hatch the tests use
    /// to pipeline several frames in one write or to send deliberately
    /// corrupt ones.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Execute a transaction program. Outside a transaction block this
    /// commits; inside one it stages (and the result is the staged
    /// statement count, surfaced here as a zero-version commit).
    pub fn execute(&mut self, label: &str, program: &str) -> Result<RemoteCommit, ClientError> {
        let resp = self.roundtrip(&Request::Execute {
            label: label.to_string(),
            program: program.to_string(),
        })?;
        match resp {
            Response::Executed {
                version,
                retries,
                forwarded,
            } => Ok(RemoteCommit {
                version,
                retries,
                forwarded,
            }),
            Response::Staged { .. } => Ok(RemoteCommit {
                version: 0,
                retries: 0,
                forwarded: false,
            }),
            other => Err(unexpected("Executed or Staged", &other)),
        }
    }

    /// Evaluate an object-valued query; returns the rendered value.
    pub fn query(&mut self, expr: &str) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Query {
            expr: expr.to_string(),
        })? {
            Response::Value { text } => Ok(text),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Evaluate a truth-valued formula.
    pub fn ask(&mut self, formula: &str) -> Result<bool, ClientError> {
        match self.roundtrip(&Request::Ask {
            formula: formula.to_string(),
        })? {
            Response::Truth { value } => Ok(value),
            other => Err(unexpected("Truth", &other)),
        }
    }

    /// Render the evaluator's plan for a formula or program.
    pub fn explain(&mut self, target: &str, program: bool) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Explain {
            target: target.to_string(),
            program,
        })? {
            Response::Explained { text } => Ok(text),
            other => Err(unexpected("Explained", &other)),
        }
    }

    /// Open a multi-request transaction block at the server's default
    /// isolation level.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        self.begin_at(None)
    }

    /// Open a multi-request transaction block, optionally requesting an
    /// isolation level for its session (`None` keeps the server's
    /// default).
    pub fn begin_at(&mut self, isolation: Option<IsolationLevel>) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Begin { isolation })? {
            Response::Begun => Ok(()),
            other => Err(unexpected("Begun", &other)),
        }
    }

    /// Commit the open transaction block.
    pub fn commit(&mut self, label: &str) -> Result<RemoteCommit, ClientError> {
        match self.roundtrip(&Request::Commit {
            label: label.to_string(),
        })? {
            Response::Committed {
                version,
                retries,
                forwarded,
            } => Ok(RemoteCommit {
                version,
                retries,
                forwarded,
            }),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Abort the open transaction block; returns how many staged
    /// statements were discarded.
    pub fn abort(&mut self) -> Result<u32, ClientError> {
        match self.roundtrip(&Request::Abort)? {
            Response::Aborted { discarded } => Ok(discarded),
            other => Err(unexpected("Aborted", &other)),
        }
    }

    /// Render the connection's current view of the database.
    pub fn show_state(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::ShowState)? {
            Response::State { text } => Ok(text),
            other => Err(unexpected("State", &other)),
        }
    }

    /// The server's metrics snapshot as JSON.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Ask the server to drain and shut down.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    match got {
        Response::Error(e) => ClientError::Server(e.clone()),
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
