//! Typed request/response messages and the wire error vocabulary.
//!
//! Payloads are encoded with the same canonical little-endian codec the
//! durability layer uses ([`txlog_relational::codec`]): one message-tag
//! byte, then the fields in order, strings length-prefixed. Decoding is
//! total — any byte sequence yields either a message or a typed
//! [`CodecError`], never a panic — and [`Decoder::finish`] rejects
//! trailing bytes, so a frame is exactly one message.
//!
//! The error vocabulary ([`ErrorCode`]) is deliberately wider than
//! `CommitError`: it also names the failures that only exist at the
//! wire (handshake problems, undecodable payloads, admission-control
//! rejections, a draining server). The mapping from [`CommitError`] is
//! lossless: each variant gets its own code, and the variant's numeric
//! payload (head version raced against, attempts spent, queue capacity)
//! rides in [`WireError::detail`].

use txlog_base::Atom;
use txlog_engine::db::{CommitError, IsolationLevel};
use txlog_relational::codec::{CodecError, Decoder, Encoder};

/// The protocol version this build speaks. Version 2 added the
/// optional isolation field on [`Request::Begin`] and the
/// [`ErrorCode::SerializationFailure`] code. Version 3 adds event
/// subscriptions: [`Request::Subscribe`]/[`Request::Unsubscribe`], the
/// [`Response::Subscribed`]/[`Response::Unsubscribed`] acknowledgements,
/// the server-pushed [`Response::Notification`] frame, and the
/// [`ErrorCode::SubscriptionOverflow`] code. All are strict extensions,
/// so the server still serves [`MIN_PROTOCOL_VERSION`] clients (their
/// `Begin` frames simply carry no level and default to Snapshot, and
/// they never see a pushed frame because they cannot subscribe). A
/// [`Request::Hello`] outside the supported range is refused with
/// [`ErrorCode::Protocol`] — the handshake is how both sides find out
/// before any state changes hands.
pub const PROTOCOL_VERSION: u32 = 3;

/// The oldest protocol version the server still accepts.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Wire encoding of an isolation level (one byte, stable).
fn isolation_to_u8(level: IsolationLevel) -> u8 {
    match level {
        IsolationLevel::ReadCommitted => 0,
        IsolationLevel::Snapshot => 1,
        IsolationLevel::Serializable => 2,
    }
}

fn isolation_from_u8(b: u8) -> Option<IsolationLevel> {
    Some(match b {
        0 => IsolationLevel::ReadCommitted,
        1 => IsolationLevel::Snapshot,
        2 => IsolationLevel::Serializable,
        _ => return None,
    })
}

// Request tags.
const REQ_HELLO: u8 = 0;
const REQ_EXECUTE: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_ASK: u8 = 3;
const REQ_EXPLAIN: u8 = 4;
const REQ_BEGIN: u8 = 5;
const REQ_COMMIT: u8 = 6;
const REQ_ABORT: u8 = 7;
const REQ_SHOW_STATE: u8 = 8;
const REQ_METRICS: u8 = 9;
const REQ_SHUTDOWN: u8 = 10;
const REQ_SUBSCRIBE: u8 = 11;
const REQ_UNSUBSCRIBE: u8 = 12;

// Response tags.
const RESP_WELCOME: u8 = 0;
const RESP_EXECUTED: u8 = 1;
const RESP_STAGED: u8 = 2;
const RESP_VALUE: u8 = 3;
const RESP_TRUTH: u8 = 4;
const RESP_EXPLAINED: u8 = 5;
const RESP_STATE: u8 = 6;
const RESP_METRICS: u8 = 7;
const RESP_BEGUN: u8 = 8;
const RESP_COMMITTED: u8 = 9;
const RESP_ABORTED: u8 = 10;
const RESP_SHUTTING_DOWN: u8 = 11;
const RESP_GOODBYE: u8 = 12;
const RESP_ERROR: u8 = 13;
const RESP_SUBSCRIBED: u8 = 14;
const RESP_UNSUBSCRIBED: u8 = 15;
const RESP_NOTIFICATION: u8 = 16;

/// A client-to-server message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// The handshake, required as the first frame on every connection.
    Hello {
        /// The protocol version the client speaks ([`PROTOCOL_VERSION`]).
        protocol: u32,
        /// Client name, for diagnostics.
        client: String,
    },
    /// Execute a transaction program (source text, parsed server-side).
    /// Outside a [`Request::Begin`] block the program commits
    /// immediately; inside one it is staged onto the open transaction.
    Execute {
        /// Commit label recorded in the history and the WAL.
        label: String,
        /// The f-term source.
        program: String,
    },
    /// Evaluate an object-valued query at the current view.
    Query {
        /// The f-term source.
        expr: String,
    },
    /// Evaluate a truth-valued formula at the current view.
    Ask {
        /// The f-formula source.
        formula: String,
    },
    /// Render the evaluator's plan for a formula or a program.
    Explain {
        /// The source text.
        target: String,
        /// True to explain a transaction program, false a formula.
        program: bool,
    },
    /// Open a multi-request transaction: subsequent `Execute`s stage
    /// instead of committing, until `Commit` or `Abort`.
    Begin {
        /// Isolation level for the block's session. `None` (and every
        /// protocol-v1 frame, which has no field to carry one) means
        /// the server's default — Snapshot.
        isolation: Option<IsolationLevel>,
    },
    /// Commit the staged statements as one transaction.
    Commit {
        /// Commit label for the composed transaction.
        label: String,
    },
    /// Discard the staged statements.
    Abort,
    /// Render the connection's current view of the database state.
    ShowState,
    /// A JSON snapshot of the server's metrics registry.
    Metrics,
    /// Ask the server to drain and shut down gracefully.
    Shutdown,
    /// Register an event-pattern subscription (protocol v3). Matches
    /// arrive as server-pushed [`Response::Notification`] frames,
    /// version-ordered, interleaved with this connection's replies.
    Subscribe {
        /// Subscription name, unique per connection; also the
        /// database-side pattern registry name (prefixed per
        /// connection), echoed on every notification.
        name: String,
        /// The pattern in text form (see the events crate's grammar,
        /// e.g. `seq(delete(EMP, N, _), insert(EMP, N, _))`).
        pattern: String,
    },
    /// Drop a subscription by name (protocol v3). Frames already
    /// queued may still arrive before the acknowledgement.
    Unsubscribe {
        /// The name given at [`Request::Subscribe`] time.
        name: String,
    },
}

/// A server-to-client message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// Successful handshake.
    Welcome {
        /// The protocol version the server speaks.
        protocol: u32,
        /// Server name, for diagnostics.
        server: String,
        /// The committed head version at connection time.
        head_version: u64,
        /// The schema's relation names, oldest declaration first.
        relations: Vec<String>,
    },
    /// An autocommit `Execute` installed.
    Executed {
        /// The head version the commit produced.
        version: u64,
        /// Conflicted attempts before the successful one.
        retries: u32,
        /// Whether the commit installed by delta-forwarding.
        forwarded: bool,
    },
    /// An `Execute` inside a `Begin` block staged.
    Staged {
        /// Statements staged so far in the open transaction.
        statements: u32,
    },
    /// A query result, rendered.
    Value {
        /// The rendered value.
        text: String,
    },
    /// A truth verdict.
    Truth {
        /// The verdict.
        value: bool,
    },
    /// An explain tree, rendered.
    Explained {
        /// The rendered tree.
        text: String,
    },
    /// The connection's current state view, rendered.
    State {
        /// The rendered state.
        text: String,
    },
    /// The metrics snapshot.
    Metrics {
        /// Counters-and-histograms JSON (deterministic form).
        json: String,
    },
    /// A transaction block is open.
    Begun,
    /// The staged transaction committed.
    Committed {
        /// The head version the commit produced.
        version: u64,
        /// Conflicted attempts before the successful one.
        retries: u32,
        /// Whether the commit installed by delta-forwarding.
        forwarded: bool,
    },
    /// The staged transaction was discarded.
    Aborted {
        /// How many staged statements were discarded.
        discarded: u32,
    },
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown,
    /// The server is closing this connection cleanly.
    Goodbye {
        /// Why (idle timeout, server drain, …).
        reason: String,
    },
    /// The request failed; the connection stays usable unless the
    /// error says otherwise.
    Error(WireError),
    /// A subscription is registered (protocol v3).
    Subscribed {
        /// The subscription name, echoed.
        name: String,
    },
    /// A subscription was dropped (protocol v3).
    Unsubscribed {
        /// The subscription name, echoed.
        name: String,
    },
    /// A server-pushed event match (protocol v3). Not a reply: it may
    /// arrive between a request and its response, and clients must
    /// stash it (see `Client::next_notification`). Per subscription,
    /// notifications arrive in non-decreasing `version` order.
    Notification {
        /// The subscription name given at subscribe time.
        name: String,
        /// The commit version the match completed at.
        version: u64,
        /// The match's variable binding, sorted by variable name.
        binding: Vec<(String, Atom)>,
    },
}

/// Machine-readable failure categories carried on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ErrorCode {
    /// Handshake violation: missing/duplicate Hello, version mismatch.
    Protocol = 0,
    /// The frame or payload could not be decoded.
    Decode = 1,
    /// The request's source text did not parse.
    Parse = 2,
    /// The transaction or query failed to evaluate.
    Execution = 3,
    /// A registered constraint rejected the commit; the message names
    /// the constraint.
    ConstraintViolation = 4,
    /// The commit raced a conflicting commit; `detail` is the head
    /// version it raced against.
    Conflict = 5,
    /// Every retry permitted by the server's policy conflicted;
    /// `detail` is the attempts spent.
    RetriesExhausted = 6,
    /// The commit pipeline's log submission queue was full; `detail`
    /// is the queue capacity. Back off and retry.
    Overload = 7,
    /// Admission control refused the connection; `detail` is the
    /// connection cap.
    TooManyConnections = 8,
    /// The write-ahead log could not persist the commit.
    Durability = 9,
    /// The server is draining and no longer takes requests.
    Unavailable = 10,
    /// The request contradicts the session state (e.g. `Commit`
    /// without `Begin`).
    BadState = 11,
    /// A serializable commit's read-set certification failed; `detail`
    /// is the head version whose concurrent deltas intersected the
    /// session's reads. The transaction must be re-run from scratch.
    SerializationFailure = 12,
    /// The connection's notification queue overflowed: the subscription
    /// named in the message was dropped (its pending frames discarded)
    /// because the client was not draining pushed frames fast enough.
    /// `detail` is the queue capacity. Re-subscribe to resume; matches
    /// already materialized can be recovered by querying the pattern's
    /// history relation.
    SubscriptionOverflow = 13,
}

impl ErrorCode {
    /// Decode a wire byte back into a code (`None` for bytes outside
    /// the vocabulary).
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            0 => ErrorCode::Protocol,
            1 => ErrorCode::Decode,
            2 => ErrorCode::Parse,
            3 => ErrorCode::Execution,
            4 => ErrorCode::ConstraintViolation,
            5 => ErrorCode::Conflict,
            6 => ErrorCode::RetriesExhausted,
            7 => ErrorCode::Overload,
            8 => ErrorCode::TooManyConnections,
            9 => ErrorCode::Durability,
            10 => ErrorCode::Unavailable,
            11 => ErrorCode::BadState,
            12 => ErrorCode::SerializationFailure,
            13 => ErrorCode::SubscriptionOverflow,
            _ => return None,
        })
    }

    /// Stable name, used in rendered errors.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Decode => "decode",
            ErrorCode::Parse => "parse",
            ErrorCode::Execution => "execution",
            ErrorCode::ConstraintViolation => "constraint-violation",
            ErrorCode::Conflict => "conflict",
            ErrorCode::RetriesExhausted => "retries-exhausted",
            ErrorCode::Overload => "overload",
            ErrorCode::TooManyConnections => "too-many-connections",
            ErrorCode::Durability => "durability",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::BadState => "bad-state",
            ErrorCode::SerializationFailure => "serialization-failure",
            ErrorCode::SubscriptionOverflow => "subscription-overflow",
        }
    }
}

/// A typed error as it travels on the wire: a category, a human
/// message, and one numeric detail whose meaning the category fixes
/// (see [`ErrorCode`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError {
    /// The failure category.
    pub code: ErrorCode,
    /// Human-readable description (for `ConstraintViolation`, exactly
    /// the constraint name).
    pub message: String,
    /// Category-specific numeric payload (0 when the category has
    /// none).
    pub detail: u64,
}

impl WireError {
    /// A wire error with no numeric detail.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            detail: 0,
        }
    }

    /// Attach the category's numeric payload.
    pub fn with_detail(mut self, detail: u64) -> WireError {
        self.detail = detail;
        self
    }

    /// The lossless mapping from the commit pipeline's error surface:
    /// every [`CommitError`] variant gets a distinct [`ErrorCode`], and
    /// the variant's numeric field rides in `detail`.
    pub fn from_commit(e: &CommitError) -> WireError {
        match e {
            CommitError::Conflict { head_version } => {
                WireError::new(ErrorCode::Conflict, e.to_string()).with_detail(*head_version)
            }
            CommitError::ConstraintViolation { constraint } => {
                WireError::new(ErrorCode::ConstraintViolation, constraint.clone())
            }
            CommitError::RetriesExhausted { attempts } => {
                WireError::new(ErrorCode::RetriesExhausted, e.to_string())
                    .with_detail(u64::from(*attempts))
            }
            CommitError::Execution(inner) => {
                WireError::new(ErrorCode::Execution, inner.to_string())
            }
            CommitError::Overload { capacity } => {
                WireError::new(ErrorCode::Overload, e.to_string()).with_detail(*capacity as u64)
            }
            CommitError::Durability(inner) => {
                WireError::new(ErrorCode::Durability, inner.to_string())
            }
            CommitError::SerializationFailure { head_version } => {
                WireError::new(ErrorCode::SerializationFailure, e.to_string())
                    .with_detail(*head_version)
            }
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} error: {}", self.code.name(), self.message)?;
        if self.detail != 0 {
            write!(f, " (detail {})", self.detail)?;
        }
        Ok(())
    }
}

impl std::error::Error for WireError {}

fn enc_str_vec(e: &mut Encoder, v: &[String]) {
    e.u32(u32::try_from(v.len()).unwrap_or(u32::MAX));
    for s in v {
        e.str(s);
    }
}

fn dec_str_vec(d: &mut Decoder<'_>) -> Result<Vec<String>, CodecError> {
    let n = d.u32("string count")?;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(d.str("string item")?.to_string());
    }
    Ok(out)
}

fn dec_bool(d: &mut Decoder<'_>, what: &'static str) -> Result<bool, CodecError> {
    Ok(d.u8(what)? != 0)
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Request::Hello { protocol, client } => {
                e.u8(REQ_HELLO);
                e.u32(*protocol);
                e.str(client);
            }
            Request::Execute { label, program } => {
                e.u8(REQ_EXECUTE);
                e.str(label);
                e.str(program);
            }
            Request::Query { expr } => {
                e.u8(REQ_QUERY);
                e.str(expr);
            }
            Request::Ask { formula } => {
                e.u8(REQ_ASK);
                e.str(formula);
            }
            Request::Explain { target, program } => {
                e.u8(REQ_EXPLAIN);
                e.str(target);
                e.u8(u8::from(*program));
            }
            Request::Begin { isolation } => {
                e.u8(REQ_BEGIN);
                // v1 compatibility: the field is trailing and optional —
                // a bare tag is a Begin at the server default
                if let Some(level) = isolation {
                    e.u8(isolation_to_u8(*level));
                }
            }
            Request::Commit { label } => {
                e.u8(REQ_COMMIT);
                e.str(label);
            }
            Request::Abort => e.u8(REQ_ABORT),
            Request::ShowState => e.u8(REQ_SHOW_STATE),
            Request::Metrics => e.u8(REQ_METRICS),
            Request::Shutdown => e.u8(REQ_SHUTDOWN),
            Request::Subscribe { name, pattern } => {
                e.u8(REQ_SUBSCRIBE);
                e.str(name);
                e.str(pattern);
            }
            Request::Unsubscribe { name } => {
                e.u8(REQ_UNSUBSCRIBE);
                e.str(name);
            }
        }
        e.finish()
    }

    /// Decode a frame payload. Total: typed errors, no panics, no
    /// trailing bytes accepted.
    pub fn decode(payload: &[u8]) -> Result<Request, CodecError> {
        let mut d = Decoder::new(payload);
        let tag = d.u8("request tag")?;
        let req = match tag {
            REQ_HELLO => Request::Hello {
                protocol: d.u32("hello protocol")?,
                client: d.str("hello client")?.to_string(),
            },
            REQ_EXECUTE => Request::Execute {
                label: d.str("execute label")?.to_string(),
                program: d.str("execute program")?.to_string(),
            },
            REQ_QUERY => Request::Query {
                expr: d.str("query expr")?.to_string(),
            },
            REQ_ASK => Request::Ask {
                formula: d.str("ask formula")?.to_string(),
            },
            REQ_EXPLAIN => Request::Explain {
                target: d.str("explain target")?.to_string(),
                program: dec_bool(&mut d, "explain kind")?,
            },
            REQ_BEGIN => Request::Begin {
                isolation: if d.is_empty() {
                    None
                } else {
                    let b = d.u8("begin isolation")?;
                    Some(isolation_from_u8(b).ok_or(CodecError::BadTag {
                        offset: 1,
                        tag: b,
                        what: "begin isolation",
                    })?)
                },
            },
            REQ_COMMIT => Request::Commit {
                label: d.str("commit label")?.to_string(),
            },
            REQ_ABORT => Request::Abort,
            REQ_SHOW_STATE => Request::ShowState,
            REQ_METRICS => Request::Metrics,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_SUBSCRIBE => Request::Subscribe {
                name: d.str("subscribe name")?.to_string(),
                pattern: d.str("subscribe pattern")?.to_string(),
            },
            REQ_UNSUBSCRIBE => Request::Unsubscribe {
                name: d.str("unsubscribe name")?.to_string(),
            },
            other => {
                return Err(CodecError::BadTag {
                    offset: 0,
                    tag: other,
                    what: "request tag",
                })
            }
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Response::Welcome {
                protocol,
                server,
                head_version,
                relations,
            } => {
                e.u8(RESP_WELCOME);
                e.u32(*protocol);
                e.str(server);
                e.u64(*head_version);
                enc_str_vec(&mut e, relations);
            }
            Response::Executed {
                version,
                retries,
                forwarded,
            } => {
                e.u8(RESP_EXECUTED);
                e.u64(*version);
                e.u32(*retries);
                e.u8(u8::from(*forwarded));
            }
            Response::Staged { statements } => {
                e.u8(RESP_STAGED);
                e.u32(*statements);
            }
            Response::Value { text } => {
                e.u8(RESP_VALUE);
                e.str(text);
            }
            Response::Truth { value } => {
                e.u8(RESP_TRUTH);
                e.u8(u8::from(*value));
            }
            Response::Explained { text } => {
                e.u8(RESP_EXPLAINED);
                e.str(text);
            }
            Response::State { text } => {
                e.u8(RESP_STATE);
                e.str(text);
            }
            Response::Metrics { json } => {
                e.u8(RESP_METRICS);
                e.str(json);
            }
            Response::Begun => e.u8(RESP_BEGUN),
            Response::Committed {
                version,
                retries,
                forwarded,
            } => {
                e.u8(RESP_COMMITTED);
                e.u64(*version);
                e.u32(*retries);
                e.u8(u8::from(*forwarded));
            }
            Response::Aborted { discarded } => {
                e.u8(RESP_ABORTED);
                e.u32(*discarded);
            }
            Response::ShuttingDown => e.u8(RESP_SHUTTING_DOWN),
            Response::Goodbye { reason } => {
                e.u8(RESP_GOODBYE);
                e.str(reason);
            }
            Response::Error(err) => {
                e.u8(RESP_ERROR);
                e.u8(err.code as u8);
                e.str(&err.message);
                e.u64(err.detail);
            }
            Response::Subscribed { name } => {
                e.u8(RESP_SUBSCRIBED);
                e.str(name);
            }
            Response::Unsubscribed { name } => {
                e.u8(RESP_UNSUBSCRIBED);
                e.str(name);
            }
            Response::Notification {
                name,
                version,
                binding,
            } => {
                e.u8(RESP_NOTIFICATION);
                e.str(name);
                e.u64(*version);
                e.u32(u32::try_from(binding.len()).unwrap_or(u32::MAX));
                for (var, atom) in binding {
                    e.str(var);
                    e.atom(*atom);
                }
            }
        }
        e.finish()
    }

    /// Decode a frame payload. Total: typed errors, no panics, no
    /// trailing bytes accepted.
    pub fn decode(payload: &[u8]) -> Result<Response, CodecError> {
        let mut d = Decoder::new(payload);
        let tag = d.u8("response tag")?;
        let resp = match tag {
            RESP_WELCOME => Response::Welcome {
                protocol: d.u32("welcome protocol")?,
                server: d.str("welcome server")?.to_string(),
                head_version: d.u64("welcome head version")?,
                relations: dec_str_vec(&mut d)?,
            },
            RESP_EXECUTED => Response::Executed {
                version: d.u64("executed version")?,
                retries: d.u32("executed retries")?,
                forwarded: dec_bool(&mut d, "executed forwarded")?,
            },
            RESP_STAGED => Response::Staged {
                statements: d.u32("staged count")?,
            },
            RESP_VALUE => Response::Value {
                text: d.str("value text")?.to_string(),
            },
            RESP_TRUTH => Response::Truth {
                value: dec_bool(&mut d, "truth value")?,
            },
            RESP_EXPLAINED => Response::Explained {
                text: d.str("explained text")?.to_string(),
            },
            RESP_STATE => Response::State {
                text: d.str("state text")?.to_string(),
            },
            RESP_METRICS => Response::Metrics {
                json: d.str("metrics json")?.to_string(),
            },
            RESP_BEGUN => Response::Begun,
            RESP_COMMITTED => Response::Committed {
                version: d.u64("committed version")?,
                retries: d.u32("committed retries")?,
                forwarded: dec_bool(&mut d, "committed forwarded")?,
            },
            RESP_ABORTED => Response::Aborted {
                discarded: d.u32("aborted count")?,
            },
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_GOODBYE => Response::Goodbye {
                reason: d.str("goodbye reason")?.to_string(),
            },
            RESP_ERROR => {
                let code_byte = d.u8("error code")?;
                let code = ErrorCode::from_u8(code_byte).ok_or(CodecError::BadTag {
                    offset: 1,
                    tag: code_byte,
                    what: "error code",
                })?;
                Response::Error(WireError {
                    code,
                    message: d.str("error message")?.to_string(),
                    detail: d.u64("error detail")?,
                })
            }
            RESP_SUBSCRIBED => Response::Subscribed {
                name: d.str("subscribed name")?.to_string(),
            },
            RESP_UNSUBSCRIBED => Response::Unsubscribed {
                name: d.str("unsubscribed name")?.to_string(),
            },
            RESP_NOTIFICATION => {
                let name = d.str("notification name")?.to_string();
                let version = d.u64("notification version")?;
                let n = d.u32("notification binding count")?;
                let mut binding = Vec::new();
                for _ in 0..n {
                    let var = d.str("notification variable")?.to_string();
                    let atom = d.atom()?;
                    binding.push((var, atom));
                }
                Response::Notification {
                    name,
                    version,
                    binding,
                }
            }
            other => {
                return Err(CodecError::BadTag {
                    offset: 0,
                    tag: other,
                    what: "response tag",
                })
            }
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txlog_base::TxError;
    use txlog_engine::wal::WalError;

    fn requests() -> Vec<Request> {
        vec![
            Request::Hello {
                protocol: PROTOCOL_VERSION,
                client: "t".to_string(),
            },
            Request::Execute {
                label: "hire".to_string(),
                program: "insert(tuple('ann', 500), EMP)".to_string(),
            },
            Request::Query {
                expr: "EMP".to_string(),
            },
            Request::Ask {
                formula: "exists e: 2tup . e in EMP".to_string(),
            },
            Request::Explain {
                target: "forall e: 2tup . e in EMP -> salary(e) > 0".to_string(),
                program: false,
            },
            Request::Begin { isolation: None },
            Request::Begin {
                isolation: Some(IsolationLevel::Serializable),
            },
            Request::Begin {
                isolation: Some(IsolationLevel::ReadCommitted),
            },
            Request::Commit {
                label: "batch".to_string(),
            },
            Request::Abort,
            Request::ShowState,
            Request::Metrics,
            Request::Shutdown,
            Request::Subscribe {
                name: "fires".to_string(),
                pattern: "delete(EMP, N, _, _, _, _)".to_string(),
            },
            Request::Unsubscribe {
                name: "fires".to_string(),
            },
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Welcome {
                protocol: PROTOCOL_VERSION,
                server: "s".to_string(),
                head_version: 9,
                relations: vec!["EMP".to_string(), "DEPT".to_string()],
            },
            Response::Executed {
                version: 3,
                retries: 1,
                forwarded: true,
            },
            Response::Staged { statements: 2 },
            Response::Value {
                text: "{(ann, 500)}".to_string(),
            },
            Response::Truth { value: true },
            Response::Explained {
                text: "probe EMP".to_string(),
            },
            Response::State {
                text: "EMP: 1 tuple".to_string(),
            },
            Response::Metrics {
                json: "{\"counters\":{}}".to_string(),
            },
            Response::Begun,
            Response::Committed {
                version: 4,
                retries: 0,
                forwarded: false,
            },
            Response::Aborted { discarded: 2 },
            Response::ShuttingDown,
            Response::Goodbye {
                reason: "idle".to_string(),
            },
            Response::Error(WireError::new(ErrorCode::Overload, "queue full").with_detail(8)),
            Response::Subscribed {
                name: "fires".to_string(),
            },
            Response::Unsubscribed {
                name: "fires".to_string(),
            },
            Response::Notification {
                name: "fires".to_string(),
                version: 12,
                binding: vec![
                    ("N".to_string(), Atom::str("ann")),
                    ("S".to_string(), Atom::nat(500)),
                ],
            },
            Response::Notification {
                name: "empty".to_string(),
                version: 1,
                binding: Vec::new(),
            },
            Response::Error(
                WireError::new(ErrorCode::SubscriptionOverflow, "fires").with_detail(256),
            ),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).expect("decodes"), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).expect("decodes"), resp);
        }
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        assert!(matches!(
            Request::decode(&[0xEE]),
            Err(CodecError::BadTag { .. })
        ));
        assert!(matches!(
            Response::decode(&[0xEE]),
            Err(CodecError::BadTag { .. })
        ));
        // a valid error response with an unknown code byte
        let mut e = Encoder::new();
        e.u8(RESP_ERROR);
        e.u8(0xEE);
        e.str("x");
        e.u64(0);
        assert!(matches!(
            Response::decode(&e.finish()),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Abort.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(CodecError::Trailing { .. })
        ));
        // Begin takes at most one trailing isolation byte, never two
        let mut bytes = Request::Begin {
            isolation: Some(IsolationLevel::Snapshot),
        }
        .encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(CodecError::Trailing { .. })
        ));
    }

    /// A protocol-v1 `Begin` is a bare tag; it must decode as "no
    /// level requested" so old clients keep their snapshot sessions.
    #[test]
    fn v1_begin_decodes_without_isolation() {
        assert_eq!(
            Request::decode(&[REQ_BEGIN]).expect("bare begin decodes"),
            Request::Begin { isolation: None }
        );
        // and an unknown level byte is a typed decode error
        assert!(matches!(
            Request::decode(&[REQ_BEGIN, 9]),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn isolation_levels_round_trip_on_the_wire() {
        for level in IsolationLevel::ALL {
            let req = Request::Begin {
                isolation: Some(level),
            };
            assert_eq!(Request::decode(&req.encode()).expect("decodes"), req);
        }
    }

    /// Every `CommitError` variant maps to a distinct wire code and
    /// keeps its numeric payload — the lossless-mapping contract.
    #[test]
    fn commit_error_mapping_is_lossless_per_variant() {
        let conflict = WireError::from_commit(&CommitError::Conflict { head_version: 42 });
        assert_eq!(conflict.code, ErrorCode::Conflict);
        assert_eq!(conflict.detail, 42);

        let violated = WireError::from_commit(&CommitError::ConstraintViolation {
            constraint: "salary-cap".to_string(),
        });
        assert_eq!(violated.code, ErrorCode::ConstraintViolation);
        assert_eq!(violated.message, "salary-cap");

        let exhausted = WireError::from_commit(&CommitError::RetriesExhausted { attempts: 9 });
        assert_eq!(exhausted.code, ErrorCode::RetriesExhausted);
        assert_eq!(exhausted.detail, 9);

        let execution = WireError::from_commit(&CommitError::Execution(TxError::eval("div0")));
        assert_eq!(execution.code, ErrorCode::Execution);
        assert!(execution.message.contains("div0"));

        let overload = WireError::from_commit(&CommitError::Overload { capacity: 1024 });
        assert_eq!(overload.code, ErrorCode::Overload);
        assert_eq!(overload.detail, 1024);

        let durability = WireError::from_commit(&CommitError::Durability(WalError::Poisoned {
            detail: "fsync failed".to_string(),
        }));
        assert_eq!(durability.code, ErrorCode::Durability);
        assert!(durability.message.contains("fsync failed"));

        let serialization =
            WireError::from_commit(&CommitError::SerializationFailure { head_version: 17 });
        assert_eq!(serialization.code, ErrorCode::SerializationFailure);
        assert_eq!(serialization.detail, 17);

        // distinctness: seven variants, seven codes
        let codes = [
            conflict.code,
            violated.code,
            exhausted.code,
            execution.code,
            overload.code,
            durability.code,
            serialization.code,
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in codes.iter().skip(i + 1) {
                assert_ne!(a, b, "commit-error codes must be distinct");
            }
        }
        // and each survives an encode/decode round trip
        for err in [
            conflict,
            violated,
            exhausted,
            execution,
            overload,
            durability,
            serialization,
        ] {
            let resp = Response::Error(err.clone());
            match Response::decode(&resp.encode()).expect("decodes") {
                Response::Error(back) => assert_eq!(back, err),
                other => panic!("expected an error response, got {other:?}"),
            }
        }
    }
}
