//! The wire frame: `len ‖ crc ‖ payload`.
//!
//! Exactly the framing discipline the write-ahead log uses
//! (`txlog_engine::wal`): a little-endian `u32` payload length, the
//! payload's CRC-32 ([`txlog_relational::codec::crc32`]), then the
//! payload bytes. A frame is self-delimiting and self-checking, so the
//! receiver can always tell "need more bytes" apart from "corrupt
//! stream", and a flipped bit anywhere in the payload is detected
//! before the message decoder ever sees it.
//!
//! The pure functions ([`encode_frame`], [`decode_frame`]) operate on
//! byte buffers and never touch a socket — they are what the
//! malformed-frame property tests drive. The IO functions layer
//! timeouts on top: [`read_frame_timeout`] distinguishes an *idle*
//! connection (no frame started) from a *torn* one (frame started but
//! stalled), which is how the server enforces its idle and per-request
//! read budgets without ever blocking forever.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use txlog_relational::codec::crc32;

/// Bytes of framing before the payload: `len: u32 ‖ crc: u32`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Default bound on a single frame's payload (16 MiB). Large enough
/// for any response the server renders, small enough that a corrupt
/// length prefix cannot make the receiver buffer unboundedly.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Why a byte sequence is not a valid frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The length prefix exceeds the configured bound.
    TooLarge {
        /// The length the prefix claimed.
        len: u32,
        /// The configured bound.
        max: u32,
    },
    /// The payload's CRC-32 does not match the header's.
    Checksum {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload actually received.
        found: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            FrameError::Checksum { expected, found } => write!(
                f,
                "frame checksum mismatch: header {expected:#010x}, payload {found:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Frame a payload: header plus bytes, ready to write to a stream.
/// Fails (rather than silently wrapping the length) when the payload
/// exceeds `max`.
pub fn encode_frame(payload: &[u8], max: u32) -> Result<Vec<u8>, FrameError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= max)
        .ok_or(FrameError::TooLarge {
            len: u32::try_from(payload.len()).unwrap_or(u32::MAX),
            max,
        })?;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((payload, consumed)))` — a complete, checksummed frame;
///   `consumed` bytes of `buf` belong to it.
/// * `Ok(None)` — `buf` holds a valid prefix of a frame; read more.
/// * `Err(_)` — the bytes can never become a valid frame.
///
/// Total: never panics, for any input.
pub fn decode_frame(buf: &[u8], max: u32) -> Result<Option<(&[u8], usize)>, FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let expected = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[FRAME_HEADER_LEN..total];
    let found = crc32(payload);
    if found != expected {
        return Err(FrameError::Checksum { expected, found });
    }
    Ok(Some((payload, total)))
}

/// Write one frame to a stream. An oversize payload is an
/// [`io::ErrorKind::InvalidData`] error — a bug in the caller, never a
/// silently corrupt wire.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: u32) -> io::Result<()> {
    let bytes = encode_frame(payload, max)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(&bytes)?;
    w.flush()
}

/// What one attempt to read a frame from a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-verified frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection at a frame boundary (or mid-frame,
    /// which ends the conversation just as conclusively).
    Disconnected,
    /// No frame started within the idle budget.
    IdleTimeout,
    /// A frame started but did not complete within the read budget.
    Stalled,
    /// The caller's `wake` callback asked for control back (pending
    /// out-of-band work, e.g. notification frames to push). Only
    /// returned between frames — never with a frame partially read —
    /// so the caller can write to the stream and re-enter.
    Wake,
    /// The stream's bytes are not a valid frame (bad length or CRC).
    Corrupt(FrameError),
}

/// Granularity of the read loop's timeout ticks: how often it re-checks
/// its deadlines and the server's shutdown flag while blocked.
const READ_TICK: Duration = Duration::from_millis(25);

/// Pop a complete frame off the front of `buf`, if one is there.
fn take_frame(buf: &mut Vec<u8>, max: u32) -> Result<Option<Vec<u8>>, FrameError> {
    match decode_frame(buf, max)? {
        Some((payload, consumed)) => {
            let payload = payload.to_vec();
            buf.drain(..consumed);
            Ok(Some(payload))
        }
        None => Ok(None),
    }
}

/// Read one frame, enforcing two budgets: `idle` until the frame's
/// first byte arrives, then `read` for the rest of the frame.
///
/// `buf` is the connection's residual receive buffer: bytes past the
/// returned frame stay in it, so pipelined requests (several frames in
/// one write) are never dropped. A frame already complete in `buf` is
/// returned immediately without touching the socket.
///
/// The `should_stop` callback is polled between ticks so a draining
/// server can abandon an idle read promptly; it never interrupts a
/// frame that has started arriving (that is the graceful-drain
/// contract: a request already in flight on the wire is either fully
/// read or the peer disconnects).
///
/// The `wake` callback is polled at the same points; returning true
/// yields [`ReadOutcome::Wake`] so the caller can perform out-of-band
/// writes (pushed notification frames). It is checked before
/// `should_stop`, so pending pushes are flushed before a drain closes
/// the connection, and — like `should_stop` — it never interrupts a
/// frame mid-read.
pub fn read_frame_timeout(
    stream: &TcpStream,
    buf: &mut Vec<u8>,
    idle: Duration,
    read: Duration,
    max: u32,
    should_stop: &dyn Fn() -> bool,
    wake: &dyn Fn() -> bool,
) -> io::Result<ReadOutcome> {
    let mut chunk = [0u8; 4096];
    let start = Instant::now();
    let mut first_byte_at: Option<Instant> = if buf.is_empty() {
        None
    } else {
        Some(Instant::now())
    };
    stream.set_read_timeout(Some(READ_TICK))?;
    loop {
        match take_frame(buf, max) {
            Ok(Some(payload)) => return Ok(ReadOutcome::Frame(payload)),
            Ok(None) => {}
            Err(e) => return Ok(ReadOutcome::Corrupt(e)),
        }
        match first_byte_at {
            None => {
                if wake() && buf.is_empty() {
                    return Ok(ReadOutcome::Wake);
                }
                if should_stop() && buf.is_empty() {
                    return Ok(ReadOutcome::IdleTimeout);
                }
                if start.elapsed() >= idle {
                    return Ok(ReadOutcome::IdleTimeout);
                }
            }
            Some(t) => {
                if t.elapsed() >= read {
                    return Ok(ReadOutcome::Stalled);
                }
            }
        }
        match (&*stream).read(&mut chunk) {
            Ok(0) => return Ok(ReadOutcome::Disconnected),
            Ok(n) => {
                if first_byte_at.is_none() {
                    first_byte_at = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Read one frame with plain blocking semantics (the client side, which
/// is content to wait for the server). `buf` is the residual receive
/// buffer, as in [`read_frame_timeout`].
pub fn read_frame_blocking(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    max: u32,
) -> io::Result<ReadOutcome> {
    let mut chunk = [0u8; 4096];
    stream.set_read_timeout(None)?;
    loop {
        match take_frame(buf, max) {
            Ok(Some(payload)) => return Ok(ReadOutcome::Frame(payload)),
            Ok(None) => {}
            Err(e) => return Ok(ReadOutcome::Corrupt(e)),
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(ReadOutcome::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", b"hello wire", &[0u8; 4096][..]] {
            let framed = encode_frame(payload, DEFAULT_MAX_FRAME_LEN).expect("fits");
            let (got, consumed) = decode_frame(&framed, DEFAULT_MAX_FRAME_LEN)
                .expect("valid")
                .expect("complete");
            assert_eq!(got, payload);
            assert_eq!(consumed, framed.len());
        }
    }

    #[test]
    fn short_buffers_ask_for_more() {
        let framed = encode_frame(b"abcdef", DEFAULT_MAX_FRAME_LEN).expect("fits");
        for cut in 0..framed.len() {
            assert!(
                decode_frame(&framed[..cut], DEFAULT_MAX_FRAME_LEN)
                    .expect("prefixes are never corrupt")
                    .is_none(),
                "cut at {cut} must request more bytes"
            );
        }
    }

    #[test]
    fn flipped_payload_bits_fail_the_checksum() {
        let framed = encode_frame(b"sensitive", DEFAULT_MAX_FRAME_LEN).expect("fits");
        for i in FRAME_HEADER_LEN..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(
                    decode_frame(&bad, DEFAULT_MAX_FRAME_LEN),
                    Err(FrameError::Checksum { .. })
                ),
                "flip at {i} must be detected"
            );
        }
    }

    #[test]
    fn pipelined_frames_survive_in_the_residual_buffer() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_frame(b"first", DEFAULT_MAX_FRAME_LEN).expect("fits"));
        buf.extend_from_slice(&encode_frame(b"second", DEFAULT_MAX_FRAME_LEN).expect("fits"));
        let one = take_frame(&mut buf, DEFAULT_MAX_FRAME_LEN)
            .expect("valid")
            .expect("complete");
        assert_eq!(one, b"first");
        let two = take_frame(&mut buf, DEFAULT_MAX_FRAME_LEN)
            .expect("valid")
            .expect("complete");
        assert_eq!(two, b"second");
        assert!(buf.is_empty());
        assert!(take_frame(&mut buf, DEFAULT_MAX_FRAME_LEN)
            .expect("empty is a prefix")
            .is_none());
    }

    #[test]
    fn oversize_lengths_are_refused_not_buffered() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::TooLarge { .. })
        ));
        assert!(matches!(
            encode_frame(&[0u8; 64], 32),
            Err(FrameError::TooLarge { len: 64, max: 32 })
        ));
    }
}
