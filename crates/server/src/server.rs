//! The concurrent server: a thread pool over [`std::net::TcpListener`].
//!
//! One accept thread does **admission control** — it refuses new
//! connections (with a typed wire error, not a silent close) when the
//! active-connection cap is hit or the bounded hand-off queue is full —
//! and a fixed pool of worker threads each own one connection at a
//! time. Every connection gets its own [`Session`] over the shared
//! [`Database`], so the commit pipeline's snapshot isolation, conflict
//! detection, and group-commit batching apply to network clients
//! exactly as they do to in-process ones.
//!
//! **Backpressure** has three layers, each with its own typed error:
//! the accept queue ([`ErrorCode::Overload`] at admission), the
//! connection cap ([`ErrorCode::TooManyConnections`]), and the commit
//! pipeline's own log-submission queue (`CommitError::Overload`,
//! forwarded losslessly as [`ErrorCode::Overload`] with the queue
//! capacity in the detail field).
//!
//! **Graceful drain**: [`Server::shutdown`] (or a wire
//! [`Request::Shutdown`]) stops admission and asks every worker to
//! finish. A request already read — including one whose commit is
//! waiting on the log writer — completes and its response is written;
//! idle connections get a [`Response::Goodbye`] at the next tick; then
//! [`Server::join`] returns.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use txlog_base::obs::{Counter, Metrics};
use txlog_base::Atom;
use txlog_engine::db::{CommitError, Database, Session, SessionOptions};
use txlog_engine::{Env, EventCallback, SubId};
use txlog_events::Pattern;
use txlog_logic::{parse_fformula, parse_fterm, FTerm, ParseCtx};
use txlog_relational::{DbState, Schema};

use crate::frame::{read_frame_timeout, write_frame, ReadOutcome, DEFAULT_MAX_FRAME_LEN};
use crate::proto::{
    ErrorCode, Request, Response, WireError, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Tunables for [`Server::bind_with`]. [`Default`] is sized for tests
/// and small deployments; every knob exists so the end-to-end tests
/// can force each backpressure path deterministically.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections allowed to be active (queued or being served) at
    /// once; the accept thread refuses the rest with
    /// [`ErrorCode::TooManyConnections`].
    pub max_connections: usize,
    /// Capacity of the bounded accept→worker hand-off queue; when it
    /// is full the accept thread refuses with [`ErrorCode::Overload`].
    pub accept_queue: usize,
    /// Worker threads, each serving one connection at a time.
    pub workers: usize,
    /// How long a connection may sit between requests before the
    /// server closes it with a [`Response::Goodbye`].
    pub idle_timeout: Duration,
    /// How long a started frame may take to finish arriving.
    pub read_timeout: Duration,
    /// Bound on a single frame's payload.
    pub max_frame_len: u32,
    /// Name reported in the [`Response::Welcome`] handshake.
    pub server_name: String,
    /// Per-connection bound on queued-but-unsent notification frames.
    /// When a commit's matches would push a connection past it, the
    /// slowest subscription is dropped: its queued frames are
    /// discarded and replaced by one
    /// [`ErrorCode::SubscriptionOverflow`] frame naming it.
    pub notify_queue: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            accept_queue: 16,
            workers: 8,
            idle_timeout: Duration::from_secs(60),
            read_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            server_name: "txlog".to_string(),
            notify_queue: 256,
        }
    }
}

/// State shared by the accept thread, the workers, and the [`Server`]
/// handle.
struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    /// Connections admitted and not yet finished (queued or served).
    active: AtomicUsize,
    /// Set once; every loop in the server polls it.
    stop: AtomicBool,
    /// The bound address, used to self-connect and wake the blocking
    /// `accept` when shutdown is requested from outside.
    addr: SocketAddr,
    /// Monotonic connection serial, used to namespace each
    /// connection's subscriptions in the database's pattern registry.
    next_conn: AtomicU64,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn metrics(&self) -> &Metrics {
        self.db.metrics()
    }

    /// Flip the stop flag and wake the accept thread. Idempotent.
    fn trigger_shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // The accept thread blocks in accept(); a throwaway local
        // connection wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// A running server. Dropping it shuts down and joins every thread;
/// call [`Server::shutdown`] + [`Server::join`] to do the same
/// explicitly.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind with default [`ServerConfig`]. Pass port 0 to let the OS
    /// pick; read the result back with [`Server::local_addr`].
    pub fn bind(db: Arc<Database>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::bind_with(db, addr, ServerConfig::default())
    }

    /// Bind a listener and start the accept thread and worker pool.
    pub fn bind_with(
        db: Arc<Database>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            cfg,
            active: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            addr: local,
            next_conn: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(shared.cfg.accept_queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(shared.cfg.workers.max(1));
        for i in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("txlog-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))?,
            );
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("txlog-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, &tx))?
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The database this server fronts.
    pub fn database(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// Begin a graceful drain: stop admitting, let in-flight requests
    /// finish, close idle connections with a goodbye. Returns
    /// immediately; [`Server::join`] waits for the drain to complete.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Wait until every worker and the accept thread have exited.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.trigger_shutdown();
        self.join_inner();
    }
}

/// Best-effort: write one response frame and forget the connection.
/// Used on the admission path, where blocking the accept thread on a
/// slow peer would stall every other client.
fn send_and_close(shared: &Shared, mut stream: TcpStream, resp: &Response) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    if write_frame(&mut stream, &resp.encode(), shared.cfg.max_frame_len).is_ok() {
        shared.metrics().bump(Counter::ServerFramesOut);
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    for conn in listener.incoming() {
        if shared.stopping() {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        if shared.active.load(Ordering::Acquire) >= shared.cfg.max_connections {
            shared.metrics().bump(Counter::ServerConnsRejected);
            let err = WireError::new(
                ErrorCode::TooManyConnections,
                "connection cap reached; try again later",
            )
            .with_detail(shared.cfg.max_connections as u64);
            send_and_close(shared, stream, &Response::Error(err));
            continue;
        }
        match tx.try_send(stream) {
            Ok(()) => {
                shared.active.fetch_add(1, Ordering::AcqRel);
                shared.metrics().bump(Counter::ServerConnsAccepted);
            }
            Err(TrySendError::Full(stream)) => {
                shared.metrics().bump(Counter::ServerConnsRejected);
                shared.metrics().bump(Counter::ServerOverloads);
                let err =
                    WireError::new(ErrorCode::Overload, "accept queue full; back off and retry")
                        .with_detail(shared.cfg.accept_queue as u64);
                send_and_close(shared, stream, &Response::Error(err));
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` (by returning) ends every worker's recv loop.
}

/// Decrements the active-connection count however the handler exits.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Take the lock only to receive; holding it during handling
        // would serialize the whole pool onto one connection.
        let stream = match rx.lock() {
            Ok(guard) => match guard.recv() {
                Ok(s) => s,
                Err(_) => return,
            },
            Err(_) => return,
        };
        let _guard = ActiveGuard(&shared.active);
        if shared.stopping() {
            // Admitted before the drain began, picked up after: refuse
            // rather than start a session that would be cut short.
            send_and_close(
                shared,
                stream,
                &Response::Error(WireError::new(
                    ErrorCode::Unavailable,
                    "server is shutting down",
                )),
            );
            continue;
        }
        handle_conn(shared, stream);
    }
}

/// Everything one connection owns: its session (snapshot + commit
/// pipeline access), its residual receive buffer, the staged
/// transaction opened by `Begin` (if any), and its subscriptions.
struct Conn<'a> {
    session: Session<'a>,
    ctx: ParseCtx,
    staged: Option<Staged>,
    /// This connection's serial, namespacing its registry names.
    serial: u64,
    /// Live subscriptions by client-facing name.
    subs: HashMap<String, SubId>,
    /// The bounded notification queue, shared with the event hub's
    /// callbacks (which run on whichever thread commits).
    notify: Arc<NotifyQueue>,
}

/// The per-connection notification mailbox. Hub callbacks fill it from
/// committing threads; the connection's worker drains it between
/// frames ([`ReadOutcome::Wake`]) and after each request.
#[derive(Default)]
struct NotifyQueue {
    inner: Mutex<NotifyInner>,
}

#[derive(Default)]
struct NotifyInner {
    /// Frames awaiting the worker: notifications, plus one typed
    /// overflow error per dropped subscription.
    pending: VecDeque<Response>,
    /// Subscriptions that overflowed: callbacks stop enqueueing for
    /// them, and the worker unregisters them at the next flush.
    dead: BTreeSet<String>,
    /// Dead subscriptions not yet unregistered from the database.
    to_drop: Vec<String>,
}

impl NotifyQueue {
    fn has_pending(&self) -> bool {
        self.inner
            .lock()
            .map(|i| !i.pending.is_empty() || !i.to_drop.is_empty())
            .unwrap_or(false)
    }
}

/// A multi-request transaction in progress: the statements staged so
/// far and the state they produce, used to answer queries inside the
/// block before anything commits.
struct Staged {
    parts: Vec<FTerm>,
    preview: DbState,
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let metrics = shared.metrics().clone();
    let send = |stream: &mut TcpStream, resp: &Response| -> io::Result<()> {
        write_frame(stream, &resp.encode(), shared.cfg.max_frame_len)?;
        metrics.bump(Counter::ServerFramesOut);
        Ok(())
    };

    // ---- handshake: the first frame must be a matching Hello ----
    // No subscriptions can exist yet, so there is nothing to wake for.
    let payload = match read_one(shared, &stream, &mut buf, &metrics, &|| false) {
        ReadOne::Frame(p) => p,
        ReadOne::Wake | ReadOne::Closed => return,
    };
    match Request::decode(&payload) {
        Ok(Request::Hello { protocol, .. })
            if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&protocol) =>
        {
            let relations = shared
                .db
                .schema()
                .decls()
                .iter()
                .map(|d| d.name.to_string())
                .collect();
            let welcome = Response::Welcome {
                protocol: PROTOCOL_VERSION,
                server: shared.cfg.server_name.clone(),
                head_version: shared.db.head_version(),
                relations,
            };
            if send(&mut stream, &welcome).is_err() {
                return;
            }
        }
        Ok(Request::Hello { protocol, .. }) => {
            let err = WireError::new(
                ErrorCode::Protocol,
                format!(
                    "server speaks protocols {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}, \
                     client sent {protocol}"
                ),
            )
            .with_detail(u64::from(PROTOCOL_VERSION));
            let _ = send(&mut stream, &Response::Error(err));
            return;
        }
        Ok(_) => {
            let err = WireError::new(ErrorCode::Protocol, "expected Hello as the first request");
            let _ = send(&mut stream, &Response::Error(err));
            return;
        }
        Err(e) => {
            metrics.bump(Counter::ServerDecodeErrors);
            let err = WireError::new(ErrorCode::Decode, e.to_string());
            let _ = send(&mut stream, &Response::Error(err));
            return;
        }
    }

    let mut conn = Conn {
        session: shared.db.session(),
        ctx: ParseCtx::new(shared.db.schema().decls().iter().map(|d| d.name)),
        staged: None,
        serial: shared.next_conn.fetch_add(1, Ordering::AcqRel),
        subs: HashMap::new(),
        notify: Arc::new(NotifyQueue::default()),
    };
    // The wake closure must not borrow `conn` (the loop body holds it
    // mutably), so it watches the mailbox through its own handle.
    let mailbox = Arc::clone(&conn.notify);

    // ---- request loop ----
    loop {
        let payload = match read_one(shared, &stream, &mut buf, &metrics, &|| {
            mailbox.has_pending()
        }) {
            ReadOne::Frame(p) => p,
            ReadOne::Wake => {
                // Notifications from other connections' commits landed
                // while this one sat idle between frames.
                if flush_notifications(shared, &mut conn, &mut stream).is_err() {
                    break;
                }
                continue;
            }
            ReadOne::Closed => break,
        };
        let resp = {
            let _span = metrics.span("server.request");
            match Request::decode(&payload) {
                Ok(req) => handle_request(shared, &mut conn, req),
                Err(e) => {
                    metrics.bump(Counter::ServerDecodeErrors);
                    // The frame checksum held, so the stream is still in
                    // sync: report and keep the connection.
                    Response::Error(WireError::new(ErrorCode::Decode, e.to_string()))
                }
            }
        };
        if send(&mut stream, &resp).is_err() {
            break;
        }
        // Matches this very request produced (dispatch is synchronous
        // with commit) go out now, not at the next read tick.
        if flush_notifications(shared, &mut conn, &mut stream).is_err() {
            break;
        }
    }

    // The connection is done; release its subscriptions so the hub
    // stops filling a mailbox nobody will drain.
    for (_, id) in conn.subs.drain() {
        shared.db.unsubscribe(id);
    }
}

/// Drain the connection's notification mailbox: first unregister
/// overflowed subscriptions from the database, then write every queued
/// frame (matches and typed overflow errors) in arrival order. Called
/// after each response and whenever the read loop wakes with pending
/// frames.
fn flush_notifications(
    shared: &Shared,
    conn: &mut Conn<'_>,
    stream: &mut TcpStream,
) -> io::Result<()> {
    let (frames, drops) = {
        let Ok(mut inner) = conn.notify.inner.lock() else {
            return Ok(());
        };
        (
            inner.pending.drain(..).collect::<Vec<_>>(),
            std::mem::take(&mut inner.to_drop),
        )
    };
    for name in drops {
        if let Some(id) = conn.subs.remove(&name) {
            shared.db.unsubscribe(id);
        }
    }
    for resp in frames {
        write_frame(stream, &resp.encode(), shared.cfg.max_frame_len)?;
        shared.metrics().bump(Counter::ServerFramesOut);
    }
    Ok(())
}

/// What one read attempt produced for the connection loop.
enum ReadOne {
    /// A complete request frame.
    Frame(Vec<u8>),
    /// No frame yet, but the wake predicate fired: the caller has
    /// notifications to flush before reading again.
    Wake,
    /// The connection is finished (the farewell, if any, has been
    /// written).
    Closed,
}

/// Read one frame for the connection loop, translating every
/// non-frame outcome into the right farewell.
fn read_one(
    shared: &Shared,
    stream: &TcpStream,
    buf: &mut Vec<u8>,
    metrics: &Metrics,
    wake: &dyn Fn() -> bool,
) -> ReadOne {
    let outcome = read_frame_timeout(
        stream,
        buf,
        shared.cfg.idle_timeout,
        shared.cfg.read_timeout,
        shared.cfg.max_frame_len,
        &|| shared.stopping(),
        wake,
    );
    let farewell = |resp: Response| {
        let mut s = stream;
        let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
        if write_frame(&mut s, &resp.encode(), shared.cfg.max_frame_len).is_ok() {
            metrics.bump(Counter::ServerFramesOut);
        }
        let _ = s.flush();
    };
    match outcome {
        Ok(ReadOutcome::Frame(p)) => {
            metrics.bump(Counter::ServerFramesIn);
            ReadOne::Frame(p)
        }
        Ok(ReadOutcome::Wake) => ReadOne::Wake,
        Ok(ReadOutcome::Disconnected) => ReadOne::Closed,
        Ok(ReadOutcome::IdleTimeout) => {
            let reason = if shared.stopping() {
                "server shutting down"
            } else {
                "idle timeout"
            };
            farewell(Response::Goodbye {
                reason: reason.to_string(),
            });
            ReadOne::Closed
        }
        Ok(ReadOutcome::Stalled) => {
            farewell(Response::Error(WireError::new(
                ErrorCode::Protocol,
                "request frame stalled mid-read",
            )));
            ReadOne::Closed
        }
        Ok(ReadOutcome::Corrupt(e)) => {
            // A bad length or checksum means framing is lost; nothing
            // after this point on the stream can be trusted.
            metrics.bump(Counter::ServerDecodeErrors);
            farewell(Response::Error(WireError::new(
                ErrorCode::Decode,
                e.to_string(),
            )));
            ReadOne::Closed
        }
        Err(_) => ReadOne::Closed,
    }
}

fn handle_request<'a>(shared: &'a Shared, conn: &mut Conn<'a>, req: Request) -> Response {
    match req {
        Request::Hello { .. } => Response::Error(WireError::new(
            ErrorCode::Protocol,
            "handshake already complete",
        )),
        Request::Execute { label, program } => answer(do_execute(shared, conn, &label, &program)),
        Request::Query { expr } => answer(query_value(shared, conn, &expr)),
        Request::Ask { formula } => answer(query_truth(shared, conn, &formula)),
        Request::Explain { target, program } => answer(explain(shared, conn, &target, program)),
        Request::Begin { isolation } => {
            if conn.staged.is_some() {
                return Response::Error(WireError::new(
                    ErrorCode::BadState,
                    "a transaction is already open",
                ));
            }
            // a requested level re-opens the connection's session at
            // that level (sessions fix their level at open); absent —
            // including every protocol-v1 Begin — the session keeps
            // whatever it runs at, the server default
            match isolation {
                Some(level) if level != conn.session.isolation() => {
                    conn.session = shared
                        .db
                        .session_with(SessionOptions::new().isolation(level));
                }
                _ => conn.session.refresh(),
            }
            conn.staged = Some(Staged {
                parts: Vec::new(),
                preview: conn.session.state().clone(),
            });
            Response::Begun
        }
        Request::Commit { label } => match conn.staged.take() {
            None => Response::Error(WireError::new(
                ErrorCode::BadState,
                "no transaction is open",
            )),
            Some(staged) => {
                let composed = compose(staged.parts.clone());
                match conn.session.commit(&label, &composed, &Env::new()) {
                    Ok(c) => Response::Committed {
                        version: c.version,
                        retries: c.retries,
                        forwarded: c.forwarded,
                    },
                    Err(e) => {
                        if matches!(e, CommitError::Overload { .. }) {
                            shared.metrics().bump(Counter::ServerOverloads);
                        }
                        // Keep the staged work so the client can abort
                        // explicitly or retry the commit.
                        conn.staged = Some(staged);
                        Response::Error(WireError::from_commit(&e))
                    }
                }
            }
        },
        Request::Abort => match conn.staged.take() {
            None => Response::Error(WireError::new(
                ErrorCode::BadState,
                "no transaction is open",
            )),
            Some(staged) => Response::Aborted {
                discarded: u32::try_from(staged.parts.len()).unwrap_or(u32::MAX),
            },
        },
        Request::ShowState => {
            let schema = shared.db.schema();
            let text = with_view(conn, |state| render_state(schema, state));
            Response::State { text }
        }
        Request::Metrics => Response::Metrics {
            json: shared.metrics().snapshot().to_json(false),
        },
        Request::Shutdown => {
            shared.trigger_shutdown();
            // The reply goes out now; the connection closes at the
            // next read boundary (read_one sees the stop flag), after
            // any already-pipelined requests have been answered.
            Response::ShuttingDown
        }
        Request::Subscribe { name, pattern } => subscribe(shared, conn, name, &pattern),
        Request::Unsubscribe { name } => match conn.subs.remove(&name) {
            Some(id) => {
                shared.db.unsubscribe(id);
                Response::Unsubscribed { name }
            }
            None => Response::Error(WireError::new(
                ErrorCode::BadState,
                format!("no subscription named {name}"),
            )),
        },
    }
}

/// Register a wire subscription: parse the pattern text, register it
/// under a name namespaced by the connection serial (two connections
/// may both subscribe as "fires"), and wire the hub callback to the
/// connection's bounded mailbox.
fn subscribe(shared: &Shared, conn: &mut Conn<'_>, name: String, pattern: &str) -> Response {
    if conn.subs.contains_key(&name) {
        return Response::Error(WireError::new(
            ErrorCode::BadState,
            format!("a subscription named {name} is already active"),
        ));
    }
    let parsed = match Pattern::parse(pattern) {
        Ok(p) => p,
        Err(e) => return Response::Error(WireError::new(ErrorCode::Parse, e.to_string())),
    };
    let metrics = shared.metrics().clone();
    let mailbox = Arc::clone(&conn.notify);
    let cap = shared.cfg.notify_queue.max(1);
    let sub = name.clone();
    let callback: EventCallback = Arc::new(move |n| {
        let Ok(mut inner) = mailbox.inner.lock() else {
            return;
        };
        if inner.dead.contains(&sub) {
            // Overflowed earlier in this flush window; the worker has
            // not unregistered it from the hub yet.
            metrics.bump(Counter::EvtNotificationsDropped);
            return;
        }
        if inner.pending.len() >= cap {
            // The peer is not draining fast enough. Drop this
            // subscription wholesale — a silent gap would violate the
            // every-match guarantee, so its queued matches are replaced
            // by one typed error naming it.
            inner
                .pending
                .retain(|r| !matches!(r, Response::Notification { name, .. } if *name == sub));
            inner.pending.push_back(Response::Error(
                WireError::new(ErrorCode::SubscriptionOverflow, sub.clone())
                    .with_detail(cap as u64),
            ));
            inner.dead.insert(sub.clone());
            inner.to_drop.push(sub.clone());
            metrics.bump(Counter::EvtNotificationsDropped);
            return;
        }
        let mut binding: Vec<(String, Atom)> = n
            .binding
            .iter()
            .map(|(v, a)| (v.as_str().to_string(), *a))
            .collect();
        binding.sort_by(|a, b| a.0.cmp(&b.0));
        inner.pending.push_back(Response::Notification {
            name: sub.clone(),
            version: n.version,
            binding,
        });
    });
    let registry = format!("wire-{}/{}", conn.serial, name);
    match shared.db.subscribe_pattern(&registry, &parsed, callback) {
        Ok(id) => {
            // A name freed by overflow may be reused once the client
            // has seen the error frame.
            if let Ok(mut inner) = conn.notify.inner.lock() {
                inner.dead.remove(&name);
            }
            conn.subs.insert(name.clone(), id);
            Response::Subscribed { name }
        }
        Err(e) => Response::Error(WireError::new(ErrorCode::Execution, e.to_string())),
    }
}

fn answer(r: Result<Response, WireError>) -> Response {
    match r {
        Ok(resp) => resp,
        Err(e) => Response::Error(e),
    }
}

/// Fold staged statements into one transaction: `Λ` for an empty
/// block, otherwise left-nested sequential composition.
fn compose(parts: Vec<FTerm>) -> FTerm {
    let mut it = parts.into_iter();
    let Some(first) = it.next() else {
        return FTerm::Identity;
    };
    it.fold(first, |acc, next| FTerm::Seq(Box::new(acc), Box::new(next)))
}

fn parse_err(e: txlog_base::TxError) -> WireError {
    WireError::new(ErrorCode::Parse, e.to_string())
}

fn exec_err(e: txlog_base::TxError) -> WireError {
    WireError::new(ErrorCode::Execution, e.to_string())
}

fn do_execute(
    shared: &Shared,
    conn: &mut Conn<'_>,
    label: &str,
    program: &str,
) -> Result<Response, WireError> {
    let tx = parse_fterm(program, &conn.ctx, &[]).map_err(parse_err)?;
    match &mut conn.staged {
        Some(staged) => {
            // Inside a Begin block: run against the preview so the
            // client sees its own writes, but commit nothing yet.
            let engine = shared.db.engine().map_err(exec_err)?;
            let next = engine
                .execute(&staged.preview, &tx, &Env::new())
                .map_err(exec_err)?;
            staged.preview = next;
            staged.parts.push(tx);
            Ok(Response::Staged {
                statements: u32::try_from(staged.parts.len()).unwrap_or(u32::MAX),
            })
        }
        None => {
            conn.session.refresh();
            match conn.session.commit(label, &tx, &Env::new()) {
                Ok(c) => Ok(Response::Executed {
                    version: c.version,
                    retries: c.retries,
                    forwarded: c.forwarded,
                }),
                Err(e) => {
                    if matches!(e, CommitError::Overload { .. }) {
                        shared.metrics().bump(Counter::ServerOverloads);
                    }
                    Err(WireError::from_commit(&e))
                }
            }
        }
    }
}

/// The state a read-only request sees: the staged preview inside a
/// transaction block, the freshly refreshed head outside one.
fn with_view<T>(conn: &mut Conn<'_>, f: impl FnOnce(&DbState) -> T) -> T {
    match &conn.staged {
        Some(s) => f(&s.preview),
        None => {
            conn.session.refresh();
            f(conn.session.state())
        }
    }
}

/// Render a state with the schema's relation names instead of raw
/// relation identities, so `show` over the wire reads like the schema
/// the client was welcomed with.
fn render_state(schema: &Schema, state: &DbState) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("state {\n");
    for d in schema.decls() {
        let _ = write!(out, "  {}{{", d.name);
        if let Some(rel) = state.relation(d.id) {
            for (k, t) in rel.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{t}");
            }
        }
        out.push_str("}\n");
    }
    out.push('}');
    out
}

fn query_value(shared: &Shared, conn: &mut Conn<'_>, expr: &str) -> Result<Response, WireError> {
    let q = parse_fterm(expr, &conn.ctx, &[]).map_err(parse_err)?;
    let engine = shared.db.engine().map_err(exec_err)?;
    with_view(conn, |state| {
        let v = engine.eval_obj(state, &q, &Env::new()).map_err(exec_err)?;
        Ok(Response::Value {
            text: format!("{v}"),
        })
    })
}

fn query_truth(shared: &Shared, conn: &mut Conn<'_>, formula: &str) -> Result<Response, WireError> {
    let p = parse_fformula(formula, &conn.ctx, &[]).map_err(parse_err)?;
    let engine = shared.db.engine().map_err(exec_err)?;
    with_view(conn, |state| {
        let value = engine
            .eval_truth(state, &p, &Env::new())
            .map_err(exec_err)?;
        Ok(Response::Truth { value })
    })
}

fn explain(
    shared: &Shared,
    conn: &mut Conn<'_>,
    target: &str,
    program: bool,
) -> Result<Response, WireError> {
    let engine = shared.db.engine().map_err(exec_err)?;
    let text = if program {
        let t = parse_fterm(target, &conn.ctx, &[]).map_err(parse_err)?;
        engine.explain_program(&t).render()
    } else {
        let f = parse_fformula(target, &conn.ctx, &[]).map_err(parse_err)?;
        engine.explain_formula(&f).render()
    };
    Ok(Response::Explained { text })
}
