//! Binary codec for durable storage of relational values.
//!
//! The paper treats a database as a point in a history of states related
//! by transaction arcs; persisting that history means serializing exactly
//! two kinds of value: full states ([`DbState`], for checkpoints and
//! snapshots) and arcs ([`Delta`], for the write-ahead log). This module
//! defines a small, fixed, little-endian binary format for both, plus the
//! value types they contain ([`Atom`], field vectors, [`TupleVal`]) and
//! the [`Schema`] a snapshot is interpreted under.
//!
//! Design points:
//!
//! * **Strings, not interner indices.** [`Symbol`] indices are stable
//!   only within a process run, so `Atom::Str` is encoded as its
//!   length-prefixed UTF-8 text and re-interned on decode.
//! * **Typed errors, no panics.** Decoding arbitrary bytes returns a
//!   [`CodecError`] naming the offset and what was being read; corrupt
//!   input must never abort the process. Collection counts are read
//!   incrementally so a corrupt length prefix cannot trigger a huge
//!   up-front allocation.
//! * **Checksummed envelopes.** [`crc32`] is a hand-rolled table-driven
//!   CRC-32 (IEEE polynomial, the `zlib` one) used by the snapshot
//!   envelope here and by the WAL record framing in `txlog_engine::wal`.
//! * **Deterministic.** Encoding is a pure function of the value:
//!   `BTreeMap` ordering makes equal values encode to equal bytes, which
//!   is what lets recovery tests assert byte-identical states.

use crate::delta::{Delta, RelDelta, TupleChange};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::state::DbState;
use crate::tuple::TupleVal;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use txlog_base::{Atom, RelId, Symbol, TupleId};

/// Why a byte sequence could not be decoded. Every variant carries the
/// byte offset at which decoding failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The input ended before the value being read was complete.
    Truncated {
        /// Offset at which more bytes were needed.
        offset: usize,
        /// What was being read.
        what: &'static str,
    },
    /// A tag byte had no meaning for the value being read.
    BadTag {
        /// Offset of the offending tag byte.
        offset: usize,
        /// The tag found.
        tag: u8,
        /// What was being read.
        what: &'static str,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// Offset of the string's first byte.
        offset: usize,
    },
    /// Decoding finished but input bytes remained.
    Trailing {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
    /// A snapshot envelope did not start with the expected magic bytes.
    BadMagic,
    /// A checksummed envelope failed CRC verification.
    Checksum {
        /// CRC recorded in the envelope.
        expected: u32,
        /// CRC of the bytes actually present.
        found: u32,
    },
    /// The bytes decoded structurally but describe an impossible value
    /// (e.g. a tuple whose arity contradicts its relation's).
    Invalid {
        /// Offset at which the inconsistency was detected.
        offset: usize,
        /// Description of the inconsistency.
        what: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset, what } => {
                write!(f, "truncated input at byte {offset} while reading {what}")
            }
            CodecError::BadTag { offset, tag, what } => {
                write!(
                    f,
                    "bad tag {tag:#04x} at byte {offset} while reading {what}"
                )
            }
            CodecError::BadUtf8 { offset } => {
                write!(f, "invalid UTF-8 in string at byte {offset}")
            }
            CodecError::Trailing { offset } => {
                write!(f, "trailing bytes after value, starting at byte {offset}")
            }
            CodecError::BadMagic => write!(f, "bad magic: not a txlog snapshot"),
            CodecError::Checksum { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: recorded {expected:#010x}, computed {found:#010x}"
                )
            }
            CodecError::Invalid { offset, what } => {
                write!(f, "invalid value at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 of `bytes` (IEEE polynomial, as used by zlib/PNG/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

const TAG_NAT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_NO_ID: u8 = 0;
const TAG_WITH_ID: u8 = 1;

/// Append-only writer producing the codec's byte format.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, by reference.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write one [`Atom`]. Symbols are written as their text, since
    /// interner indices are process-local.
    pub fn atom(&mut self, a: Atom) {
        match a {
            Atom::Nat(n) => {
                self.u8(TAG_NAT);
                self.u64(n);
            }
            Atom::Str(s) => {
                self.u8(TAG_STR);
                self.str(s.as_str());
            }
        }
    }

    /// Write a field vector (count-prefixed atoms).
    pub fn fields(&mut self, fs: &[Atom]) {
        self.u32(fs.len() as u32);
        for &a in fs {
            self.atom(a);
        }
    }

    /// Write a [`TupleVal`] (optional identity plus fields).
    pub fn tuple_val(&mut self, t: &TupleVal) {
        match t.id {
            Some(id) => {
                self.u8(TAG_WITH_ID);
                self.u64(id.0);
            }
            None => self.u8(TAG_NO_ID),
        }
        self.fields(&t.fields);
    }

    fn id_fields_map(&mut self, m: &BTreeMap<TupleId, Arc<[Atom]>>) {
        self.u32(m.len() as u32);
        for (&tid, fs) in m {
            self.u64(tid.0);
            self.fields(fs);
        }
    }

    /// Write one relation's change record.
    pub fn rel_delta(&mut self, rd: &RelDelta) {
        self.u32(rd.arity as u32);
        self.u8(u8::from(rd.created) | (u8::from(rd.dropped) << 1));
        self.id_fields_map(&rd.inserted);
        self.id_fields_map(&rd.deleted);
        self.u32(rd.modified.len() as u32);
        for (&tid, c) in &rd.modified {
            self.u64(tid.0);
            self.fields(&c.old);
            self.fields(&c.new);
        }
    }

    /// Write a [`Delta`] (count-prefixed non-empty relation records).
    pub fn delta(&mut self, d: &Delta) {
        let count = d.rels().count();
        self.u32(count as u32);
        for (rid, rd) in d.rels() {
            self.u32(rid.0);
            self.rel_delta(rd);
        }
    }

    /// Write a full [`DbState`]: the allocator, then every relation's
    /// identity, arity, and tuples in deterministic order.
    pub fn db_state(&mut self, s: &DbState) {
        self.u64(s.next_tuple);
        self.u32(s.rels.len() as u32);
        for (&rid, rel) in &s.rels {
            self.u32(rid.0);
            self.u32(rel.arity() as u32);
            self.u64(rel.len() as u64);
            for t in rel.iter() {
                self.u64(t.id().0);
                self.fields(t.fields());
            }
        }
    }

    /// Write a [`Schema`] (declarations in identifier order).
    pub fn schema(&mut self, s: &Schema) {
        let decls = s.decls();
        self.u32(decls.len() as u32);
        for d in decls {
            self.str(d.name.as_str());
            self.u32(d.attrs.len() as u32);
            for a in &d.attrs {
                self.str(a.as_str());
            }
            self.u8(u8::from(d.system));
        }
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Cursor-style reader over the codec's byte format. Every method returns
/// a typed [`CodecError`] on malformed input; none panic.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Require that every byte was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Trailing { offset: self.pos })
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                offset: self.pos,
                what,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a raw byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, CodecError> {
        let len = self.u32(what)? as usize;
        let start = self.pos;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8 { offset: start })
    }

    /// Read one [`Atom`].
    pub fn atom(&mut self) -> Result<Atom, CodecError> {
        let at = self.pos;
        match self.u8("atom tag")? {
            TAG_NAT => Ok(Atom::Nat(self.u64("nat atom")?)),
            TAG_STR => Ok(Atom::Str(Symbol::new(self.str("str atom")?))),
            tag => Err(CodecError::BadTag {
                offset: at,
                tag,
                what: "atom",
            }),
        }
    }

    /// Read a field vector.
    pub fn fields(&mut self) -> Result<Arc<[Atom]>, CodecError> {
        let count = self.u32("field count")? as usize;
        // Bound the pre-allocation by what the input could possibly hold
        // (each atom is at least 2 bytes) so a corrupt count cannot force
        // a huge allocation before the truncation error surfaces.
        let mut out = Vec::with_capacity(count.min(self.remaining() / 2 + 1));
        for _ in 0..count {
            out.push(self.atom()?);
        }
        Ok(out.into())
    }

    /// Read a [`TupleVal`].
    pub fn tuple_val(&mut self) -> Result<TupleVal, CodecError> {
        let at = self.pos;
        let id = match self.u8("tuple id tag")? {
            TAG_NO_ID => None,
            TAG_WITH_ID => Some(TupleId(self.u64("tuple id")?)),
            tag => {
                return Err(CodecError::BadTag {
                    offset: at,
                    tag,
                    what: "tuple id",
                })
            }
        };
        let fields = self.fields()?;
        Ok(match id {
            Some(id) => TupleVal::identified(id, fields),
            None => TupleVal::anonymous(fields),
        })
    }

    fn id_fields_map(
        &mut self,
        what: &'static str,
    ) -> Result<BTreeMap<TupleId, Arc<[Atom]>>, CodecError> {
        let count = self.u32(what)? as usize;
        let mut m = BTreeMap::new();
        for _ in 0..count {
            let tid = TupleId(self.u64(what)?);
            let fs = self.fields()?;
            m.insert(tid, fs);
        }
        Ok(m)
    }

    /// Read one relation's change record.
    pub fn rel_delta(&mut self) -> Result<RelDelta, CodecError> {
        let arity = self.u32("rel-delta arity")? as usize;
        let at = self.pos;
        let flags = self.u8("rel-delta flags")?;
        if flags & !0b11 != 0 {
            return Err(CodecError::BadTag {
                offset: at,
                tag: flags,
                what: "rel-delta flags",
            });
        }
        let mut rd = RelDelta {
            arity,
            created: flags & 0b01 != 0,
            dropped: flags & 0b10 != 0,
            ..RelDelta::default()
        };
        rd.inserted = self.id_fields_map("inserted tuples")?;
        rd.deleted = self.id_fields_map("deleted tuples")?;
        let count = self.u32("modified tuples")? as usize;
        for _ in 0..count {
            let tid = TupleId(self.u64("modified tuple id")?);
            let old = self.fields()?;
            let new = self.fields()?;
            rd.modified.insert(tid, TupleChange { old, new });
        }
        Ok(rd)
    }

    /// Read a [`Delta`].
    pub fn delta(&mut self) -> Result<Delta, CodecError> {
        let count = self.u32("delta relation count")? as usize;
        let mut d = Delta::empty();
        for _ in 0..count {
            let rid = RelId(self.u32("delta relation id")?);
            let rd = self.rel_delta()?;
            d.insert_rel(rid, rd);
        }
        Ok(d)
    }

    /// Read a full [`DbState`].
    pub fn db_state(&mut self) -> Result<DbState, CodecError> {
        let next_tuple = self.u64("state allocator")?;
        let rel_count = self.u32("state relation count")? as usize;
        let mut rels = BTreeMap::new();
        for _ in 0..rel_count {
            let rid = RelId(self.u32("relation id")?);
            let arity = self.u32("relation arity")? as usize;
            let tuple_count = self.u64("relation tuple count")?;
            let mut rel = Relation::empty(rid, arity);
            for _ in 0..tuple_count {
                let at = self.pos;
                let tid = TupleId(self.u64("tuple id")?);
                let fs = self.fields()?;
                rel.insert(tid, fs).map_err(|e| CodecError::Invalid {
                    offset: at,
                    what: e.to_string(),
                })?;
            }
            rels.insert(rid, Arc::new(rel));
        }
        Ok(DbState { rels, next_tuple })
    }

    /// Read a [`Schema`].
    pub fn schema(&mut self) -> Result<Schema, CodecError> {
        let count = self.u32("schema declaration count")? as usize;
        let mut s = Schema::new();
        for _ in 0..count {
            let at = self.pos;
            let name = self.str("relation name")?.to_owned();
            let attr_count = self.u32("attribute count")? as usize;
            let mut attrs = Vec::with_capacity(attr_count.min(self.remaining() / 4 + 1));
            for _ in 0..attr_count {
                attrs.push(self.str("attribute name")?.to_owned());
            }
            let system = self.u8("system flag")? != 0;
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let added = if system {
                s.add_system_relation(&name, &attr_refs)
            } else {
                s.add_relation(&name, &attr_refs)
            };
            added.map_err(|e| CodecError::Invalid {
                offset: at,
                what: e.to_string(),
            })?;
        }
        Ok(s)
    }
}

// ---------------------------------------------------------------------------
// Whole-value helpers
// ---------------------------------------------------------------------------

/// Encode a [`Delta`] as a standalone byte string.
pub fn encode_delta(d: &Delta) -> Vec<u8> {
    let mut e = Encoder::new();
    e.delta(d);
    e.finish()
}

/// Decode a standalone [`Delta`], requiring full consumption.
pub fn decode_delta(bytes: &[u8]) -> Result<Delta, CodecError> {
    let mut d = Decoder::new(bytes);
    let v = d.delta()?;
    d.finish()?;
    Ok(v)
}

/// Encode a [`DbState`] as a standalone byte string.
pub fn encode_db_state(s: &DbState) -> Vec<u8> {
    let mut e = Encoder::new();
    e.db_state(s);
    e.finish()
}

/// A process-independent 64-bit fingerprint of a [`DbState`]: the CRC-32
/// of its canonical encoding combined with the encoded length. Collisions
/// are possible but stable — two runs of any process fingerprint a state
/// identically — which is what the model checker's schedule-dedup keys
/// and pinned-corpus assertions need (`content_digest` hashes in-process
/// only and makes no cross-version promise).
pub fn fingerprint_db_state(s: &DbState) -> u64 {
    let bytes = encode_db_state(s);
    (u64::from(crc32(&bytes)) << 32) | (bytes.len() as u64 & 0xFFFF_FFFF)
}

/// Decode a standalone [`DbState`], requiring full consumption.
pub fn decode_db_state(bytes: &[u8]) -> Result<DbState, CodecError> {
    let mut d = Decoder::new(bytes);
    let v = d.db_state()?;
    d.finish()?;
    Ok(v)
}

/// Magic bytes opening a snapshot envelope (format version 1).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TXLGSNP1";

/// Encode a `(schema, state)` snapshot inside a checksummed envelope:
/// `magic ‖ crc32(payload) ‖ payload` where `payload = schema ‖ state`.
/// This is the on-disk format of REPL `:save` files and the payload of
/// WAL checkpoint records.
pub fn encode_snapshot(schema: &Schema, state: &DbState) -> Vec<u8> {
    let mut payload = Encoder::new();
    payload.schema(schema);
    payload.db_state(state);
    let payload = payload.finish();
    let mut e = Encoder::new();
    e.buf.extend_from_slice(SNAPSHOT_MAGIC);
    e.u32(crc32(&payload));
    e.buf.extend_from_slice(&payload);
    e.finish()
}

/// Decode a snapshot envelope, verifying magic and checksum. Any single
/// corrupted byte anywhere in the envelope is guaranteed to be detected.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Schema, DbState), CodecError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(CodecError::Truncated {
            offset: bytes.len(),
            what: "snapshot envelope",
        });
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut d = Decoder::new(&bytes[SNAPSHOT_MAGIC.len()..]);
    let expected = d.u32("snapshot checksum")?;
    let payload = &bytes[SNAPSHOT_MAGIC.len() + 4..];
    let found = crc32(payload);
    if expected != found {
        return Err(CodecError::Checksum { expected, found });
    }
    let schema = d.schema()?;
    let state = d.db_state()?;
    d.finish()?;
    Ok((schema, state))
}

impl DbState {
    /// Advance the tuple allocator to at least `to`. Used by WAL replay to
    /// restore the exact allocator position recorded at commit time (a
    /// replayed delta alone can under-advance it when a transaction
    /// allocated identities whose net effect canceled).
    pub fn advance_allocator(&mut self, to: u64) {
        if to > self.next_tuple {
            self.next_tuple = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> DbState {
        let s = DbState::new()
            .with_relation(RelId(0), 2)
            .unwrap()
            .with_relation(RelId(3), 1)
            .unwrap();
        let (s, _) = s
            .insert_fields(RelId(0), &[Atom::nat(1), Atom::str("alpha")])
            .unwrap();
        let (s, _) = s
            .insert_fields(RelId(0), &[Atom::nat(2), Atom::str("beta")])
            .unwrap();
        let (s, _) = s.insert_fields(RelId(3), &[Atom::nat(99)]).unwrap();
        s
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn atom_and_fields_round_trip() {
        let atoms = [
            Atom::nat(0),
            Atom::nat(u64::MAX),
            Atom::str(""),
            Atom::str("héllo"),
        ];
        let mut e = Encoder::new();
        e.fields(&atoms);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let back = d.fields().unwrap();
        d.finish().unwrap();
        assert_eq!(&back[..], &atoms[..]);
    }

    #[test]
    fn tuple_val_round_trip() {
        for t in [
            TupleVal::anonymous(vec![Atom::nat(7)]),
            TupleVal::identified(TupleId(42), vec![Atom::str("x"), Atom::nat(3)]),
        ] {
            let mut e = Encoder::new();
            e.tuple_val(&t);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.tuple_val().unwrap(), t);
            d.finish().unwrap();
        }
    }

    #[test]
    fn delta_round_trip() {
        let s0 = sample_state();
        let (s1, _) = s0
            .insert_fields(RelId(0), &[Atom::nat(5), Atom::str("gamma")])
            .unwrap();
        let s2 = s1.assign(RelId(7), 1, &[]).unwrap();
        let d = s0.diff(&s2);
        assert_eq!(decode_delta(&encode_delta(&d)).unwrap(), d);
        let empty = Delta::empty();
        assert_eq!(decode_delta(&encode_delta(&empty)).unwrap(), empty);
    }

    #[test]
    fn db_state_round_trip_is_byte_identical() {
        let s = sample_state();
        let bytes = encode_db_state(&s);
        let back = decode_db_state(&bytes).unwrap();
        assert!(back.content_eq(&s));
        assert_eq!(back.next_tuple_id(), s.next_tuple_id());
        // re-encoding the decoded value reproduces the bytes exactly
        assert_eq!(encode_db_state(&back), bytes);
    }

    #[test]
    fn snapshot_round_trip() {
        let schema = Schema::new()
            .relation("EMP", &["name", "dept"])
            .unwrap()
            .relation("DEPT", &["name"])
            .unwrap();
        let state = sample_state();
        let bytes = encode_snapshot(&schema, &state);
        let (sch, st) = decode_snapshot(&bytes).unwrap();
        assert_eq!(sch.decls().len(), 2);
        assert_eq!(sch.expect("EMP").unwrap().arity(), 2);
        assert!(st.content_eq(&state));
    }

    #[test]
    fn snapshot_detects_any_single_byte_corruption() {
        let schema = Schema::new().relation("R", &["a"]).unwrap();
        let state = schema.initial_state();
        let bytes = encode_snapshot(&schema, &state);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_snapshot(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // truncation at every prefix is also an error
        for i in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..i]).is_err());
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = encode_delta(&Delta::empty());
        bytes.push(0);
        assert!(matches!(
            decode_delta(&bytes),
            Err(CodecError::Trailing { .. })
        ));
    }

    #[test]
    fn decode_errors_are_typed_not_panics() {
        // a corrupt count cannot force a huge allocation or a panic
        let mut e = Encoder::new();
        e.u32(u32::MAX);
        let bytes = e.finish();
        assert!(matches!(
            Decoder::new(&bytes).fields(),
            Err(CodecError::Truncated { .. })
        ));
        // bad atom tag
        assert!(matches!(
            Decoder::new(&[9]).atom(),
            Err(CodecError::BadTag { tag: 9, .. })
        ));
        // invalid UTF-8 inside a string atom
        let mut e = Encoder::new();
        e.u8(TAG_STR);
        e.u32(2);
        e.u8(0xFF);
        e.u8(0xFE);
        assert!(matches!(
            Decoder::new(&e.finish()).atom(),
            Err(CodecError::BadUtf8 { .. })
        ));
    }

    #[test]
    fn db_state_arity_mismatch_is_invalid() {
        // relation declared 1-ary but carrying a 2-ary tuple
        let mut e = Encoder::new();
        e.u64(1); // allocator
        e.u32(1); // one relation
        e.u32(0); // rel id
        e.u32(1); // arity 1
        e.u64(1); // one tuple
        e.u64(0); // tuple id
        e.fields(&[Atom::nat(1), Atom::nat(2)]);
        assert!(matches!(
            decode_db_state(&e.finish()),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn advance_allocator_is_monotone() {
        let mut s = DbState::new();
        s.advance_allocator(5);
        assert_eq!(s.next_tuple_id(), 5);
        s.advance_allocator(3);
        assert_eq!(s.next_tuple_id(), 5);
    }
}
