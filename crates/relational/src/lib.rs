//! Relational substrate for the situational transaction logic.
//!
//! The paper (Section 3) views a relational database as a *model* of the
//! situational transaction theory: a set of computational states, each
//! assigning values to attributes, tuples, and relations, connected by
//! transactions into an *evolution graph*. This crate builds exactly that
//! substrate:
//!
//! * [`Tuple`] — an n-ary tuple with a stable [`TupleId`]; identity is the
//!   value of the paper's `id` function and survives `modify`.
//! * [`Relation`] — an identified finite set of tuples of one arity.
//! * [`DbState`] — a persistent (copy-on-write) database state. Cloning is
//!   O(#relations); updating copies only the touched relation. Many states
//!   coexist cheaply, which is what situational logic requires: s-formulas
//!   quantify over states, and fluents may be evaluated at *any* state, not
//!   just "the current one".
//! * The four state-changing primitives of Section 2 — `insert_n`,
//!   `delete_n`, `modify_n`, `assign` — with semantics matching the paper's
//!   action and frame axioms (see [`state`] module docs).
//! * [`Schema`] — relation declarations with named attributes.
//! * [`EvolutionGraph`] — the directed multigraph of states and transaction
//!   arcs; reflexive (null transaction `Λ`) and transitive (composition
//!   `;;`) closure are provided, matching the three structural properties
//!   the paper lists in Section 1.
//!
//! [`TupleId`]: txlog_base::TupleId

#![warn(missing_docs)]

pub mod codec;
pub mod delta;
pub mod graph;
pub mod relation;
pub mod schema;
pub mod state;
pub mod tuple;

pub use codec::CodecError;
pub use delta::{Delta, RelDelta, TupleChange};
pub use graph::{EvolutionGraph, TxLabel};
pub use relation::Relation;
pub use schema::{RelDecl, Schema};
pub use state::DbState;
pub use tuple::{Tuple, TupleVal};
