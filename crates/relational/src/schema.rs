//! Relation schemas: named relations with named attributes.
//!
//! The paper's schema Σ = (T_L, R, IC) includes a set R of relation
//! f-constants. [`Schema`] is the catalog realizing R: it maps relation
//! names to identifiers and arities, and attribute names to 1-based
//! positions (the paper writes `select_n(t, i)` as `l(t)` where `l` is the
//! i-th attribute name — our `attr_index` implements that sugar).

use crate::state::DbState;
use std::collections::HashMap;
use std::fmt;
use txlog_base::{RelId, Symbol, TxError, TxResult};

/// Declaration of one relation: name, identity, and attribute names.
#[derive(Clone, PartialEq, Eq)]
pub struct RelDecl {
    /// The relation's name (an f-constant of set sort in the logic).
    pub name: Symbol,
    /// The relation's identity.
    pub id: RelId,
    /// Attribute names, in position order.
    pub attrs: Vec<Symbol>,
    /// True for relations the engine maintains itself (materialized
    /// event-pattern matches). User transactions may read them like
    /// any other relation; only the event dispatcher writes them.
    pub system: bool,
}

impl RelDecl {
    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }
}

impl fmt::Display for RelDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.system {
            write!(f, "system ")?;
        }
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A catalog of relation declarations.
#[derive(Clone, Default)]
pub struct Schema {
    decls: Vec<RelDecl>,
    by_name: HashMap<Symbol, usize>,
    by_id: HashMap<RelId, usize>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declare a relation with the given attribute names. Identifiers are
    /// allocated sequentially. Errors on duplicate names or empty
    /// attribute lists with duplicate attribute names.
    pub fn relation(mut self, name: &str, attrs: &[&str]) -> TxResult<Schema> {
        self.add_relation(name, attrs)?;
        Ok(self)
    }

    /// Declare a system-maintained relation (see [`RelDecl::system`]).
    pub fn system_relation(mut self, name: &str, attrs: &[&str]) -> TxResult<Schema> {
        self.add_system_relation(name, attrs)?;
        Ok(self)
    }

    /// Non-consuming form of [`Schema::relation`]; returns the new id.
    pub fn add_relation(&mut self, name: &str, attrs: &[&str]) -> TxResult<RelId> {
        self.add_decl(name, attrs, false)
    }

    /// Non-consuming form of [`Schema::system_relation`].
    pub fn add_system_relation(&mut self, name: &str, attrs: &[&str]) -> TxResult<RelId> {
        self.add_decl(name, attrs, true)
    }

    fn add_decl(&mut self, name: &str, attrs: &[&str], system: bool) -> TxResult<RelId> {
        let name = Symbol::new(name);
        if self.by_name.contains_key(&name) {
            return Err(TxError::schema(format!("duplicate relation {name}")));
        }
        let mut seen = HashMap::new();
        let attrs: Vec<Symbol> = attrs.iter().map(|a| Symbol::new(a)).collect();
        for (i, a) in attrs.iter().enumerate() {
            if let Some(prev) = seen.insert(*a, i) {
                return Err(TxError::schema(format!(
                    "relation {name}: attribute {a} declared at both positions {} and {}",
                    prev + 1,
                    i + 1
                )));
            }
        }
        let id = RelId(u32::try_from(self.decls.len()).expect("relation id overflow"));
        let ix = self.decls.len();
        self.decls.push(RelDecl {
            name,
            id,
            attrs,
            system,
        });
        self.by_name.insert(name, ix);
        self.by_id.insert(id, ix);
        Ok(id)
    }

    /// Look up a declaration by name.
    pub fn by_name(&self, name: Symbol) -> Option<&RelDecl> {
        self.by_name.get(&name).map(|&ix| &self.decls[ix])
    }

    /// Look up a declaration by name, or a schema error.
    pub fn expect(&self, name: &str) -> TxResult<&RelDecl> {
        self.by_name(Symbol::new(name))
            .ok_or_else(|| TxError::schema(format!("unknown relation {name}")))
    }

    /// Look up a declaration by identity.
    pub fn by_id(&self, id: RelId) -> Option<&RelDecl> {
        self.by_id.get(&id).map(|&ix| &self.decls[ix])
    }

    /// The relation identity for `name`, or a schema error.
    pub fn rel_id(&self, name: &str) -> TxResult<RelId> {
        Ok(self.expect(name)?.id)
    }

    /// 1-based position of attribute `attr` in relation `rel` — the `i` of
    /// `select_n(t, i)` when the paper writes `attr(t)`.
    pub fn attr_index(&self, rel: &str, attr: &str) -> TxResult<usize> {
        let decl = self.expect(rel)?;
        let attr = Symbol::new(attr);
        decl.attrs
            .iter()
            .position(|&a| a == attr)
            .map(|p| p + 1)
            .ok_or_else(|| TxError::schema(format!("relation {rel} has no attribute {attr}")))
    }

    /// All declarations, in identifier order.
    pub fn decls(&self) -> &[RelDecl] {
        &self.decls
    }

    /// An initial (empty) database state with every declared relation.
    pub fn initial_state(&self) -> DbState {
        let mut s = DbState::new();
        for d in &self.decls {
            s = s
                .with_relation(d.id, d.arity())
                .expect("schema ids are unique by construction");
        }
        s
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.decls {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee_schema() -> Schema {
        Schema::new()
            .relation("EMP", &["e-name", "e-dept", "salary", "age", "m-status"])
            .unwrap()
            .relation("DEPT", &["d-name", "chair", "location"])
            .unwrap()
            .relation("PROJ", &["p-name", "t-alloc"])
            .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = employee_schema();
        let emp = s.expect("EMP").unwrap();
        assert_eq!(emp.arity(), 5);
        assert_eq!(s.by_id(emp.id).unwrap().name.as_str(), "EMP");
        assert!(s.expect("NOPE").is_err());
    }

    #[test]
    fn attr_index_is_one_based() {
        let s = employee_schema();
        assert_eq!(s.attr_index("EMP", "e-name").unwrap(), 1);
        assert_eq!(s.attr_index("EMP", "salary").unwrap(), 3);
        assert_eq!(s.attr_index("EMP", "m-status").unwrap(), 5);
        assert!(s.attr_index("EMP", "nope").is_err());
        assert!(s.attr_index("NOPE", "salary").is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let s = employee_schema();
        assert!(s.relation("EMP", &["x"]).is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(Schema::new().relation("R", &["a", "b", "a"]).is_err());
    }

    #[test]
    fn initial_state_has_all_relations_empty() {
        let s = employee_schema();
        let st = s.initial_state();
        assert_eq!(st.relation_count(), 3);
        for d in s.decls() {
            let r = st.relation(d.id).unwrap();
            assert!(r.is_empty());
            assert_eq!(r.arity(), d.arity());
        }
    }

    #[test]
    fn system_relations_are_flagged_and_rendered() {
        let s = employee_schema()
            .system_relation("FIRED", &["f-name"])
            .unwrap();
        let decl = s.expect("FIRED").unwrap();
        assert!(decl.system);
        assert!(!s.expect("EMP").unwrap().system);
        assert_eq!(decl.to_string(), "system FIRED(f-name)");
    }

    #[test]
    fn dynamic_relation_addition() {
        let mut s = employee_schema();
        let id = s.add_relation("FIRE", &["f-name"]).unwrap();
        assert_eq!(s.rel_id("FIRE").unwrap(), id);
        assert_eq!(s.decls().len(), 4);
    }
}
