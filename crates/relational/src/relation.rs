//! Relations: identified finite sets of n-ary tuples.
//!
//! A relation is the paper's n-ary set sort equipped with an identifier
//! (the n-ary set-identifier sort). Tuples are stored in a `BTreeMap`
//! keyed on [`TupleId`], which gives deterministic iteration order — the
//! property the engine's `foreach` evaluator relies on when checking
//! order-independence, and the property that makes every run of every
//! experiment reproducible.

use crate::tuple::{Tuple, TupleVal};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, OnceLock};
use txlog_base::{Atom, RelId, TupleId, TxError, TxResult};

/// Per-column secondary index: for each 0-based column, a map from atom
/// value to the sorted identities of the tuples holding that value there.
///
/// Built lazily on the first [`Relation::probe`] and maintained
/// incrementally through the mutation primitives afterwards, so a
/// relation that is never probed pays nothing. Identity lists stay
/// sorted, which keeps probe-driven enumeration in the same
/// deterministic id order as a full scan.
#[derive(Clone)]
struct ColIndex {
    cols: Vec<HashMap<Atom, Vec<TupleId>>>,
}

impl ColIndex {
    fn build(arity: usize, tuples: &BTreeMap<TupleId, Arc<[Atom]>>) -> ColIndex {
        let mut cols: Vec<HashMap<Atom, Vec<TupleId>>> = vec![HashMap::new(); arity];
        // BTreeMap iteration is id-ascending, so pushed ids stay sorted.
        for (&id, fields) in tuples {
            for (c, a) in fields.iter().enumerate() {
                cols[c].entry(*a).or_default().push(id);
            }
        }
        ColIndex { cols }
    }

    fn add(&mut self, id: TupleId, fields: &[Atom]) {
        for (c, a) in fields.iter().enumerate() {
            let ids = self.cols[c].entry(*a).or_default();
            if let Err(pos) = ids.binary_search(&id) {
                ids.insert(pos, id);
            }
        }
    }

    fn drop_entry(&mut self, id: TupleId, fields: &[Atom]) {
        for (c, a) in fields.iter().enumerate() {
            if let Some(ids) = self.cols[c].get_mut(a) {
                if let Ok(pos) = ids.binary_search(&id) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    self.cols[c].remove(a);
                }
            }
        }
    }
}

/// An identified finite set of tuples, all of the same arity.
#[derive(Clone)]
pub struct Relation {
    id: RelId,
    arity: usize,
    tuples: BTreeMap<TupleId, Arc<[Atom]>>,
    /// Lazily built per-column index; never part of the relation's value.
    index: OnceLock<ColIndex>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.id == other.id && self.arity == other.arity && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// An empty relation with the given identity and arity.
    pub fn empty(id: RelId, arity: usize) -> Relation {
        Relation {
            id,
            arity,
            tuples: BTreeMap::new(),
            index: OnceLock::new(),
        }
    }

    /// The relation's identity — the paper's `id(R)`.
    pub fn id(&self) -> RelId {
        self.id
    }

    /// The arity every member tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of member tuples — the paper's `size_n`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple with a pre-allocated identity. Errors on arity
    /// mismatch; re-inserting an existing identity overwrites its fields
    /// (insertion is idempotent on (id, fields) pairs).
    pub fn insert(&mut self, id: TupleId, fields: impl Into<Arc<[Atom]>>) -> TxResult<()> {
        let fields = fields.into();
        if fields.len() != self.arity {
            return Err(TxError::sort(format!(
                "cannot insert {}-ary tuple into {}-ary relation {}",
                fields.len(),
                self.arity,
                self.id
            )));
        }
        let old = self.tuples.insert(id, Arc::clone(&fields));
        if let Some(ix) = self.index.get_mut() {
            if let Some(old) = old {
                ix.drop_entry(id, &old);
            }
            ix.add(id, &fields);
        }
        Ok(())
    }

    /// Remove the tuple with identity `id`; returns whether it was present.
    pub fn remove_id(&mut self, id: TupleId) -> bool {
        match self.tuples.remove(&id) {
            Some(old) => {
                if let Some(ix) = self.index.get_mut() {
                    ix.drop_entry(id, &old);
                }
                true
            }
            None => false,
        }
    }

    /// Remove every tuple whose fields equal `fields`; returns how many
    /// were removed. This is `delete_n` applied to an anonymous value.
    pub fn remove_fields(&mut self, fields: &[Atom]) -> usize {
        let victims: Vec<TupleId> = self
            .tuples
            .iter()
            .filter(|(_, f)| &***f == fields)
            .map(|(&id, _)| id)
            .collect();
        for &id in &victims {
            self.tuples.remove(&id);
            if let Some(ix) = self.index.get_mut() {
                ix.drop_entry(id, fields);
            }
        }
        victims.len()
    }

    /// Fields of the tuple with identity `id`, if present.
    pub fn get(&self, id: TupleId) -> Option<&Arc<[Atom]>> {
        self.tuples.get(&id)
    }

    /// Replace attribute `i` (1-based) of tuple `id` with `v` — the
    /// value-level effect of `modify_n`, identity preserved.
    pub fn modify(&mut self, id: TupleId, i: usize, v: Atom) -> TxResult<()> {
        if i == 0 || i > self.arity {
            return Err(TxError::sort(format!(
                "modify index {i} out of range for {}-ary relation {}",
                self.arity, self.id
            )));
        }
        let fields = self
            .tuples
            .get_mut(&id)
            .ok_or_else(|| TxError::eval(format!("no tuple {id} in relation {}", self.id)))?;
        let old = Arc::clone(fields);
        let mut new: Vec<Atom> = fields.to_vec();
        new[i - 1] = v;
        let new: Arc<[Atom]> = new.into();
        *fields = Arc::clone(&new);
        if let Some(ix) = self.index.get_mut() {
            ix.drop_entry(id, &old);
            ix.add(id, &new);
        }
        Ok(())
    }

    /// Identities of the tuples whose column `i` (1-based) equals `key`,
    /// in ascending id order — the same relative order a full [`iter`]
    /// scan would visit them in. Builds the per-column secondary index on
    /// first use; subsequent probes are hash lookups.
    ///
    /// Returns an empty slice for an out-of-range column rather than
    /// erroring: the planner validates columns against the schema, so an
    /// out-of-range probe here just means "no matches".
    ///
    /// [`iter`]: Relation::iter
    pub fn probe(&self, i: usize, key: &Atom) -> &[TupleId] {
        if i == 0 || i > self.arity {
            return &[];
        }
        let ix = self
            .index
            .get_or_init(|| ColIndex::build(self.arity, &self.tuples));
        ix.cols[i - 1].get(key).map_or(&[], |ids| ids.as_slice())
    }

    /// True iff the lazy per-column secondary index has been
    /// materialized (by a previous [`probe`]). Lets instrumentation
    /// count lazy index builds without observing them into existence.
    ///
    /// [`probe`]: Relation::probe
    pub fn index_built(&self) -> bool {
        self.index.get().is_some()
    }

    /// True iff a tuple with identity `id` is a member.
    pub fn contains_id(&self, id: TupleId) -> bool {
        self.tuples.contains_key(&id)
    }

    /// True iff some member tuple has exactly these fields.
    pub fn contains_fields(&self, fields: &[Atom]) -> bool {
        self.tuples.values().any(|f| &**f == fields)
    }

    /// Membership of a tuple *value*: an identified value is a member iff
    /// that identity is present **with those field values** (so a modified
    /// tuple's old value is no longer a member); an anonymous value is a
    /// member iff some tuple has those fields.
    pub fn contains_val(&self, v: &TupleVal) -> bool {
        match v.id {
            Some(id) => self.tuples.get(&id).is_some_and(|f| *f == v.fields),
            None => self.contains_fields(&v.fields),
        }
    }

    /// Iterate member tuples in deterministic (identity) order.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.tuples
            .iter()
            .map(|(&id, f)| Tuple::new(id, Arc::clone(f)))
    }

    /// Iterate member tuple values in deterministic order.
    pub fn iter_vals(&self) -> impl Iterator<Item = TupleVal> + '_ {
        self.tuples
            .iter()
            .map(|(&id, f)| TupleVal::identified(id, Arc::clone(f)))
    }

    /// Subset test **by value** (paper's `⊆_n` is set-theoretic): every
    /// field vector here occurs in `other`.
    pub fn subset_by_value(&self, other: &Relation) -> bool {
        self.tuples.values().all(|f| other.contains_fields(f))
    }

    /// The multiset of field vectors, sorted — the pure set value of this
    /// relation, used for value-level equality of `nset`-sorted terms.
    pub fn value_set(&self) -> Vec<Arc<[Atom]>> {
        let mut v: Vec<Arc<[Atom]>> = self.tuples.values().cloned().collect();
        v.sort();
        v.dedup();
        v
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        for (k, t) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(ns: &[u64]) -> Vec<Atom> {
        ns.iter().map(|&n| Atom::nat(n)).collect()
    }

    #[test]
    fn insert_and_membership() {
        let mut r = Relation::empty(RelId(0), 2);
        r.insert(TupleId(1), fields(&[10, 20])).unwrap();
        assert!(r.contains_id(TupleId(1)));
        assert!(r.contains_fields(&fields(&[10, 20])));
        assert!(!r.contains_fields(&fields(&[10, 21])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_enforced() {
        let mut r = Relation::empty(RelId(0), 2);
        assert!(r.insert(TupleId(1), fields(&[10])).is_err());
        assert!(r.insert(TupleId(1), fields(&[1, 2, 3])).is_err());
    }

    #[test]
    fn remove_by_id_and_value() {
        let mut r = Relation::empty(RelId(0), 1);
        r.insert(TupleId(1), fields(&[5])).unwrap();
        r.insert(TupleId(2), fields(&[5])).unwrap();
        r.insert(TupleId(3), fields(&[6])).unwrap();
        assert!(r.remove_id(TupleId(3)));
        assert!(!r.remove_id(TupleId(3)));
        // value deletion removes *all* tuples with those fields
        assert_eq!(r.remove_fields(&fields(&[5])), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn modify_preserves_identity_and_frame() {
        let mut r = Relation::empty(RelId(0), 3);
        r.insert(TupleId(1), fields(&[1, 2, 3])).unwrap();
        r.insert(TupleId(2), fields(&[4, 5, 6])).unwrap();
        r.modify(TupleId(1), 2, Atom::nat(99)).unwrap();
        assert_eq!(&**r.get(TupleId(1)).unwrap(), &fields(&[1, 99, 3])[..]);
        // frame axiom: the other tuple is untouched
        assert_eq!(&**r.get(TupleId(2)).unwrap(), &fields(&[4, 5, 6])[..]);
    }

    #[test]
    fn modify_missing_tuple_errors() {
        let mut r = Relation::empty(RelId(0), 1);
        assert!(r.modify(TupleId(9), 1, Atom::nat(0)).is_err());
    }

    #[test]
    fn contains_val_semantics() {
        let mut r = Relation::empty(RelId(0), 1);
        r.insert(TupleId(1), fields(&[5])).unwrap();
        // anonymous: by fields
        assert!(r.contains_val(&TupleVal::anonymous(fields(&[5]))));
        // identified with matching fields
        assert!(r.contains_val(&TupleVal::identified(TupleId(1), fields(&[5]))));
        // identified, but the stored fields have since diverged
        assert!(!r.contains_val(&TupleVal::identified(TupleId(1), fields(&[6]))));
        // identity not present
        assert!(!r.contains_val(&TupleVal::identified(TupleId(2), fields(&[5]))));
    }

    #[test]
    fn iteration_is_deterministic_by_id() {
        let mut r = Relation::empty(RelId(0), 1);
        r.insert(TupleId(3), fields(&[30])).unwrap();
        r.insert(TupleId(1), fields(&[10])).unwrap();
        r.insert(TupleId(2), fields(&[20])).unwrap();
        let ids: Vec<TupleId> = r.iter().map(|t| t.id()).collect();
        assert_eq!(ids, vec![TupleId(1), TupleId(2), TupleId(3)]);
    }

    #[test]
    fn subset_by_value_ignores_ids() {
        let mut a = Relation::empty(RelId(0), 1);
        let mut b = Relation::empty(RelId(1), 1);
        a.insert(TupleId(1), fields(&[5])).unwrap();
        b.insert(TupleId(99), fields(&[5])).unwrap();
        b.insert(TupleId(98), fields(&[6])).unwrap();
        assert!(a.subset_by_value(&b));
        assert!(!b.subset_by_value(&a));
    }

    #[test]
    fn probe_finds_matches_in_id_order() {
        let mut r = Relation::empty(RelId(0), 2);
        r.insert(TupleId(3), fields(&[7, 1])).unwrap();
        r.insert(TupleId(1), fields(&[7, 2])).unwrap();
        r.insert(TupleId(2), fields(&[8, 2])).unwrap();
        assert_eq!(r.probe(1, &Atom::nat(7)), &[TupleId(1), TupleId(3)]);
        assert_eq!(r.probe(2, &Atom::nat(2)), &[TupleId(1), TupleId(2)]);
        assert_eq!(r.probe(1, &Atom::nat(9)), &[] as &[TupleId]);
        // out-of-range columns are empty, not errors
        assert_eq!(r.probe(0, &Atom::nat(7)), &[] as &[TupleId]);
        assert_eq!(r.probe(3, &Atom::nat(7)), &[] as &[TupleId]);
    }

    #[test]
    fn probe_tracks_mutations_after_index_build() {
        let mut r = Relation::empty(RelId(0), 2);
        r.insert(TupleId(1), fields(&[7, 1])).unwrap();
        assert_eq!(r.probe(1, &Atom::nat(7)), &[TupleId(1)]); // build index
        r.insert(TupleId(2), fields(&[7, 2])).unwrap();
        assert_eq!(r.probe(1, &Atom::nat(7)), &[TupleId(1), TupleId(2)]);
        // overwriting an identity re-keys its old field values
        r.insert(TupleId(1), fields(&[9, 1])).unwrap();
        assert_eq!(r.probe(1, &Atom::nat(7)), &[TupleId(2)]);
        assert_eq!(r.probe(1, &Atom::nat(9)), &[TupleId(1)]);
        r.modify(TupleId(2), 1, Atom::nat(9)).unwrap();
        assert_eq!(r.probe(1, &Atom::nat(9)), &[TupleId(1), TupleId(2)]);
        assert_eq!(r.probe(1, &Atom::nat(7)), &[] as &[TupleId]);
        r.remove_id(TupleId(1));
        assert_eq!(r.probe(1, &Atom::nat(9)), &[TupleId(2)]);
        r.remove_fields(&fields(&[9, 2]));
        assert_eq!(r.probe(1, &Atom::nat(9)), &[] as &[TupleId]);
        // a clone carries the built index and diverges independently
        let mut c = r.clone();
        c.insert(TupleId(5), fields(&[4, 4])).unwrap();
        assert_eq!(c.probe(2, &Atom::nat(4)), &[TupleId(5)]);
        assert_eq!(r.probe(2, &Atom::nat(4)), &[] as &[TupleId]);
    }

    #[test]
    fn equality_ignores_index_state() {
        let mut a = Relation::empty(RelId(0), 1);
        let mut b = Relation::empty(RelId(0), 1);
        a.insert(TupleId(1), fields(&[5])).unwrap();
        b.insert(TupleId(1), fields(&[5])).unwrap();
        let _ = a.probe(1, &Atom::nat(5)); // build a's index only
        assert_eq!(a, b);
    }

    #[test]
    fn value_set_dedups() {
        let mut r = Relation::empty(RelId(0), 1);
        r.insert(TupleId(1), fields(&[5])).unwrap();
        r.insert(TupleId(2), fields(&[5])).unwrap();
        assert_eq!(r.value_set().len(), 1);
        assert_eq!(r.len(), 2);
    }
}
