//! Relations: identified finite sets of n-ary tuples.
//!
//! A relation is the paper's n-ary set sort equipped with an identifier
//! (the n-ary set-identifier sort). Tuples are stored in a `BTreeMap`
//! keyed on [`TupleId`], which gives deterministic iteration order — the
//! property the engine's `foreach` evaluator relies on when checking
//! order-independence, and the property that makes every run of every
//! experiment reproducible.

use crate::tuple::{Tuple, TupleVal};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use txlog_base::{Atom, RelId, TupleId, TxError, TxResult};

/// An identified finite set of tuples, all of the same arity.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    id: RelId,
    arity: usize,
    tuples: BTreeMap<TupleId, Arc<[Atom]>>,
}

impl Relation {
    /// An empty relation with the given identity and arity.
    pub fn empty(id: RelId, arity: usize) -> Relation {
        Relation {
            id,
            arity,
            tuples: BTreeMap::new(),
        }
    }

    /// The relation's identity — the paper's `id(R)`.
    pub fn id(&self) -> RelId {
        self.id
    }

    /// The arity every member tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of member tuples — the paper's `size_n`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple with a pre-allocated identity. Errors on arity
    /// mismatch; re-inserting an existing identity overwrites its fields
    /// (insertion is idempotent on (id, fields) pairs).
    pub fn insert(&mut self, id: TupleId, fields: impl Into<Arc<[Atom]>>) -> TxResult<()> {
        let fields = fields.into();
        if fields.len() != self.arity {
            return Err(TxError::sort(format!(
                "cannot insert {}-ary tuple into {}-ary relation {}",
                fields.len(),
                self.arity,
                self.id
            )));
        }
        self.tuples.insert(id, fields);
        Ok(())
    }

    /// Remove the tuple with identity `id`; returns whether it was present.
    pub fn remove_id(&mut self, id: TupleId) -> bool {
        self.tuples.remove(&id).is_some()
    }

    /// Remove every tuple whose fields equal `fields`; returns how many
    /// were removed. This is `delete_n` applied to an anonymous value.
    pub fn remove_fields(&mut self, fields: &[Atom]) -> usize {
        let victims: Vec<TupleId> = self
            .tuples
            .iter()
            .filter(|(_, f)| &***f == fields)
            .map(|(&id, _)| id)
            .collect();
        for id in &victims {
            self.tuples.remove(id);
        }
        victims.len()
    }

    /// Fields of the tuple with identity `id`, if present.
    pub fn get(&self, id: TupleId) -> Option<&Arc<[Atom]>> {
        self.tuples.get(&id)
    }

    /// Replace attribute `i` (1-based) of tuple `id` with `v` — the
    /// value-level effect of `modify_n`, identity preserved.
    pub fn modify(&mut self, id: TupleId, i: usize, v: Atom) -> TxResult<()> {
        if i == 0 || i > self.arity {
            return Err(TxError::sort(format!(
                "modify index {i} out of range for {}-ary relation {}",
                self.arity, self.id
            )));
        }
        let fields = self
            .tuples
            .get_mut(&id)
            .ok_or_else(|| TxError::eval(format!("no tuple {id} in relation {}", self.id)))?;
        let mut new: Vec<Atom> = fields.to_vec();
        new[i - 1] = v;
        *fields = new.into();
        Ok(())
    }

    /// True iff a tuple with identity `id` is a member.
    pub fn contains_id(&self, id: TupleId) -> bool {
        self.tuples.contains_key(&id)
    }

    /// True iff some member tuple has exactly these fields.
    pub fn contains_fields(&self, fields: &[Atom]) -> bool {
        self.tuples.values().any(|f| &**f == fields)
    }

    /// Membership of a tuple *value*: an identified value is a member iff
    /// that identity is present **with those field values** (so a modified
    /// tuple's old value is no longer a member); an anonymous value is a
    /// member iff some tuple has those fields.
    pub fn contains_val(&self, v: &TupleVal) -> bool {
        match v.id {
            Some(id) => self.tuples.get(&id).is_some_and(|f| *f == v.fields),
            None => self.contains_fields(&v.fields),
        }
    }

    /// Iterate member tuples in deterministic (identity) order.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.tuples
            .iter()
            .map(|(&id, f)| Tuple::new(id, Arc::clone(f)))
    }

    /// Iterate member tuple values in deterministic order.
    pub fn iter_vals(&self) -> impl Iterator<Item = TupleVal> + '_ {
        self.tuples
            .iter()
            .map(|(&id, f)| TupleVal::identified(id, Arc::clone(f)))
    }

    /// Subset test **by value** (paper's `⊆_n` is set-theoretic): every
    /// field vector here occurs in `other`.
    pub fn subset_by_value(&self, other: &Relation) -> bool {
        self.tuples.values().all(|f| other.contains_fields(f))
    }

    /// The multiset of field vectors, sorted — the pure set value of this
    /// relation, used for value-level equality of `nset`-sorted terms.
    pub fn value_set(&self) -> Vec<Arc<[Atom]>> {
        let mut v: Vec<Arc<[Atom]>> = self.tuples.values().cloned().collect();
        v.sort();
        v.dedup();
        v
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        for (k, t) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(ns: &[u64]) -> Vec<Atom> {
        ns.iter().map(|&n| Atom::nat(n)).collect()
    }

    #[test]
    fn insert_and_membership() {
        let mut r = Relation::empty(RelId(0), 2);
        r.insert(TupleId(1), fields(&[10, 20])).unwrap();
        assert!(r.contains_id(TupleId(1)));
        assert!(r.contains_fields(&fields(&[10, 20])));
        assert!(!r.contains_fields(&fields(&[10, 21])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_enforced() {
        let mut r = Relation::empty(RelId(0), 2);
        assert!(r.insert(TupleId(1), fields(&[10])).is_err());
        assert!(r.insert(TupleId(1), fields(&[1, 2, 3])).is_err());
    }

    #[test]
    fn remove_by_id_and_value() {
        let mut r = Relation::empty(RelId(0), 1);
        r.insert(TupleId(1), fields(&[5])).unwrap();
        r.insert(TupleId(2), fields(&[5])).unwrap();
        r.insert(TupleId(3), fields(&[6])).unwrap();
        assert!(r.remove_id(TupleId(3)));
        assert!(!r.remove_id(TupleId(3)));
        // value deletion removes *all* tuples with those fields
        assert_eq!(r.remove_fields(&fields(&[5])), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn modify_preserves_identity_and_frame() {
        let mut r = Relation::empty(RelId(0), 3);
        r.insert(TupleId(1), fields(&[1, 2, 3])).unwrap();
        r.insert(TupleId(2), fields(&[4, 5, 6])).unwrap();
        r.modify(TupleId(1), 2, Atom::nat(99)).unwrap();
        assert_eq!(&**r.get(TupleId(1)).unwrap(), &fields(&[1, 99, 3])[..]);
        // frame axiom: the other tuple is untouched
        assert_eq!(&**r.get(TupleId(2)).unwrap(), &fields(&[4, 5, 6])[..]);
    }

    #[test]
    fn modify_missing_tuple_errors() {
        let mut r = Relation::empty(RelId(0), 1);
        assert!(r.modify(TupleId(9), 1, Atom::nat(0)).is_err());
    }

    #[test]
    fn contains_val_semantics() {
        let mut r = Relation::empty(RelId(0), 1);
        r.insert(TupleId(1), fields(&[5])).unwrap();
        // anonymous: by fields
        assert!(r.contains_val(&TupleVal::anonymous(fields(&[5]))));
        // identified with matching fields
        assert!(r.contains_val(&TupleVal::identified(TupleId(1), fields(&[5]))));
        // identified, but the stored fields have since diverged
        assert!(!r.contains_val(&TupleVal::identified(TupleId(1), fields(&[6]))));
        // identity not present
        assert!(!r.contains_val(&TupleVal::identified(TupleId(2), fields(&[5]))));
    }

    #[test]
    fn iteration_is_deterministic_by_id() {
        let mut r = Relation::empty(RelId(0), 1);
        r.insert(TupleId(3), fields(&[30])).unwrap();
        r.insert(TupleId(1), fields(&[10])).unwrap();
        r.insert(TupleId(2), fields(&[20])).unwrap();
        let ids: Vec<TupleId> = r.iter().map(|t| t.id()).collect();
        assert_eq!(ids, vec![TupleId(1), TupleId(2), TupleId(3)]);
    }

    #[test]
    fn subset_by_value_ignores_ids() {
        let mut a = Relation::empty(RelId(0), 1);
        let mut b = Relation::empty(RelId(1), 1);
        a.insert(TupleId(1), fields(&[5])).unwrap();
        b.insert(TupleId(99), fields(&[5])).unwrap();
        b.insert(TupleId(98), fields(&[6])).unwrap();
        assert!(a.subset_by_value(&b));
        assert!(!b.subset_by_value(&a));
    }

    #[test]
    fn value_set_dedups() {
        let mut r = Relation::empty(RelId(0), 1);
        r.insert(TupleId(1), fields(&[5])).unwrap();
        r.insert(TupleId(2), fields(&[5])).unwrap();
        assert_eq!(r.value_set().len(), 1);
        assert_eq!(r.len(), 2);
    }
}
