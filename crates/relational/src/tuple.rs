//! Tuples: identified vectors of attribute values.
//!
//! The paper distinguishes a tuple's *identity* (the value of the `id`
//! function, an element of the n-ary tuple-identifier sort) from its
//! *value* (the vector of attribute values). `modify_n(t, i, v)` changes
//! attribute `i` while preserving identity — the frame axiom
//! (`id(t₁) ≠ id(t₂) → select(t₁, i)` unchanged) is stated in terms of
//! identifiers, not values. [`Tuple`] therefore pairs a [`TupleId`] with
//! its fields.
//!
//! [`TupleVal`] is the *value-level* view used by the logic's evaluator:
//! a possibly-anonymous tuple (e.g. one built by the `tuple_n` generator
//! or a set former, which has no identity yet). Membership tests follow
//! the paper's set theory: a tuple value is in a relation iff the relation
//! contains a tuple with those field values; when the value carries an
//! identity, the identity must match too, so that "the same employee" can
//! be tracked across states.

use std::fmt;
use std::sync::Arc;
use txlog_base::{Atom, TupleId, TxError, TxResult};

/// An identified tuple as stored in a relation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    id: TupleId,
    fields: Arc<[Atom]>,
}

impl Tuple {
    /// Create a tuple with the given identity and fields.
    pub fn new(id: TupleId, fields: impl Into<Arc<[Atom]>>) -> Tuple {
        Tuple {
            id,
            fields: fields.into(),
        }
    }

    /// The tuple's identity — the paper's `id(t)`.
    pub fn id(&self) -> TupleId {
        self.id
    }

    /// The attribute values.
    pub fn fields(&self) -> &[Atom] {
        &self.fields
    }

    /// The shared field vector (cheaply cloneable).
    pub fn fields_arc(&self) -> &Arc<[Atom]> {
        &self.fields
    }

    /// The arity (`n` of the n-ary tuple sort this tuple inhabits).
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The paper's `select_n(t, i)` with **1-based** `i`, as in the
    /// `modify` action axiom (`1 ≤ i ≤ n`).
    pub fn select(&self, i: usize) -> TxResult<Atom> {
        if i == 0 || i > self.fields.len() {
            return Err(TxError::sort(format!(
                "select index {i} out of range for {}-ary tuple",
                self.fields.len()
            )));
        }
        Ok(self.fields[i - 1])
    }

    /// A copy of this tuple with attribute `i` (1-based) replaced by `v`
    /// and the **same identity** — the value-level effect of `modify_n`.
    pub fn with_field(&self, i: usize, v: Atom) -> TxResult<Tuple> {
        if i == 0 || i > self.fields.len() {
            return Err(TxError::sort(format!(
                "modify index {i} out of range for {}-ary tuple",
                self.fields.len()
            )));
        }
        let mut fields: Vec<Atom> = self.fields.to_vec();
        fields[i - 1] = v;
        Ok(Tuple::new(self.id, fields))
    }

    /// The value-level view of this tuple (identity retained).
    pub fn val(&self) -> TupleVal {
        TupleVal {
            id: Some(self.id),
            fields: Arc::clone(&self.fields),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}⟨", self.id)?;
        for (k, a) in self.fields.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A tuple *value*: fields plus an optional identity.
///
/// Produced by evaluating tuple-sorted expressions. `tuple_n(v₁,…,vₙ)`
/// yields an anonymous value (`id == None`); evaluating a tuple variable
/// bound to a stored tuple yields an identified one.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TupleVal {
    /// Identity if this value originates from a stored tuple.
    pub id: Option<TupleId>,
    /// The attribute values.
    pub fields: Arc<[Atom]>,
}

impl TupleVal {
    /// An anonymous tuple value (the `tuple_n` generator).
    pub fn anonymous(fields: impl Into<Arc<[Atom]>>) -> TupleVal {
        TupleVal {
            id: None,
            fields: fields.into(),
        }
    }

    /// An identified tuple value.
    pub fn identified(id: TupleId, fields: impl Into<Arc<[Atom]>>) -> TupleVal {
        TupleVal {
            id: Some(id),
            fields: fields.into(),
        }
    }

    /// The arity of this value.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// `select_n` on a value (1-based index).
    pub fn select(&self, i: usize) -> TxResult<Atom> {
        if i == 0 || i > self.fields.len() {
            return Err(TxError::sort(format!(
                "select index {i} out of range for {}-ary tuple value",
                self.fields.len()
            )));
        }
        Ok(self.fields[i - 1])
    }

    /// Value equality ignoring identity — plain set-theoretic tuple
    /// equality, used by `∪`, `∩`, `−`, `×` and by membership of
    /// anonymous values.
    pub fn same_fields(&self, other: &TupleVal) -> bool {
        self.fields == other.fields
    }
}

impl fmt::Display for TupleVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(id) = self.id {
            write!(f, "{id}")?;
        }
        write!(f, "⟨")?;
        for (k, a) in self.fields.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Debug for TupleVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, fields: &[u64]) -> Tuple {
        Tuple::new(
            TupleId(id),
            fields.iter().map(|&n| Atom::nat(n)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn select_is_one_based() {
        let tup = t(1, &[10, 20, 30]);
        assert_eq!(tup.select(1).unwrap(), Atom::nat(10));
        assert_eq!(tup.select(3).unwrap(), Atom::nat(30));
        assert!(tup.select(0).is_err());
        assert!(tup.select(4).is_err());
    }

    #[test]
    fn with_field_preserves_identity() {
        let tup = t(7, &[1, 2, 3]);
        let modified = tup.with_field(2, Atom::nat(99)).unwrap();
        assert_eq!(modified.id(), tup.id());
        assert_eq!(modified.select(2).unwrap(), Atom::nat(99));
        assert_eq!(modified.select(1).unwrap(), Atom::nat(1));
        // frame: untouched attributes unchanged
        assert_eq!(modified.select(3).unwrap(), Atom::nat(3));
    }

    #[test]
    fn with_field_out_of_range() {
        let tup = t(7, &[1]);
        assert!(tup.with_field(0, Atom::nat(0)).is_err());
        assert!(tup.with_field(2, Atom::nat(0)).is_err());
    }

    #[test]
    fn val_carries_identity() {
        let tup = t(3, &[5]);
        let v = tup.val();
        assert_eq!(v.id, Some(TupleId(3)));
        assert_eq!(v.select(1).unwrap(), Atom::nat(5));
    }

    #[test]
    fn anonymous_vs_identified_equality() {
        let a = TupleVal::anonymous(vec![Atom::nat(1), Atom::nat(2)]);
        let b = TupleVal::identified(TupleId(9), vec![Atom::nat(1), Atom::nat(2)]);
        assert!(a.same_fields(&b));
        assert_ne!(a, b); // full equality includes identity
    }

    #[test]
    fn display() {
        let tup = t(4, &[1, 2]);
        assert_eq!(tup.to_string(), "t#4⟨1, 2⟩");
        let v = TupleVal::anonymous(vec![Atom::str("S")]);
        assert_eq!(v.to_string(), "⟨'S'⟩");
    }

    #[test]
    fn zero_ary_tuple_is_legal() {
        // The paper admits n-ary tuple sorts for every n ≥ 0.
        let v = TupleVal::anonymous(Vec::<Atom>::new());
        assert_eq!(v.arity(), 0);
        assert!(v.select(1).is_err());
    }
}
