//! Persistent database states and the four state-changing primitives.
//!
//! A [`DbState`] is one node of the evolution graph: a finite map from
//! relation identifiers to relations, plus the tuple-identifier allocator.
//! States are *values*: cloning is O(#relations) thanks to `Arc` sharing,
//! and updating a state copies only the touched relation (copy-on-write via
//! `Arc::make_mut`). This is what lets the logic hold arbitrarily many
//! states alive simultaneously while programs — which "only have access to
//! this current state" (Section 2) — thread a single state through.
//!
//! The primitives implement the paper's action axioms and, by construction,
//! its frame axioms:
//!
//! * **insert_n(t, R)** — adds tuple `t` to relation `R`; every other
//!   relation, and every other tuple of `R`, is shared untouched.
//! * **delete_n(t, R)** — removes `t` from `R` (by identity if the value
//!   carries one, else by field values).
//! * **modify_n(t, i, v)** — replaces attribute `i` of the tuple with
//!   `id(t)` wherever it is stored; the frame axiom `id(t₁) ≠ id(t₂) →
//!   select(t₁,i)` unchanged holds because only that identity's entry is
//!   rewritten.
//! * **assign(R, S)** — makes relation `R` contain exactly the tuples of
//!   set value `S` (creating `R` if needed); fresh identities are allocated
//!   for anonymous members.

use crate::relation::Relation;
use crate::tuple::TupleVal;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use txlog_base::{Atom, RelId, TupleId, TxError, TxResult};

/// A persistent database state.
#[derive(Clone)]
pub struct DbState {
    pub(crate) rels: BTreeMap<RelId, Arc<Relation>>,
    pub(crate) next_tuple: u64,
}

impl DbState {
    /// The empty state: no relations, tuple allocator at zero.
    pub fn new() -> DbState {
        DbState {
            rels: BTreeMap::new(),
            next_tuple: 0,
        }
    }

    /// Register an empty relation with identity `id` and the given arity.
    /// Errors if `id` is already present with a different arity.
    pub fn with_relation(mut self, id: RelId, arity: usize) -> TxResult<DbState> {
        if let Some(existing) = self.rels.get(&id) {
            if existing.arity() != arity {
                return Err(TxError::schema(format!(
                    "relation {id} already exists with arity {}, not {arity}",
                    existing.arity()
                )));
            }
            return Ok(self);
        }
        self.rels.insert(id, Arc::new(Relation::empty(id, arity)));
        Ok(self)
    }

    /// The relation with identity `id`, if present.
    pub fn relation(&self, id: RelId) -> Option<&Relation> {
        self.rels.get(&id).map(|r| &**r)
    }

    /// The relation with identity `id`, or an evaluation error.
    pub fn expect_relation(&self, id: RelId) -> TxResult<&Relation> {
        self.relation(id)
            .ok_or_else(|| TxError::eval(format!("no relation {id} in state")))
    }

    /// Iterate (identity, relation) pairs in deterministic order.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.rels.iter().map(|(&id, r)| (id, &**r))
    }

    /// Number of registered relations.
    pub fn relation_count(&self) -> usize {
        self.rels.len()
    }

    /// Locate the relation holding the tuple with identity `tid`.
    pub fn find_tuple(&self, tid: TupleId) -> Option<(RelId, TupleVal)> {
        for (&rid, rel) in &self.rels {
            if let Some(fields) = rel.get(tid) {
                return Some((rid, TupleVal::identified(tid, Arc::clone(fields))));
            }
        }
        None
    }

    /// Allocate a fresh tuple identity. Deterministic within a state
    /// lineage: identities increase monotonically along any execution.
    fn fresh_tuple_id(&mut self) -> TupleId {
        let id = TupleId(self.next_tuple);
        self.next_tuple += 1;
        id
    }

    pub(crate) fn rel_mut(&mut self, id: RelId) -> TxResult<&mut Relation> {
        self.rels
            .get_mut(&id)
            .map(Arc::make_mut)
            .ok_or_else(|| TxError::eval(format!("no relation {id} in state")))
    }

    /// The paper's `insert_n(t, R)`. An anonymous tuple value receives a
    /// fresh identity; an identified value keeps its identity (so
    /// re-inserting a deleted tuple restores "the same" tuple). Returns
    /// the successor state and the identity of the inserted tuple.
    pub fn insert(&self, rel: RelId, t: &TupleVal) -> TxResult<(DbState, TupleId)> {
        let mut next = self.clone();
        let id = match t.id {
            Some(id) => id,
            None => next.fresh_tuple_id(),
        };
        next.rel_mut(rel)?.insert(id, Arc::clone(&t.fields))?;
        Ok((next, id))
    }

    /// Insert raw field values (fresh identity) — convenience for builders.
    pub fn insert_fields(&self, rel: RelId, fields: &[Atom]) -> TxResult<(DbState, TupleId)> {
        self.insert(rel, &TupleVal::anonymous(fields.to_vec()))
    }

    /// The paper's `delete_n(t, R)`. Deleting a value that is not a member
    /// is a no-op (the resulting state equals this one), which is exactly
    /// what the action axiom `t ∉ delete'(w, …):R` requires.
    pub fn delete(&self, rel: RelId, t: &TupleVal) -> TxResult<DbState> {
        let mut next = self.clone();
        let r = next.rel_mut(rel)?;
        match t.id {
            Some(id) => {
                // Only delete if the identified value is actually the
                // current value of that tuple; a stale value names nothing.
                if r.get(id).is_some_and(|f| *f == t.fields) {
                    r.remove_id(id);
                }
            }
            None => {
                r.remove_fields(&t.fields);
            }
        }
        Ok(next)
    }

    /// The paper's `modify_n(t, i, v)` (1-based attribute index). The tuple
    /// is located by identity anywhere in the state; identity is preserved.
    pub fn modify(&self, t: &TupleVal, i: usize, v: Atom) -> TxResult<DbState> {
        let tid = t.id.ok_or_else(|| {
            TxError::eval("modify requires an identified tuple (anonymous value has no id)")
        })?;
        let rid = self
            .find_tuple(tid)
            .map(|(rid, _)| rid)
            .ok_or_else(|| TxError::eval(format!("modify: tuple {tid} not present in state")))?;
        let mut next = self.clone();
        next.rel_mut(rid)?.modify(tid, i, v)?;
        Ok(next)
    }

    /// The paper's `assign(R, S)`: relation `R` comes to hold exactly the
    /// member tuples of the set value `S`. `R` is created with the arity of
    /// `S` if absent. Anonymous members get fresh identities; identified
    /// members keep theirs.
    pub fn assign(&self, rel: RelId, arity: usize, members: &[TupleVal]) -> TxResult<DbState> {
        let mut next = self.clone();
        for m in members {
            if m.arity() != arity {
                return Err(TxError::sort(format!(
                    "assign: {}-ary member in {arity}-ary set",
                    m.arity()
                )));
            }
        }
        let mut fresh = Relation::empty(rel, arity);
        for m in members {
            let id = match m.id {
                Some(id) => id,
                None => next.fresh_tuple_id(),
            };
            fresh.insert(id, Arc::clone(&m.fields))?;
        }
        next.rels.insert(rel, Arc::new(fresh));
        Ok(next)
    }

    /// Structural equality of contents (relations, tuples, identities);
    /// the tuple-identifier allocator is *not* part of the content.
    pub fn content_eq(&self, other: &DbState) -> bool {
        self.rels.len() == other.rels.len()
            && self
                .rels
                .iter()
                .zip(other.rels.iter())
                .all(|((ida, ra), (idb, rb))| ida == idb && ra == rb)
    }

    /// Value-level equality: same relations with the same *field vectors*,
    /// ignoring tuple identities. Tuple identity exists for frame
    /// reasoning; the paper's states are determined by their contents, so
    /// value equality is the right notion for questions like "did the
    /// inverse transaction restore the state?" where re-inserted tuples
    /// necessarily carry fresh identities.
    pub fn value_eq(&self, other: &DbState) -> bool {
        self.rels.len() == other.rels.len()
            && self
                .rels
                .iter()
                .zip(other.rels.iter())
                .all(|((ida, ra), (idb, rb))| {
                    ida == idb && ra.arity() == rb.arity() && ra.value_set() == rb.value_set()
                })
    }

    /// A content digest usable for hash-based deduplication of states in
    /// the evolution graph. Collisions are resolved by [`content_eq`].
    ///
    /// [`content_eq`]: DbState::content_eq
    pub fn content_digest(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (rid, rel) in &self.rels {
            rid.hash(&mut h);
            rel.arity().hash(&mut h);
            for t in rel.iter() {
                t.id().hash(&mut h);
                t.fields().hash(&mut h);
            }
        }
        h.finish()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// The next tuple identity this state's allocator would hand out.
    /// Every identity allocated by an execution starting from this state
    /// is `>= next_tuple_id()`, which is what lets a commit pipeline
    /// recognize (and remap) the fresh identities in a transaction's
    /// delta when forwarding it onto a different head state.
    pub fn next_tuple_id(&self) -> u64 {
        self.next_tuple
    }
}

// Snapshots are shared across threads by the session layer; `DbState`
// is a tree of `Arc`s over immutable relations, so this holds by
// construction — the assertion pins it against regressions.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DbState>();
};

impl Default for DbState {
    fn default() -> DbState {
        DbState::new()
    }
}

impl PartialEq for DbState {
    fn eq(&self, other: &DbState) -> bool {
        self.content_eq(other)
    }
}

impl Eq for DbState {}

impl fmt::Display for DbState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "state {{")?;
        for (_, rel) in self.relations() {
            writeln!(f, "  {rel}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for DbState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(ns: &[u64]) -> Vec<Atom> {
        ns.iter().map(|&n| Atom::nat(n)).collect()
    }

    fn base() -> DbState {
        DbState::new().with_relation(RelId(0), 2).unwrap()
    }

    #[test]
    fn insert_is_persistent() {
        let s0 = base();
        let (s1, id) = s0.insert_fields(RelId(0), &fields(&[1, 2])).unwrap();
        // old state untouched
        assert!(s0.relation(RelId(0)).unwrap().is_empty());
        assert!(s1.relation(RelId(0)).unwrap().contains_id(id));
    }

    #[test]
    fn delete_identified_requires_current_value() {
        let s0 = base();
        let (s1, id) = s0.insert_fields(RelId(0), &fields(&[1, 2])).unwrap();
        let stale = TupleVal::identified(id, fields(&[9, 9]));
        let s2 = s1.delete(RelId(0), &stale).unwrap();
        // stale value names nothing: no deletion happened
        assert!(s2.relation(RelId(0)).unwrap().contains_id(id));
        let current = TupleVal::identified(id, fields(&[1, 2]));
        let s3 = s1.delete(RelId(0), &current).unwrap();
        assert!(!s3.relation(RelId(0)).unwrap().contains_id(id));
    }

    #[test]
    fn delete_anonymous_removes_all_value_matches() {
        let s0 = base();
        let (s1, _) = s0.insert_fields(RelId(0), &fields(&[1, 2])).unwrap();
        let (s2, _) = s1.insert_fields(RelId(0), &fields(&[1, 2])).unwrap();
        let s3 = s2
            .delete(RelId(0), &TupleVal::anonymous(fields(&[1, 2])))
            .unwrap();
        assert!(s3.relation(RelId(0)).unwrap().is_empty());
        assert_eq!(s2.relation(RelId(0)).unwrap().len(), 2);
    }

    #[test]
    fn modify_locates_tuple_by_identity() {
        let s0 = base();
        let (s1, id) = s0.insert_fields(RelId(0), &fields(&[1, 2])).unwrap();
        let val = s1.find_tuple(id).unwrap().1;
        let s2 = s1.modify(&val, 2, Atom::nat(42)).unwrap();
        assert_eq!(
            s2.find_tuple(id).unwrap().1.fields.as_ref(),
            &fields(&[1, 42])[..]
        );
        // frame: s1 unchanged
        assert_eq!(
            s1.find_tuple(id).unwrap().1.fields.as_ref(),
            &fields(&[1, 2])[..]
        );
    }

    #[test]
    fn modify_anonymous_is_an_error() {
        let s = base();
        let anon = TupleVal::anonymous(fields(&[1, 2]));
        assert!(s.modify(&anon, 1, Atom::nat(0)).is_err());
    }

    #[test]
    fn assign_creates_relation_with_members() {
        let s0 = DbState::new();
        let members = vec![
            TupleVal::anonymous(fields(&[1])),
            TupleVal::anonymous(fields(&[2])),
        ];
        let s1 = s0.assign(RelId(7), 1, &members).unwrap();
        let r = s1.relation(RelId(7)).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains_fields(&fields(&[1])));
        assert!(r.contains_fields(&fields(&[2])));
    }

    #[test]
    fn assign_replaces_existing_relation() {
        let s0 = base();
        let (s1, _) = s0.insert_fields(RelId(0), &fields(&[1, 2])).unwrap();
        let s2 = s1.assign(RelId(0), 2, &[]).unwrap();
        assert!(s2.relation(RelId(0)).unwrap().is_empty());
    }

    #[test]
    fn assign_checks_member_arity() {
        let s = DbState::new();
        let bad = vec![TupleVal::anonymous(fields(&[1, 2]))];
        assert!(s.assign(RelId(7), 1, &bad).is_err());
    }

    #[test]
    fn with_relation_rejects_arity_conflict() {
        let s = base();
        assert!(s.clone().with_relation(RelId(0), 2).is_ok());
        assert!(s.with_relation(RelId(0), 3).is_err());
    }

    #[test]
    fn content_eq_ignores_allocator() {
        let s0 = base();
        let (s1, id) = s0.insert_fields(RelId(0), &fields(&[1, 2])).unwrap();
        let val = s1.find_tuple(id).unwrap().1;
        let s2 = s1.delete(RelId(0), &val).unwrap();
        // s2 has the same content as s0 although its allocator advanced
        assert!(s0.content_eq(&s2));
        assert_eq!(s0.content_digest(), s2.content_digest());
    }

    #[test]
    fn fresh_ids_are_distinct_along_a_lineage() {
        let s0 = base();
        let (s1, a) = s0.insert_fields(RelId(0), &fields(&[1, 1])).unwrap();
        let (s2, b) = s1.insert_fields(RelId(0), &fields(&[2, 2])).unwrap();
        assert_ne!(a, b);
        assert_eq!(s2.total_tuples(), 2);
    }

    #[test]
    fn reinserting_identified_value_restores_same_tuple() {
        let s0 = base();
        let (s1, id) = s0.insert_fields(RelId(0), &fields(&[1, 2])).unwrap();
        let val = s1.find_tuple(id).unwrap().1;
        let s2 = s1.delete(RelId(0), &val).unwrap();
        let (s3, id2) = s2.insert(RelId(0), &val).unwrap();
        assert_eq!(id, id2);
        assert!(s3.content_eq(&s1));
    }
}
